//! Layer 1: the persistent solver-verdict log.
//!
//! Solver verdicts are keyed by pool-independent *structural fingerprints*
//! (`overify_symex::cache`), so a verdict computed in one process is valid
//! in every later one — satisfiability is a property of the formula, not
//! of who asked. This module persists the sharded shared cache as an
//! append-only binary log so repeated suite sweeps (CI, regression loops)
//! warm-start the whole solver fleet.
//!
//! On-disk format (all little-endian):
//!
//! ```text
//! header:  magic      b"OVFYSLG\0"   8 bytes
//!          version    u32            (readers reject mismatches cleanly)
//!          generation u64            bumped by every compaction, so a
//!                                    tailing reader detects the rewrite
//!                                    and restarts its scan from zero
//! record:  len     u32           payload length (bounded sanity check)
//!          check   u64           FNV-1a of the payload
//!          payload fp u128, tag u8 (0 = UNSAT, 1 = SAT),
//!                  [count u32, count × (sym u32, value u64)] when SAT
//! ```
//!
//! Loading is **corruption-tolerant**: a torn tail (power loss mid-append,
//! interleaved writers), a bad checksum or an absurd length terminates the
//! scan at the last good record — everything before the damage survives,
//! and the damaged tail's byte count is reported so the owner can compact
//! (rewrite) the log from a live snapshot.
//!
//! Besides the boot-time full [`load`], long-lived processes *tail* the
//! log ([`load_tail`]): re-scan from a remembered byte offset, absorbing
//! only records appended since — that is how N daemons on one store path
//! converge on each other's verdicts without restart. A torn tail during
//! tailing is reported as *pending* (it may be another process's append
//! still in flight) and re-read on the next tick rather than treated as
//! damage.

use crate::codec::{fnv64, Reader, Writer};
use overify_symex::{CachedVerdict, Model, SharedQueryCache};
use std::collections::HashSet;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Magic prefix of a solver log file.
pub const MAGIC: &[u8; 8] = b"OVFYSLG\0";
/// Current format version. Bump on any layout change; old files are then
/// rejected (and rewritten wholesale on the next save). v2 added the
/// header generation stamp for rewrite-safe tailing.
pub const VERSION: u32 = 2;
/// Total header length: magic + version + generation.
pub const HEADER_LEN: usize = 8 + 4 + 8;
/// Upper bound on one record's payload (a model entry is 12 bytes; a sane
/// model holds at most a few thousand symbols).
const MAX_RECORD: u32 = 1 << 24;

/// Why a log file could not be used at all.
#[derive(Debug, PartialEq, Eq)]
pub enum LogError {
    /// The file exists but does not start with the magic bytes.
    BadMagic,
    /// The file is a solver log of an incompatible version.
    VersionMismatch { found: u32 },
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::BadMagic => write!(f, "not a solver log (bad magic)"),
            LogError::VersionMismatch { found } => {
                write!(f, "solver log version {found}, expected {VERSION}")
            }
        }
    }
}

impl std::error::Error for LogError {}

/// What a load pass recovered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadSummary {
    /// Distinct fingerprints published into the cache.
    pub entries: u64,
    /// Records read, including duplicates from concurrent appenders.
    pub records: u64,
    /// Bytes of damaged/torn tail the scan refused to consume (0 on a
    /// clean log). Nonzero means the next save should compact.
    pub dropped_bytes: u64,
    /// The header's compaction generation (0 for a missing/empty log).
    pub generation: u64,
    /// Byte offset just past the last intact record — the starting
    /// cursor for a subsequent [`load_tail`].
    pub clean_len: u64,
}

/// What one tailing pass over the log found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TailSummary {
    /// Intact records decoded this pass.
    pub records: u64,
    /// Header generation observed (becomes the cursor's new generation).
    pub generation: u64,
    /// Byte offset just past the last intact record (the new cursor).
    pub offset: u64,
    /// The log was compacted (or shrank) since the cursor was taken, so
    /// this pass re-read from the start of the records.
    pub reread: bool,
    /// Bytes at the tail that did not parse as a whole record. During
    /// tailing that usually means another process's append is still in
    /// flight, so the cursor stays put and the bytes are retried on the
    /// next tick — never skipped.
    pub pending_bytes: u64,
}

/// Serializes one `(fingerprint, verdict)` record, framed and checksummed.
fn encode_record(fp: u128, verdict: &CachedVerdict) -> Vec<u8> {
    let mut payload = Writer::default();
    payload.u128(fp);
    match verdict {
        None => payload.u8(0),
        Some(m) => {
            payload.u8(1);
            // Sorted for byte-stable output across HashMap orders.
            let mut entries: Vec<(u32, u64)> = m.values.iter().map(|(&k, &v)| (k, v)).collect();
            entries.sort_unstable();
            payload.u32(entries.len() as u32);
            for (id, v) in entries {
                payload.u32(id);
                payload.u64(v);
            }
        }
    }
    let mut rec = Writer::default();
    rec.u32(payload.buf.len() as u32);
    rec.u64(fnv64(&payload.buf));
    rec.buf.extend_from_slice(&payload.buf);
    rec.buf
}

/// Parses one payload back into a `(fingerprint, verdict)` pair.
fn decode_payload(payload: &[u8]) -> Option<(u128, CachedVerdict)> {
    let mut r = Reader::new(payload);
    let fp = r.u128()?;
    let verdict = match r.u8()? {
        0 => None,
        1 => {
            let count = r.u32()?;
            let mut m = Model::default();
            for _ in 0..count {
                let id = r.u32()?;
                let v = r.u64()?;
                m.values.insert(id, v);
            }
            Some(m)
        }
        _ => return None,
    };
    // Trailing garbage inside a checksummed frame would mean an encoder
    // bug, not disk damage; reject the record either way.
    (r.remaining() == 0).then_some((fp, verdict))
}

/// Loads a solver log into `cache`, returning what was recovered.
///
/// A missing file is an empty log. A file with a foreign magic or version
/// is rejected with a [`LogError`] — never partially applied. Damage
/// *inside* a well-versioned log only costs the records at and after the
/// damage point.
pub fn load(path: &Path, cache: &SharedQueryCache) -> Result<LoadSummary, LogError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(_) => return Ok(LoadSummary::default()),
    };
    if bytes.is_empty() {
        return Ok(LoadSummary::default());
    }
    if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(LogError::BadMagic);
    }
    let mut r = Reader::new(&bytes[MAGIC.len()..]);
    let version = r.u32().ok_or(LogError::BadMagic)?;
    if version != VERSION {
        return Err(LogError::VersionMismatch { found: version });
    }
    let mut summary = LoadSummary::default();
    let Some(generation) = r.u64() else {
        // Header torn mid-write: nothing usable yet, compact on save.
        summary.dropped_bytes = r.remaining() as u64;
        summary.clean_len = (MAGIC.len() + 4) as u64;
        return Ok(summary);
    };
    summary.generation = generation;
    summary.clean_len = HEADER_LEN as u64;
    let mut seen: HashSet<u128> = HashSet::new();
    loop {
        let tail = r.remaining() as u64;
        if tail == 0 {
            break;
        }
        let rec = (|| {
            let len = r.u32()?;
            if len > MAX_RECORD {
                return None;
            }
            let check = r.u64()?;
            let payload = r.bytes_exact(len as usize)?;
            if fnv64(payload) != check {
                return None;
            }
            decode_payload(payload)
        })();
        match rec {
            Some((fp, verdict)) => {
                summary.records += 1;
                if seen.insert(fp) {
                    summary.entries += 1;
                }
                summary.clean_len = (bytes.len() - r.remaining()) as u64;
                cache.publish(fp, verdict);
            }
            None => {
                summary.dropped_bytes = tail;
                break;
            }
        }
    }
    Ok(summary)
}

/// Re-scans the log from byte `offset`, returning only the records
/// appended since — the live-coherence path for long-lived daemons.
///
/// `generation` is the header generation observed when the cursor was
/// taken; a mismatch means the log was compacted in between, so the scan
/// restarts just past the header (`reread` is set). A torn tail is
/// reported as `pending_bytes` and the returned offset stays at the last
/// intact record, so an in-flight concurrent append is simply retried on
/// the next tick.
pub fn load_tail(
    path: &Path,
    offset: u64,
    generation: u64,
) -> Result<(TailSummary, Vec<(u128, CachedVerdict)>), LogError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(_) => {
            // Missing (or vanished) log: an empty cursor.
            let summary = TailSummary {
                reread: offset > 0,
                ..TailSummary::default()
            };
            return Ok((summary, Vec::new()));
        }
    };
    if bytes.is_empty() {
        let summary = TailSummary {
            reread: offset > 0,
            ..TailSummary::default()
        };
        return Ok((summary, Vec::new()));
    }
    if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(LogError::BadMagic);
    }
    let mut h = Reader::new(&bytes[MAGIC.len()..]);
    let version = h.u32().ok_or(LogError::BadMagic)?;
    if version != VERSION {
        return Err(LogError::VersionMismatch { found: version });
    }
    let found_generation = h.u64().ok_or(LogError::BadMagic)?;

    // Restart past the header when the cursor predates a compaction (the
    // generation moved) or points beyond the file (it shrank).
    let restart =
        found_generation != generation || offset < HEADER_LEN as u64 || offset > bytes.len() as u64;
    let start = if restart { HEADER_LEN as u64 } else { offset };
    let mut summary = TailSummary {
        generation: found_generation,
        offset: start,
        reread: restart && offset > HEADER_LEN as u64,
        ..TailSummary::default()
    };

    let mut out = Vec::new();
    let mut r = Reader::new(&bytes[start as usize..]);
    loop {
        let tail = r.remaining() as u64;
        if tail == 0 {
            break;
        }
        let rec = (|| {
            let len = r.u32()?;
            if len > MAX_RECORD {
                return None;
            }
            let check = r.u64()?;
            let payload = r.bytes_exact(len as usize)?;
            if fnv64(payload) != check {
                return None;
            }
            decode_payload(payload)
        })();
        match rec {
            Some((fp, verdict)) => {
                summary.records += 1;
                summary.offset = (bytes.len() - r.remaining()) as u64;
                out.push((fp, verdict));
            }
            None => {
                summary.pending_bytes = tail;
                break;
            }
        }
    }
    Ok((summary, out))
}

/// Appends `entries` to the log at `path`, creating it (with a header)
/// when absent. The caller filters out already-persisted fingerprints.
pub fn append(path: &Path, entries: &[(u128, CachedVerdict)]) -> io::Result<()> {
    // Zero-length counts as fresh (and gets a header): a crash between
    // file creation and the first write leaves an empty file, which
    // `load` accepts as an empty log — appending records to it headerless
    // would make every later load fail with `BadMagic`.
    let fresh = fs::metadata(path).map(|m| m.len() == 0).unwrap_or(true);
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut buf = Vec::new();
    if fresh {
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes()); // first generation
    }
    for (fp, verdict) in entries {
        buf.extend_from_slice(&encode_record(*fp, verdict));
    }
    f.write_all(&buf)?;
    f.flush()
}

/// Rewrites the log as one clean snapshot (atomically, via a temp file in
/// the same directory) — compaction. Drops duplicate records from
/// concurrent appenders, damaged tails, and stale-version files alike.
/// `generation` must exceed the replaced file's generation so tailing
/// readers notice the rewrite; returns the new file's byte length (a
/// caught-up tail cursor). Callers coordinating with concurrent appenders
/// hold the store's advisory lock across read-merge-compact.
pub fn compact(path: &Path, entries: &[(u128, CachedVerdict)], generation: u64) -> io::Result<u64> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&generation.to_le_bytes());
    for (fp, verdict) in entries {
        buf.extend_from_slice(&encode_record(*fp, verdict));
    }
    let tmp = path.with_extension(format!("tmp{}", std::process::id()));
    fs::write(&tmp, &buf)?;
    fs::rename(&tmp, path)?;
    Ok(buf.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("overify_store_log_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("solver.log")
    }

    fn sample_entries() -> Vec<(u128, CachedVerdict)> {
        let mut m = Model::default();
        m.values.insert(0, 65);
        m.values.insert(9, 1);
        vec![(1, None), (2, Some(m)), (3 << 100, Some(Model::default()))]
    }

    #[test]
    fn roundtrip_through_disk() {
        let path = tmp("roundtrip");
        let entries = sample_entries();
        append(&path, &entries).unwrap();
        let cache = SharedQueryCache::new();
        let s = load(&path, &cache).unwrap();
        assert_eq!(s.entries, 3);
        assert_eq!(s.records, 3);
        assert_eq!(s.dropped_bytes, 0);
        assert_eq!(cache.snapshot(), {
            let mut e = entries.clone();
            e.sort_by_key(|&(fp, _)| fp);
            e
        });

        // A second append extends the same file without a second header.
        append(&path, &[(42, None)]).unwrap();
        let cache2 = SharedQueryCache::new();
        let s2 = load(&path, &cache2).unwrap();
        assert_eq!(s2.entries, 4);
    }

    #[test]
    fn truncated_tail_keeps_prefix() {
        let path = tmp("truncate");
        append(&path, &sample_entries()).unwrap();
        let full = fs::read(&path).unwrap();
        // Chop into the last record: everything before it must survive.
        for cut in [full.len() - 1, full.len() - 7, full.len() - 12] {
            fs::write(&path, &full[..cut]).unwrap();
            let cache = SharedQueryCache::new();
            let s = load(&path, &cache).unwrap();
            assert_eq!(s.entries, 2, "cut={cut}");
            assert!(s.dropped_bytes > 0, "cut={cut}");
            assert_eq!(cache.len(), 2, "cut={cut}");
        }
    }

    #[test]
    fn flipped_byte_is_contained() {
        let path = tmp("bitrot");
        append(&path, &sample_entries()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte of the second record: record 1 survives,
        // the scan stops at the damage instead of propagating it.
        let rec1_len = encode_record(1, &None).len();
        let damage = HEADER_LEN + rec1_len + 13;
        bytes[damage] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let cache = SharedQueryCache::new();
        let s = load(&path, &cache).unwrap();
        assert_eq!(s.entries, 1);
        assert!(s.dropped_bytes > 0);
        assert_eq!(cache.lookup(1), Some(None));
    }

    #[test]
    fn version_mismatch_rejected_cleanly() {
        let path = tmp("version");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&(VERSION + 1).to_le_bytes());
        bytes.extend_from_slice(&encode_record(5, &None));
        fs::write(&path, &bytes).unwrap();
        let cache = SharedQueryCache::new();
        assert_eq!(
            load(&path, &cache),
            Err(LogError::VersionMismatch { found: VERSION + 1 })
        );
        assert!(cache.is_empty(), "nothing partially applied");

        fs::write(&path, b"definitely not a log").unwrap();
        assert_eq!(load(&path, &cache), Err(LogError::BadMagic));
    }

    #[test]
    fn missing_file_is_empty_log() {
        let path = tmp("missing");
        let cache = SharedQueryCache::new();
        assert_eq!(load(&path, &cache), Ok(LoadSummary::default()));
    }

    #[test]
    fn append_to_empty_file_writes_header() {
        // A crash between creation and the first write leaves a 0-byte
        // file; the next append must still start with the header.
        let path = tmp("empty");
        fs::write(&path, b"").unwrap();
        append(&path, &[(5, None)]).unwrap();
        let cache = SharedQueryCache::new();
        let s = load(&path, &cache).unwrap();
        assert_eq!((s.entries, s.dropped_bytes), (1, 0));
        assert_eq!(cache.lookup(5), Some(None));
    }

    #[test]
    fn compaction_dedups_and_repairs() {
        let path = tmp("compact");
        let entries = sample_entries();
        append(&path, &entries).unwrap();
        append(&path, &entries).unwrap(); // Duplicates (second process).
        let cache = SharedQueryCache::new();
        let s = load(&path, &cache).unwrap();
        assert_eq!((s.records, s.entries), (6, 3));
        assert_eq!(s.generation, 1);

        let len = compact(&path, &cache.snapshot(), s.generation + 1).unwrap();
        assert_eq!(len, fs::metadata(&path).unwrap().len());
        let cache2 = SharedQueryCache::new();
        let s2 = load(&path, &cache2).unwrap();
        assert_eq!((s2.records, s2.entries), (3, 3));
        assert_eq!(s2.generation, 2, "compaction bumps the generation");
        assert_eq!(s2.clean_len, len);
        assert_eq!(cache2.snapshot(), cache.snapshot());
    }

    #[test]
    fn tail_sees_only_records_appended_after_the_cursor() {
        let path = tmp("tail");
        append(&path, &sample_entries()).unwrap();
        let cache = SharedQueryCache::new();
        let s = load(&path, &cache).unwrap();
        assert_eq!(s.clean_len, fs::metadata(&path).unwrap().len());

        // Nothing new yet.
        let (t, got) = load_tail(&path, s.clean_len, s.generation).unwrap();
        assert_eq!((t.records, got.len()), (0, 0));
        assert!(!t.reread);
        assert_eq!(t.offset, s.clean_len);

        // Another process appends; the tail picks up exactly the delta.
        append(&path, &[(42, None), (43, None)]).unwrap();
        let (t2, got2) = load_tail(&path, t.offset, t.generation).unwrap();
        assert_eq!(t2.records, 2);
        assert_eq!(
            got2.iter().map(|&(fp, _)| fp).collect::<Vec<_>>(),
            vec![42, 43]
        );
        assert_eq!(t2.offset, fs::metadata(&path).unwrap().len());
        assert_eq!(t2.pending_bytes, 0);

        // A cursor from before boot (offset 0) scans from the header.
        let (t3, got3) = load_tail(&path, 0, 0).unwrap();
        assert_eq!(t3.records, 5);
        assert_eq!(got3.len(), 5);
        assert!(!t3.reread, "nothing was consumed yet, not a re-read");
    }

    #[test]
    fn tail_detects_compaction_and_rereads_from_zero() {
        let path = tmp("tail_compact");
        append(&path, &sample_entries()).unwrap();
        let cache = SharedQueryCache::new();
        let s = load(&path, &cache).unwrap();

        // Compact (generation bump) while a tailing reader holds a cursor.
        compact(&path, &cache.snapshot(), s.generation + 1).unwrap();
        let (t, got) = load_tail(&path, s.clean_len, s.generation).unwrap();
        assert!(t.reread, "generation moved: cursor invalidated");
        assert_eq!(t.generation, s.generation + 1);
        assert_eq!(t.records, 3, "full re-read of the compacted log");
        assert_eq!(got.len(), 3);
        assert_eq!(t.offset, fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn torn_tail_is_pending_not_consumed() {
        let path = tmp("tail_torn");
        append(&path, &[(1, None)]).unwrap();
        let cache = SharedQueryCache::new();
        let s = load(&path, &cache).unwrap();
        let cursor = s.clean_len;

        // Half an in-flight append lands after the cursor.
        let rec = encode_record(2, &None);
        let full = fs::read(&path).unwrap();
        let mut torn = full.clone();
        torn.extend_from_slice(&rec[..rec.len() - 3]);
        fs::write(&path, &torn).unwrap();
        let (t, got) = load_tail(&path, cursor, s.generation).unwrap();
        assert_eq!(t.records, 0);
        assert!(got.is_empty());
        assert!(t.pending_bytes > 0);
        assert_eq!(t.offset, cursor, "cursor stays at the last whole record");

        // The append completes; the next tick reads the whole record.
        let mut done = full;
        done.extend_from_slice(&rec);
        fs::write(&path, &done).unwrap();
        let (t2, got2) = load_tail(&path, t.offset, t.generation).unwrap();
        assert_eq!(t2.records, 1);
        assert_eq!(got2, vec![(2, None)]);
        assert_eq!(t2.pending_bytes, 0);
    }

    #[test]
    fn tail_of_missing_or_stale_log_is_safe() {
        let path = tmp("tail_missing");
        let (t, got) = load_tail(&path, 0, 0).unwrap();
        assert_eq!(t, TailSummary::default());
        assert!(got.is_empty());

        // A stale-version file is rejected cleanly, never partially read.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&(VERSION + 1).to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert_eq!(
            load_tail(&path, 0, 0),
            Err(LogError::VersionMismatch { found: VERSION + 1 })
        );
    }
}
