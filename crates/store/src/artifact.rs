//! Layer 2: the report artifact store.
//!
//! A verification run is a pure function of three things: the program (as
//! canonical printed IR — [`overify_ir::module_fingerprint`]), the
//! pipeline level that produced it, and the budget/configuration it ran
//! under. The artifact store keys a whole [`VerificationReport`] sweep by
//! exactly that triple, so a suite job whose program and configuration
//! are byte-identical to a stored run is *skipped* and the stored report
//! returned verbatim — the -OVERIFY premise (verification is paid on
//! every build) amortized across builds, the way verified-build
//! registries key results by program content hash.
//!
//! One file per key under `reports/`, written atomically (temp + rename)
//! and checksummed; an unreadable or damaged artifact is simply a miss.

use crate::codec::{fnv128, fnv64, Reader, Writer};
use overify_opt::OptLevel;
use overify_symex::{Bug, BugKind, SolverStats, SymArg, SymConfig, TestCase, VerificationReport};
use std::time::Duration;

/// Magic prefix of a module-keyed report artifact file.
pub const MAGIC: &[u8; 8] = b"OVFYRPT\0";
/// Magic prefix of a function-slice-keyed report artifact file.
pub const SLICE_MAGIC: &[u8; 8] = b"OVFYSLC\0";
/// Current artifact format version. v2 introduced function-grained
/// content addressing (slice artifacts beside module artifacts); v3
/// added `solver_ns` to the encoded solver statistics (the per-run
/// ledger's solver-time column). Older files decode as misses and are
/// re-derived on the next sweep.
pub const VERSION: u32 = 3;

/// The content address of one suite job's outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ReportKey {
    /// Canonical hash of the printed post-pipeline IR.
    pub module_fp: u128,
    /// Pipeline level the module was built at (redundant with the
    /// fingerprint for honest builds, kept explicit so a hit can never
    /// cross levels).
    pub level: OptLevel,
    /// Hash of everything else that shapes the run: entry, swept input
    /// sizes, budgets, solver toggles, search strategy.
    pub budget_sig: u128,
}

impl ReportKey {
    /// The combined 128-bit hash of the whole key — the store's canonical
    /// per-key identity (artifact file names, cost-metadata records).
    pub fn key_hash(&self) -> u128 {
        let mut w = Writer::default();
        w.u128(self.module_fp);
        w.u8(level_tag(self.level));
        w.u128(self.budget_sig);
        fnv128(&w.buf)
    }

    /// The artifact's file stem: 32 hex digits of the combined key.
    pub fn file_stem(&self) -> String {
        format!("{:032x}", self.key_hash())
    }
}

/// The function-grained content address of one suite job's outcome.
///
/// Identical to [`ReportKey`] except the program dimension: instead of
/// the whole module's fingerprint it uses the *entry function's slice
/// fingerprint* ([`overify_ir::slice_fingerprint`]) — the function plus
/// the transitive closure of callees, referenced globals and
/// annotations. A verification run only ever observes the entry's
/// dependency slice, so two modules that agree on that slice produce
/// byte-identical reports even when the rest of the module differs.
/// That is the splice fast path: edit one function and every entry
/// whose slice excludes it still hits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SliceKey {
    /// Slice fingerprint of the entry function.
    pub slice_fp: u128,
    /// Pipeline level the module was built at.
    pub level: OptLevel,
    /// Same budget signature as [`ReportKey::budget_sig`] (it already
    /// covers the entry name).
    pub budget_sig: u128,
}

impl SliceKey {
    /// Combined 128-bit hash of the key. Domain-separated from
    /// [`ReportKey::key_hash`] with a leading discriminator byte so a
    /// slice key can never alias a module key's file stem or cost
    /// record.
    pub fn key_hash(&self) -> u128 {
        let mut w = Writer::default();
        w.u8(1);
        w.u128(self.slice_fp);
        w.u8(level_tag(self.level));
        w.u128(self.budget_sig);
        fnv128(&w.buf)
    }

    /// The slice artifact's file stem: 32 hex digits of the combined key.
    pub fn file_stem(&self) -> String {
        format!("{:032x}", self.key_hash())
    }
}

/// Hashes every configuration dimension that can change a verification
/// outcome into one 128-bit signature. Two jobs with equal module
/// fingerprints, levels and budget signatures are byte-identical runs.
pub fn budget_signature(
    entry: &str,
    bytes: &[usize],
    path_workers: usize,
    cfg: &SymConfig,
) -> u128 {
    let mut w = Writer::default();
    w.str(entry);
    w.u32(bytes.len() as u32);
    for &b in bytes {
        w.u64(b as u64);
    }
    // Worker count never changes merged results (the driver is
    // deterministic by construction), but it is part of the run's identity
    // for timing-bearing artifacts, so it participates in the key.
    w.u64(path_workers as u64);
    // The suite driver overrides `cfg.input_bytes` per entry of `bytes`,
    // but this function is public API: hash the field anyway so direct
    // callers varying it can never collide onto one key.
    w.u64(cfg.input_bytes as u64);
    w.u8(cfg.pass_len_arg as u8);
    w.u32(cfg.extra_args.len() as u32);
    for a in &cfg.extra_args {
        match a {
            SymArg::Concrete(v) => {
                w.u8(0);
                w.u64(*v);
            }
            SymArg::Symbolic => w.u8(1),
        }
    }
    w.u64(cfg.max_paths);
    w.u64(cfg.max_instructions);
    w.u64(cfg.timeout.as_nanos() as u64);
    w.u8(cfg.collect_tests as u8);
    w.u8(cfg.use_annotations as u8);
    w.u8(cfg.solver.use_intervals as u8);
    w.u8(cfg.solver.use_cex_cache as u8);
    w.u8(cfg.solver.use_query_cache as u8);
    w.u8(cfg.solver.use_shared_cache as u8);
    w.u8(cfg.solver.use_enumeration as u8);
    match cfg.search {
        overify_symex::SearchStrategy::Dfs => w.u8(0),
        overify_symex::SearchStrategy::Bfs => w.u8(1),
        overify_symex::SearchStrategy::RandomState(seed) => {
            w.u8(2);
            w.u64(seed);
        }
    }
    // Like `path_workers`: the donation policy never changes merged
    // results, but it is part of the run's identity for timing-bearing
    // artifacts.
    match cfg.donation {
        overify_symex::DonationPolicy::OldestState => w.u8(0),
        overify_symex::DonationPolicy::StealHalf => w.u8(1),
    }
    w.u64(cfg.max_ite_span);
    fnv128(&w.buf)
}

/// The stored outcome of one suite job: the full report per swept input
/// size. Compile time is *not* stored — a hit still compiles (it must, to
/// know the module fingerprint), so the fresh compile time is the honest
/// one.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredJob {
    pub runs: Vec<(usize, VerificationReport)>,
}

/// The store's canonical one-byte encoding of an [`OptLevel`]. Public so
/// every on-disk and on-wire format (artifacts, the serve protocol) uses
/// the *same* table and can never drift per format.
pub fn level_tag(l: OptLevel) -> u8 {
    match l {
        OptLevel::O0 => 0,
        OptLevel::O1 => 1,
        OptLevel::O2 => 2,
        OptLevel::O3 => 3,
        OptLevel::Overify => 4,
    }
}

/// Inverse of [`level_tag`]; `None` on an unknown tag.
pub fn level_from_tag(t: u8) -> Option<OptLevel> {
    Some(match t {
        0 => OptLevel::O0,
        1 => OptLevel::O1,
        2 => OptLevel::O2,
        3 => OptLevel::O3,
        4 => OptLevel::Overify,
        _ => return None,
    })
}

fn bug_kind_tag(k: BugKind) -> u8 {
    match k {
        BugKind::OutOfBounds => 0,
        BugKind::DivByZero => 1,
        BugKind::AssertFail => 2,
        BugKind::ExplicitAbort => 3,
        BugKind::UnreachableReached => 4,
    }
}

fn bug_kind_from_tag(t: u8) -> Option<BugKind> {
    Some(match t {
        0 => BugKind::OutOfBounds,
        1 => BugKind::DivByZero,
        2 => BugKind::AssertFail,
        3 => BugKind::ExplicitAbort,
        4 => BugKind::UnreachableReached,
        _ => return None,
    })
}

/// Serializes one [`VerificationReport`] into `w`.
///
/// Public because the store's framing is the workspace's lingua franca for
/// reports: the verification service's wire protocol reuses exactly this
/// encoding, so a report round-trips bit-identically whether it travels
/// through a report artifact on disk or a socket.
pub fn encode_report(w: &mut Writer, r: &VerificationReport) {
    w.u64(r.paths_completed);
    w.u64(r.paths_buggy);
    w.u64(r.paths_killed);
    w.u64(r.forks);
    w.u64(r.instructions);
    w.u32(r.bugs.len() as u32);
    for b in &r.bugs {
        w.u8(bug_kind_tag(b.kind));
        w.str(&b.location);
        w.bytes(&b.input);
    }
    w.u32(r.tests.len() as u32);
    for t in &r.tests {
        w.bytes(&t.input);
        w.u32(t.output.len() as u32);
        for o in &t.output {
            match o {
                None => w.u8(0),
                Some(v) => {
                    w.u8(1);
                    w.u8(*v);
                }
            }
        }
    }
    w.u32(r.path_ids.len() as u32);
    for &id in &r.path_ids {
        w.u64(id);
    }
    w.u64(r.donations);
    w.u64(r.steals);
    encode_solver_stats(w, &r.solver);
    w.u64(r.time.as_nanos() as u64);
    w.u8(r.exhausted as u8);
    w.u8(r.timed_out as u8);
}

/// Deserializes one [`VerificationReport`]; `None` on truncation or a
/// malformed tag (see [`encode_report`]).
pub fn decode_report(r: &mut Reader) -> Option<VerificationReport> {
    let mut out = VerificationReport {
        paths_completed: r.u64()?,
        paths_buggy: r.u64()?,
        paths_killed: r.u64()?,
        forks: r.u64()?,
        instructions: r.u64()?,
        ..Default::default()
    };
    for _ in 0..r.u32()? {
        out.bugs.push(Bug {
            kind: bug_kind_from_tag(r.u8()?)?,
            location: r.str()?,
            input: r.bytes()?,
        });
    }
    for _ in 0..r.u32()? {
        let input = r.bytes()?;
        let n = r.u32()?;
        let mut output = Vec::with_capacity(n as usize);
        for _ in 0..n {
            output.push(match r.u8()? {
                0 => None,
                1 => Some(r.u8()?),
                _ => return None,
            });
        }
        out.tests.push(TestCase { input, output });
    }
    for _ in 0..r.u32()? {
        out.path_ids.push(r.u64()?);
    }
    out.donations = r.u64()?;
    out.steals = r.u64()?;
    out.solver = decode_solver_stats(r)?;
    out.time = Duration::from_nanos(r.u64()?);
    out.exhausted = r.u8()? != 0;
    out.timed_out = r.u8()? != 0;
    Some(out)
}

fn encode_solver_stats(w: &mut Writer, s: &SolverStats) {
    for v in [
        s.queries,
        s.solved_const,
        s.solved_interval,
        s.solved_cex_cache,
        s.solved_query_cache,
        s.solved_annotation,
        s.solved_sat,
        s.solved_shared,
        s.solved_enum,
        s.slice_dropped,
        s.concretizations,
        s.sat_decisions,
        s.sat_conflicts,
        s.solver_ns,
    ] {
        w.u64(v);
    }
}

fn decode_solver_stats(r: &mut Reader) -> Option<SolverStats> {
    Some(SolverStats {
        queries: r.u64()?,
        solved_const: r.u64()?,
        solved_interval: r.u64()?,
        solved_cex_cache: r.u64()?,
        solved_query_cache: r.u64()?,
        solved_annotation: r.u64()?,
        solved_sat: r.u64()?,
        solved_shared: r.u64()?,
        solved_enum: r.u64()?,
        slice_dropped: r.u64()?,
        concretizations: r.u64()?,
        sat_decisions: r.u64()?,
        sat_conflicts: r.u64()?,
        solver_ns: r.u64()?,
    })
}

/// Serializes a whole artifact file with the given magic: header, key
/// echo (fingerprint, level, budget signature), checksummed payload.
fn encode_keyed(magic: &[u8; 8], fp: u128, level: OptLevel, sig: u128, job: &StoredJob) -> Vec<u8> {
    let mut payload = Writer::default();
    payload.u32(job.runs.len() as u32);
    for (bytes, report) in &job.runs {
        payload.u64(*bytes as u64);
        encode_report(&mut payload, report);
    }

    let mut out = Writer::default();
    out.buf.extend_from_slice(magic);
    out.u32(VERSION);
    out.u128(fp);
    out.u8(level_tag(level));
    out.u128(sig);
    out.u32(payload.buf.len() as u32);
    out.u64(fnv64(&payload.buf));
    out.buf.extend_from_slice(&payload.buf);
    out.buf
}

/// Deserializes an artifact with the given magic, checking the full key
/// echo. `None` on *any* defect.
fn decode_keyed(
    bytes: &[u8],
    magic: &[u8; 8],
    fp: u128,
    level: OptLevel,
    sig: u128,
) -> Option<StoredJob> {
    if bytes.len() < magic.len() || &bytes[..magic.len()] != magic {
        return None;
    }
    let mut r = Reader::new(&bytes[magic.len()..]);
    if r.u32()? != VERSION {
        return None;
    }
    if r.u128()? != fp || level_from_tag(r.u8()?)? != level || r.u128()? != sig {
        return None;
    }
    let len = r.u32()? as usize;
    let check = r.u64()?;
    let payload = r.bytes_exact(len)?;
    if fnv64(payload) != check {
        return None;
    }
    let mut p = Reader::new(payload);
    let mut runs = Vec::new();
    for _ in 0..p.u32()? {
        let bytes = p.u64()? as usize;
        runs.push((bytes, decode_report(&mut p)?));
    }
    (p.remaining() == 0).then_some(StoredJob { runs })
}

/// Reads just the leading fingerprint out of an artifact header (magic,
/// version, first key field — no payload decode). `None` when the bytes
/// are not a current-version artifact of that magic.
fn peek_fp(bytes: &[u8], magic: &[u8; 8]) -> Option<u128> {
    if bytes.len() < magic.len() || &bytes[..magic.len()] != magic {
        return None;
    }
    let mut r = Reader::new(&bytes[magic.len()..]);
    if r.u32()? != VERSION {
        return None;
    }
    r.u128()
}

/// Reads the full key echo out of an artifact header with the given
/// magic — fingerprint, level and budget signature, no payload decode.
/// `None` when the bytes are not a current-version artifact.
fn peek_key(bytes: &[u8], magic: &[u8; 8]) -> Option<(u128, OptLevel, u128)> {
    if bytes.len() < magic.len() || &bytes[..magic.len()] != magic {
        return None;
    }
    let mut r = Reader::new(&bytes[magic.len()..]);
    if r.u32()? != VERSION {
        return None;
    }
    let fp = r.u128()?;
    let level = level_from_tag(r.u8()?)?;
    let sig = r.u128()?;
    Some((fp, level, sig))
}

/// Reads the full [`ReportKey`] out of a module artifact's header — the
/// registry listing's per-file probe (no payload decode).
pub fn peek_artifact_key(bytes: &[u8]) -> Option<ReportKey> {
    peek_key(bytes, MAGIC).map(|(module_fp, level, budget_sig)| ReportKey {
        module_fp,
        level,
        budget_sig,
    })
}

/// Reads the full [`SliceKey`] out of a slice artifact's header.
pub fn peek_slice_artifact_key(bytes: &[u8]) -> Option<SliceKey> {
    peek_key(bytes, SLICE_MAGIC).map(|(slice_fp, level, budget_sig)| SliceKey {
        slice_fp,
        level,
        budget_sig,
    })
}

/// Serializes a whole module-keyed artifact file: header, key echo,
/// checksummed payload.
pub fn encode_artifact(key: &ReportKey, job: &StoredJob) -> Vec<u8> {
    encode_keyed(MAGIC, key.module_fp, key.level, key.budget_sig, job)
}

/// Reads just the module fingerprint out of an artifact file's header
/// (magic, version, key echo — no payload decode). `None` when the bytes
/// are not a current-version artifact; garbage collection treats that as
/// dead weight.
pub fn peek_module_fp(bytes: &[u8]) -> Option<u128> {
    peek_fp(bytes, MAGIC)
}

/// Deserializes an artifact file. `None` on *any* defect — wrong magic or
/// version, a key echo that does not match `key` (hash-collision guard),
/// checksum mismatch, truncation — so a damaged artifact degrades to a
/// cache miss, never to a wrong report.
pub fn decode_artifact(bytes: &[u8], key: &ReportKey) -> Option<StoredJob> {
    decode_keyed(bytes, MAGIC, key.module_fp, key.level, key.budget_sig)
}

/// Serializes a slice-keyed artifact file (same layout as
/// [`encode_artifact`], slice magic and slice fingerprint in the
/// header).
pub fn encode_slice_artifact(key: &SliceKey, job: &StoredJob) -> Vec<u8> {
    encode_keyed(SLICE_MAGIC, key.slice_fp, key.level, key.budget_sig, job)
}

/// Reads just the slice fingerprint out of a slice artifact's header —
/// garbage collection's liveness probe for the slice artifact class.
pub fn peek_slice_fp(bytes: &[u8]) -> Option<u128> {
    peek_fp(bytes, SLICE_MAGIC)
}

/// Deserializes a slice artifact. `None` on any defect, exactly like
/// [`decode_artifact`] — a damaged or garbage-collected slice verdict
/// degrades to a miss, never to a corrupt splice.
pub fn decode_slice_artifact(bytes: &[u8], key: &SliceKey) -> Option<StoredJob> {
    decode_keyed(bytes, SLICE_MAGIC, key.slice_fp, key.level, key.budget_sig)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> VerificationReport {
        VerificationReport {
            paths_completed: 5,
            paths_buggy: 1,
            paths_killed: 2,
            forks: 7,
            instructions: 12345,
            bugs: vec![Bug {
                kind: BugKind::DivByZero,
                location: "umain/b3".into(),
                input: vec![0, 255, 7],
            }],
            tests: vec![TestCase {
                input: vec![65, 0],
                output: vec![Some(65), None, Some(10)],
            }],
            path_ids: vec![3, 1, 4, 1],
            donations: 2,
            steals: 3,
            solver: SolverStats {
                queries: 100,
                solved_sat: 9,
                slice_dropped: 44,
                ..Default::default()
            },
            time: Duration::from_micros(98765),
            exhausted: true,
            timed_out: false,
        }
    }

    fn sample_key() -> ReportKey {
        ReportKey {
            module_fp: 0xABCD << 64 | 0x1234,
            level: OptLevel::Overify,
            budget_sig: 42,
        }
    }

    #[test]
    fn artifact_roundtrip_is_byte_identical() {
        let key = sample_key();
        let job = StoredJob {
            runs: vec![(2, sample_report()), (3, VerificationReport::default())],
        };
        let bytes = encode_artifact(&key, &job);
        let back = decode_artifact(&bytes, &key).expect("decodes");
        assert_eq!(back, job);
        // Encoding the decoded value reproduces the exact file bytes.
        assert_eq!(encode_artifact(&key, &back), bytes);
    }

    #[test]
    fn any_damage_degrades_to_miss() {
        let key = sample_key();
        let job = StoredJob {
            runs: vec![(2, sample_report())],
        };
        let good = encode_artifact(&key, &job);
        assert!(decode_artifact(&good, &key).is_some());
        // Truncation anywhere.
        for cut in [0, 4, MAGIC.len() + 3, good.len() / 2, good.len() - 1] {
            assert!(decode_artifact(&good[..cut], &key).is_none(), "cut={cut}");
        }
        // One flipped payload byte.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(decode_artifact(&bad, &key).is_none());
        // Version bump.
        let mut old = good.clone();
        old[MAGIC.len()] ^= 0xFF;
        assert!(decode_artifact(&old, &key).is_none());
        // A different key rejects the echo.
        let other = ReportKey {
            budget_sig: 43,
            ..key
        };
        assert!(decode_artifact(&good, &other).is_none());
    }

    #[test]
    fn budget_signature_separates_configurations() {
        let cfg = SymConfig {
            pass_len_arg: true,
            ..Default::default()
        };
        let base = budget_signature("umain", &[2, 3], 1, &cfg);
        assert_eq!(base, budget_signature("umain", &[2, 3], 1, &cfg));
        assert_ne!(base, budget_signature("main", &[2, 3], 1, &cfg));
        assert_ne!(base, budget_signature("umain", &[2], 1, &cfg));
        assert_ne!(base, budget_signature("umain", &[2, 3], 4, &cfg));
        let mut loose = cfg.clone();
        loose.max_instructions += 1;
        assert_ne!(base, budget_signature("umain", &[2, 3], 1, &loose));
        let mut toggled = cfg.clone();
        toggled.solver.use_enumeration = false;
        assert_ne!(base, budget_signature("umain", &[2, 3], 1, &toggled));
        let mut wider = cfg.clone();
        wider.input_bytes += 1;
        assert_ne!(base, budget_signature("umain", &[2, 3], 1, &wider));
        let mut collect = cfg.clone();
        collect.collect_tests = true;
        assert_ne!(base, budget_signature("umain", &[2, 3], 1, &collect));
        let mut donated = cfg;
        donated.donation = overify_symex::DonationPolicy::StealHalf;
        assert_ne!(base, budget_signature("umain", &[2, 3], 1, &donated));
    }

    #[test]
    fn header_peek_reads_the_module_fingerprint() {
        let key = sample_key();
        let bytes = encode_artifact(
            &key,
            &StoredJob {
                runs: vec![(2, sample_report())],
            },
        );
        assert_eq!(peek_module_fp(&bytes), Some(key.module_fp));
        assert_eq!(peek_module_fp(&bytes[..10]), None, "truncated header");
        let mut stale = bytes.clone();
        stale[MAGIC.len()] ^= 0xFF;
        assert_eq!(peek_module_fp(&stale), None, "version skew");
        assert_eq!(peek_module_fp(b"junk"), None);
    }

    #[test]
    fn header_peek_reads_the_whole_key() {
        let key = sample_key();
        let bytes = encode_artifact(
            &key,
            &StoredJob {
                runs: vec![(2, sample_report())],
            },
        );
        assert_eq!(peek_artifact_key(&bytes), Some(key));
        assert_eq!(peek_slice_artifact_key(&bytes), None, "wrong magic");
        assert_eq!(peek_artifact_key(&bytes[..20]), None, "truncated header");
        let skey = SliceKey {
            slice_fp: 7 << 100,
            level: OptLevel::O3,
            budget_sig: 99,
        };
        let sbytes = encode_slice_artifact(
            &skey,
            &StoredJob {
                runs: vec![(2, sample_report())],
            },
        );
        assert_eq!(peek_slice_artifact_key(&sbytes), Some(skey));
        assert_eq!(peek_artifact_key(&sbytes), None, "wrong magic");
    }

    #[test]
    fn slice_artifact_roundtrip_and_damage() {
        let key = SliceKey {
            slice_fp: 0xFEED << 64 | 0xBEEF,
            level: OptLevel::Overify,
            budget_sig: 42,
        };
        let job = StoredJob {
            runs: vec![(2, sample_report())],
        };
        let bytes = encode_slice_artifact(&key, &job);
        assert_eq!(decode_slice_artifact(&bytes, &key), Some(job.clone()));
        assert_eq!(peek_slice_fp(&bytes), Some(key.slice_fp));
        // Module-keyed accessors reject the slice magic and vice versa.
        assert_eq!(peek_module_fp(&bytes), None);
        let module_bytes = encode_artifact(&sample_key(), &job);
        assert_eq!(peek_slice_fp(&module_bytes), None);
        // Damage degrades to a miss.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(decode_slice_artifact(&bad, &key).is_none());
        let other = SliceKey {
            budget_sig: 43,
            ..key
        };
        assert!(decode_slice_artifact(&bytes, &other).is_none());
    }

    #[test]
    fn slice_and_module_keys_never_share_a_stem() {
        // Same raw fields, different key type: the domain tag separates
        // the hash inputs.
        let m = sample_key();
        let s = SliceKey {
            slice_fp: m.module_fp,
            level: m.level,
            budget_sig: m.budget_sig,
        };
        assert_ne!(m.key_hash(), s.key_hash());
        assert_ne!(m.file_stem(), s.file_stem());
        assert_eq!(s.file_stem().len(), 32);
    }

    #[test]
    fn keys_name_distinct_files() {
        let a = sample_key();
        let b = ReportKey {
            level: OptLevel::O0,
            ..a
        };
        let c = ReportKey {
            module_fp: a.module_fp + 1,
            ..a
        };
        assert_ne!(a.file_stem(), b.file_stem());
        assert_ne!(a.file_stem(), c.file_stem());
        assert_eq!(a.file_stem().len(), 32);
        assert!(a.file_stem().chars().all(|c| c.is_ascii_hexdigit()));
    }
}
