//! Per-run resource ledgers.
//!
//! Verification time is the quantity -OVERIFY optimizes, so every run
//! accounts for where its time went: a [`RunLedger`] accumulates the
//! run's solver wall time, SAT solves, paths, interpreted instructions,
//! report bytes moved and — when the serve daemon leased subtrees out —
//! which remote workers contributed. The suite driver attaches one to
//! every job result and persists it here, beside the cost log, so a
//! sweep leaves an auditable per-run cost trail that the fleet telemetry
//! plane reconciles against its live counters.
//!
//! ```text
//! header:  magic  b"OVFYLDG\0"   8 bytes
//!          version u32
//! record:  len     u32           payload length
//!          check   u64           FNV-1a over the payload bytes
//!          payload variable      one encoded [`RunLedger`]
//! ```
//!
//! Records are append-only and variable-size (names and worker lists);
//! loading stops at the first torn or bit-rotted record, exactly like
//! the cost log, so everything before a damaged tail survives.

use crate::codec::{fnv64, Reader, Writer};
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Magic prefix of a ledger log file.
pub const MAGIC: &[u8; 8] = b"OVFYLDG\0";
/// Current format version; mismatches load as empty.
pub const VERSION: u32 = 1;

/// A sane upper bound on one record's payload (a ledger is a name, a
/// dozen integers and a few worker names); anything larger is damage.
const MAX_PAYLOAD: u32 = 1 << 20;

/// The resource ledger of one suite job: where the run's verification
/// effort went, summed over its swept input sizes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunLedger {
    /// The job's display name.
    pub name: String,
    /// Wall-clock nanoseconds of the verification phase (compile time is
    /// reported separately and store hits have no verification phase).
    pub verify_ns: u64,
    /// Nanoseconds spent inside the constraint solver, summed over every
    /// worker that contributed (from `SolverStats::solver_ns`).
    pub solver_ns: u64,
    /// Satisfiability queries issued.
    pub solver_queries: u64,
    /// Queries that fell all the way through to bit-blasting + SAT.
    pub sat_solves: u64,
    /// Paths explored to an end (completed + buggy + killed).
    pub paths: u64,
    /// Instructions interpreted.
    pub instructions: u64,
    /// Swept input sizes (reports merged into the result).
    pub runs: u64,
    /// Canonical report bytes produced by the run — the payload volume
    /// the result moved through stores and sockets.
    pub bytes_moved: u64,
    /// True when the result was answered from the persistent store
    /// (then the solver/path columns are zero: nothing executed).
    pub from_store: bool,
    /// True when the store answer came from the function-slice grain.
    pub from_slice: bool,
    /// Names of remote workers that contributed completed subtree leases,
    /// sorted and deduplicated. Empty for purely local runs.
    pub workers: Vec<String>,
}

/// Serializes one ledger into `w` — shared by the log file and the serve
/// protocol, so a ledger travels identically on disk and on the wire.
pub fn encode_ledger(w: &mut Writer, l: &RunLedger) {
    w.str(&l.name);
    for v in [
        l.verify_ns,
        l.solver_ns,
        l.solver_queries,
        l.sat_solves,
        l.paths,
        l.instructions,
        l.runs,
        l.bytes_moved,
    ] {
        w.u64(v);
    }
    w.u8(l.from_store as u8);
    w.u8(l.from_slice as u8);
    w.u32(l.workers.len() as u32);
    for name in &l.workers {
        w.str(name);
    }
}

/// Deserializes one ledger; `None` on truncation.
pub fn decode_ledger(r: &mut Reader) -> Option<RunLedger> {
    let mut out = RunLedger {
        name: r.str()?,
        verify_ns: r.u64()?,
        solver_ns: r.u64()?,
        solver_queries: r.u64()?,
        sat_solves: r.u64()?,
        paths: r.u64()?,
        instructions: r.u64()?,
        runs: r.u64()?,
        bytes_moved: r.u64()?,
        from_store: r.u8()? != 0,
        from_slice: r.u8()? != 0,
        ..Default::default()
    };
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return None;
    }
    for _ in 0..n {
        out.workers.push(r.str()?);
    }
    Some(out)
}

/// Appends one ledger record, writing the header first when the file is
/// new.
pub fn append(path: &Path, ledger: &RunLedger) -> io::Result<()> {
    let mut payload = Writer::default();
    encode_ledger(&mut payload, ledger);
    let mut rec = Writer::default();
    rec.u32(payload.buf.len() as u32);
    rec.u64(fnv64(&payload.buf));
    rec.buf.extend_from_slice(&payload.buf);

    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if file.metadata()?.len() == 0 {
        let mut h = Writer::default();
        h.buf.extend_from_slice(MAGIC);
        h.u32(VERSION);
        file.write_all(&h.buf)?;
    }
    file.write_all(&rec.buf)?;
    Ok(())
}

/// Loads every intact ledger, in append order. An absent, foreign or
/// stale-version file loads as empty; a damaged tail terminates the scan
/// at the last good record.
pub fn load(path: &Path) -> Vec<RunLedger> {
    let Ok(bytes) = fs::read(path) else {
        return Vec::new();
    };
    if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
        return Vec::new();
    }
    let mut r = Reader::new(&bytes[MAGIC.len()..]);
    if r.u32() != Some(VERSION) {
        return Vec::new();
    }
    let mut out = Vec::new();
    while let Some(len) = r.u32() {
        if len > MAX_PAYLOAD {
            break;
        }
        let Some(check) = r.u64() else { break };
        let Some(payload) = r.bytes_exact(len as usize) else {
            break;
        };
        if fnv64(payload) != check {
            break;
        }
        let mut p = Reader::new(payload);
        let Some(ledger) = decode_ledger(&mut p) else {
            break;
        };
        if p.remaining() != 0 {
            break;
        }
        out.push(ledger);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("overify_ledger_{}_{name}", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    fn sample(name: &str) -> RunLedger {
        RunLedger {
            name: name.into(),
            verify_ns: 1_000_000,
            solver_ns: 600_000,
            solver_queries: 42,
            sat_solves: 7,
            paths: 31,
            instructions: 9000,
            runs: 2,
            bytes_moved: 512,
            from_store: false,
            from_slice: false,
            workers: vec!["overify-worker:11".into(), "overify-worker:12".into()],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for l in [
            sample("echo"),
            RunLedger::default(),
            RunLedger {
                from_store: true,
                from_slice: true,
                workers: Vec::new(),
                ..sample("hit")
            },
        ] {
            let mut w = Writer::default();
            encode_ledger(&mut w, &l);
            let mut r = Reader::new(&w.buf);
            assert_eq!(decode_ledger(&mut r), Some(l));
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn append_load_roundtrip_in_order() {
        let p = tmp("roundtrip");
        assert!(load(&p).is_empty(), "absent file loads empty");
        append(&p, &sample("a")).unwrap();
        append(&p, &sample("b")).unwrap();
        assert_eq!(load(&p), vec![sample("a"), sample("b")]);
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn torn_tail_keeps_the_prefix() {
        let p = tmp("torn");
        append(&p, &sample("a")).unwrap();
        append(&p, &sample("b")).unwrap();
        let bytes = fs::read(&p).unwrap();
        fs::write(&p, &bytes[..bytes.len() - 5]).unwrap();
        assert_eq!(load(&p), vec![sample("a")]);
        // A flipped payload byte stops the scan at the checksum.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        fs::write(&p, &bad).unwrap();
        assert_eq!(load(&p), vec![sample("a")]);
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn foreign_or_stale_file_loads_empty() {
        let p = tmp("foreign");
        fs::write(&p, b"not a ledger log").unwrap();
        assert!(load(&p).is_empty());
        let mut h = Writer::default();
        h.buf.extend_from_slice(MAGIC);
        h.u32(VERSION + 1);
        fs::write(&p, &h.buf).unwrap();
        assert!(load(&p).is_empty());
        let _ = fs::remove_file(&p);
    }
}
