//! Per-key observed-cost metadata.
//!
//! The store-aware scheduler orders verification work cost-first; its best
//! cost signal is what the same content address cost *last time*. This
//! module persists that feedback as a tiny append-only log beside the
//! report artifacts:
//!
//! ```text
//! header:  magic  b"OVFYCST\0"   8 bytes
//!          version u32
//! record:  kind    u8            0 = module-keyed, 1 = slice-keyed
//!          key     u128          combined report- or slice-key hash
//!          fp      u128          module or slice fingerprint (GC liveness)
//!          nanos   u64           observed verification wall time
//!          check   u64           FNV-1a over the 41 payload bytes
//! ```
//!
//! Costs are recorded at *both* grains: the module-keyed record prices
//! an exact resubmission, and the slice-keyed record survives edits
//! elsewhere in the module, so the serve scheduler can price the
//! changed-slice remainder of a warm submission instead of falling back
//! to the static overestimate for the whole thing.
//!
//! Later records for the same key supersede earlier ones (costs drift as
//! machines and budgets change), so appends never need read-modify-write
//! and concurrent writers at worst duplicate a record. Loading tolerates a
//! torn or bit-rotted tail the same way the solver log does: scan stops at
//! the first bad record and everything before it survives. Unlike report
//! artifacts, cost records are written for truncated runs too — a
//! budget-capped job is exactly the kind that returns as a miss, and its
//! observed wall time is what the scheduler needs to place it.

use crate::codec::{fnv64, Reader, Writer};
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Magic prefix of a cost-metadata log file.
pub const MAGIC: &[u8; 8] = b"OVFYCST\0";
/// Current format version; mismatches are rejected (and the file is
/// rewritten wholesale by the next compaction). v2 added the record
/// kind byte for slice-keyed costs.
pub const VERSION: u32 = 2;

const PAYLOAD_LEN: usize = 1 + 16 + 16 + 8;
const RECORD_LEN: usize = PAYLOAD_LEN + 8;

/// Which content-addressing grain a cost record prices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostKind {
    /// Keyed by [`crate::ReportKey::key_hash`]; `fp` is the module
    /// fingerprint.
    Module,
    /// Keyed by [`crate::SliceKey::key_hash`]; `fp` is the entry
    /// function's slice fingerprint.
    Slice,
}

/// One observed-cost record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostRecord {
    /// The addressing grain of this record.
    pub kind: CostKind,
    /// Combined key hash at that grain.
    pub key: u128,
    /// The key's module or slice fingerprint, kept denormalized so
    /// garbage collection can evict records whose program content no
    /// longer occurs.
    pub fp: u128,
    /// Observed verification wall time, in nanoseconds.
    pub nanos: u64,
}

fn encode_record(r: &CostRecord) -> Vec<u8> {
    let mut w = Writer::default();
    w.u8(match r.kind {
        CostKind::Module => 0,
        CostKind::Slice => 1,
    });
    w.u128(r.key);
    w.u128(r.fp);
    w.u64(r.nanos);
    let check = fnv64(&w.buf);
    w.u64(check);
    w.buf
}

/// Appends one record, writing the header first when the file is new.
pub fn append(path: &Path, record: &CostRecord) -> io::Result<()> {
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if file.metadata()?.len() == 0 {
        let mut h = Writer::default();
        h.buf.extend_from_slice(MAGIC);
        h.u32(VERSION);
        file.write_all(&h.buf)?;
    }
    file.write_all(&encode_record(record))?;
    Ok(())
}

/// Loads every intact record, in file order (callers keep the last record
/// per key). An absent file, a foreign file or a stale version loads as
/// empty; a damaged tail terminates the scan at the last good record.
pub fn load(path: &Path) -> Vec<CostRecord> {
    let Ok(bytes) = fs::read(path) else {
        return Vec::new();
    };
    if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
        return Vec::new();
    }
    let mut r = Reader::new(&bytes[MAGIC.len()..]);
    if r.u32() != Some(VERSION) {
        return Vec::new();
    }
    let mut out = Vec::new();
    while r.remaining() >= RECORD_LEN {
        let Some(payload) = r.bytes_exact(PAYLOAD_LEN) else {
            break;
        };
        let check = fnv64(payload);
        if r.u64() != Some(check) {
            break;
        }
        let mut p = Reader::new(payload);
        let kind = match p.u8().unwrap() {
            0 => CostKind::Module,
            1 => CostKind::Slice,
            // Unknown grain: a *newer* writer's record kind, not damage —
            // the frame is fixed-size and its checksum verified, so skip
            // just this record and keep scanning. Breaking here would
            // silently discard every valid record after it.
            _ => continue,
        };
        out.push(CostRecord {
            kind,
            key: p.u128().unwrap(),
            fp: p.u128().unwrap(),
            nanos: p.u64().unwrap(),
        });
    }
    out
}

/// Rewrites the whole file from `records` (deduplicated by the caller),
/// atomically. Used by garbage collection to drop dead modules' records.
pub fn compact(path: &Path, records: &[CostRecord]) -> io::Result<()> {
    let mut w = Writer::default();
    w.buf.extend_from_slice(MAGIC);
    w.u32(VERSION);
    for r in records {
        w.buf.extend_from_slice(&encode_record(r));
    }
    let tmp = path.with_extension(format!("tmp{}", std::process::id()));
    fs::write(&tmp, &w.buf)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("overify_cost_{}_{name}", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    fn rec(key: u128, fp: u128, nanos: u64) -> CostRecord {
        CostRecord {
            kind: CostKind::Module,
            key,
            fp,
            nanos,
        }
    }

    #[test]
    fn append_load_roundtrip_in_order() {
        let p = tmp("roundtrip");
        assert!(load(&p).is_empty(), "absent file loads empty");
        append(&p, &rec(1, 10, 100)).unwrap();
        append(&p, &rec(2, 20, 200)).unwrap();
        append(&p, &rec(1, 10, 150)).unwrap(); // supersedes in file order
        assert_eq!(
            load(&p),
            vec![rec(1, 10, 100), rec(2, 20, 200), rec(1, 10, 150)]
        );
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn torn_tail_keeps_the_prefix() {
        let p = tmp("torn");
        append(&p, &rec(1, 10, 100)).unwrap();
        append(&p, &rec(2, 20, 200)).unwrap();
        let bytes = fs::read(&p).unwrap();
        fs::write(&p, &bytes[..bytes.len() - 3]).unwrap();
        assert_eq!(load(&p), vec![rec(1, 10, 100)]);
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn foreign_or_stale_file_loads_empty() {
        let p = tmp("foreign");
        fs::write(&p, b"not a cost log at all").unwrap();
        assert!(load(&p).is_empty());
        let mut h = Writer::default();
        h.buf.extend_from_slice(MAGIC);
        h.u32(VERSION + 1);
        fs::write(&p, &h.buf).unwrap();
        assert!(load(&p).is_empty());
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn slice_records_roundtrip_beside_module_records() {
        let p = tmp("slice_kind");
        let slice = CostRecord {
            kind: CostKind::Slice,
            key: 7,
            fp: 70,
            nanos: 700,
        };
        append(&p, &rec(1, 10, 100)).unwrap();
        append(&p, &slice).unwrap();
        assert_eq!(load(&p), vec![rec(1, 10, 100), slice]);
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn unknown_grain_record_is_skipped_not_fatal() {
        // A newer writer interleaves a record with grain tag 7; a v2
        // reader must skip it and still see every valid record after it.
        use std::io::Write as _;
        let p = tmp("unknown_grain");
        append(&p, &rec(1, 10, 100)).unwrap();
        let mut w = Writer::default();
        w.u8(7); // future grain kind
        w.u128(99);
        w.u128(990);
        w.u64(9900);
        let check = fnv64(&w.buf);
        w.u64(check);
        assert_eq!(w.buf.len(), RECORD_LEN, "future records keep the frame");
        fs::OpenOptions::new()
            .append(true)
            .open(&p)
            .unwrap()
            .write_all(&w.buf)
            .unwrap();
        append(&p, &rec(2, 20, 200)).unwrap();
        let slice = CostRecord {
            kind: CostKind::Slice,
            key: 3,
            fp: 30,
            nanos: 300,
        };
        append(&p, &slice).unwrap();
        assert_eq!(load(&p), vec![rec(1, 10, 100), rec(2, 20, 200), slice]);
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn compact_rewrites_exactly() {
        let p = tmp("compact");
        append(&p, &rec(1, 10, 100)).unwrap();
        append(&p, &rec(2, 20, 200)).unwrap();
        compact(&p, &[rec(2, 20, 200)]).unwrap();
        assert_eq!(load(&p), vec![rec(2, 20, 200)]);
        let _ = fs::remove_file(&p);
    }
}
