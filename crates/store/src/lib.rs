//! `overify_store` — the persistent, content-addressed verification store.
//!
//! The -OVERIFY premise is that verification cost is paid *repeatedly* —
//! every build, every CI run — so anything that amortizes solver work
//! across runs multiplies the win of verification-friendly compilation.
//! This crate persists two layers of that work:
//!
//! * **Layer 1 — the solver-verdict log** ([`log`]). The cross-worker
//!   shared solver cache (`overify_symex::SharedQueryCache`) is keyed by
//!   pool-independent structural formula fingerprints, so its verdicts are
//!   valid across processes and days. The log is append-only with a
//!   versioned header, per-record checksums (a torn or bit-rotted tail
//!   costs only the records at and after the damage) and snapshot
//!   compaction.
//! * **Layer 2 — report artifacts** ([`artifact`]). Whole verification
//!   reports keyed by `(canonical module fingerprint, pipeline level,
//!   budget signature)`: a suite job whose program and configuration are
//!   byte-identical to a stored run is skipped entirely and the stored
//!   report returned verbatim.
//!
//! [`Store`] ties both to one directory:
//!
//! ```text
//! $OVERIFY_STORE/
//!   solver.log           layer 1 (one file, append + compact)
//!   reports/<key>.bin    layer 2, module grain (one artifact per
//!                        whole-module content address)
//!   slices/<key>.bin     layer 2, function grain (one artifact per
//!                        entry-function slice fingerprint — survives
//!                        edits elsewhere in the module)
//!   jobs/<id>.bin        durable gateway job records (submit-then-poll
//!                        state that outlives the gateway and the
//!                        daemon — see [`job`])
//!   costs.log            per-key observed verification cost at both
//!                        grains (scheduling metadata — see [`cost`])
//!   ledgers.log          per-run resource attribution (solver time,
//!                        SAT solves, paths, contributing workers —
//!                        see [`ledger`])
//! ```
//!
//! Concurrent *processes* may share a store: artifact writes are atomic
//! (temp + rename) and idempotent (same key ⇒ same bytes), and log appends
//! are checksummed so an interleaved tail degrades to a compactable,
//! partially-recovered log — never to wrong verdicts.

pub mod artifact;
pub mod codec;
pub mod cost;
pub mod job;
pub mod ledger;
pub mod lock;
pub mod log;

pub use artifact::{budget_signature, ReportKey, SliceKey, StoredJob};
pub use cost::{CostKind, CostRecord};
pub use job::{JobRecord, JobState, VerdictPointer};
pub use ledger::RunLedger;
pub use log::{LoadSummary, LogError, TailSummary};

use overify_obs::metrics::{LazyCounter, LazyHistogram};
use overify_opt::OptLevel;
use overify_symex::SharedQueryCache;
use std::collections::{HashMap, HashSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// In-memory observed-cost index: key hash → (grain, fingerprint, ns).
type CostMap = HashMap<u128, (cost::CostKind, u128, u64)>;

/// Where a store lives and which layers are active.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Store directory (created on open).
    pub root: PathBuf,
    /// Persist/warm-start the shared solver cache (layer 1).
    pub solver_cache: bool,
    /// Persist/skip-by report artifacts (layer 2).
    pub reports: bool,
}

impl StoreConfig {
    /// Both layers at `root`.
    pub fn at(root: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            root: root.into(),
            solver_cache: true,
            reports: true,
        }
    }

    /// The `OVERIFY_STORE` environment variable, when set and nonempty.
    pub fn from_env() -> Option<StoreConfig> {
        let path = std::env::var("OVERIFY_STORE").ok()?;
        let path = path.trim();
        (!path.is_empty()).then(|| StoreConfig::at(path))
    }
}

/// Store activity counters, carried into suite reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Suite jobs answered from a stored module-keyed report
    /// (verification skipped).
    pub report_hits: u64,
    /// Suite jobs that had no (usable) stored module-keyed report.
    pub report_misses: u64,
    /// Report artifacts written this run.
    pub reports_saved: u64,
    /// Suite jobs answered by splicing a stored *slice* verdict after
    /// the module-keyed lookup missed (the module changed, but not the
    /// entry function's dependency slice).
    pub splice_hits: u64,
    /// Slice-keyed lookups that missed (the changed-slice remainder
    /// that actually executes).
    pub splice_misses: u64,
    /// Slice artifacts written this run.
    pub slices_saved: u64,
    /// Solver verdicts warm-started from the log.
    pub solver_entries_loaded: u64,
    /// New solver verdicts appended (or compacted) to the log this run.
    pub solver_entries_saved: u64,
    /// Bytes of damaged log tail dropped during loading (the next save
    /// compacts them away).
    pub log_bytes_dropped: u64,
    /// Solver verdicts learned *live* from other processes by tailing the
    /// log after boot ([`Store::tail_solver_log`]).
    pub solver_entries_tailed: u64,
}

/// What one [`Store::tail_solver_log`] pass absorbed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TailStats {
    /// Verdicts new to the local cache this pass.
    pub absorbed: u64,
    /// Log records scanned past the cursor (absorbed + already known).
    pub records: u64,
    /// The log was compacted since the last pass; the scan restarted
    /// from zero.
    pub reread: bool,
    /// Bytes of another process's still-in-flight append at the tail;
    /// retried on the next pass.
    pub pending_bytes: u64,
}

/// A tailing reader's position in the solver log.
#[derive(Clone, Copy, Debug, Default)]
struct TailCursor {
    /// Byte offset just past the last record consumed.
    offset: u64,
    /// Header generation those bytes belong to; a mismatch on the next
    /// pass means the log was compacted and the offset is meaningless.
    generation: u64,
}

/// One open store directory. Cheap to share by reference across suite
/// worker threads; all mutation is internally synchronized.
pub struct Store {
    cfg: StoreConfig,
    /// Fingerprints known to be on disk already (loaded + appended), so
    /// saves write only the delta.
    persisted: Mutex<HashSet<u128>>,
    /// The log needs a compacting rewrite (damage or duplicate bloat seen
    /// at load, or a stale version).
    rewrite_log: Mutex<bool>,
    /// This handle's live-tailing position in the solver log.
    ///
    /// Lock order: `tail` before `persisted` before `rewrite_log`,
    /// everywhere.
    tail: Mutex<TailCursor>,
    /// Lazily-loaded per-key observed costs at both grains: key hash →
    /// (kind, fingerprint, ns). Module and slice key hashes are
    /// domain-separated, so one map serves both. Appends update the map
    /// in place, so one handle never rereads.
    costs: Mutex<Option<CostMap>>,
    report_hits: AtomicU64,
    report_misses: AtomicU64,
    reports_saved: AtomicU64,
    splice_hits: AtomicU64,
    splice_misses: AtomicU64,
    slices_saved: AtomicU64,
    solver_loaded: AtomicU64,
    solver_saved: AtomicU64,
    log_dropped: AtomicU64,
    solver_tailed: AtomicU64,
}

impl Store {
    /// Opens (creating directories as needed) a store.
    pub fn open(cfg: StoreConfig) -> io::Result<Store> {
        fs::create_dir_all(&cfg.root)?;
        if cfg.reports {
            fs::create_dir_all(cfg.root.join("reports"))?;
            fs::create_dir_all(cfg.root.join("slices"))?;
        }
        // Job records are control-plane state, not a cache layer: the
        // gateway's submit-then-poll contract depends on them even when
        // report persistence is switched off, so the directory always
        // exists.
        fs::create_dir_all(cfg.root.join("jobs"))?;
        Ok(Store {
            cfg,
            persisted: Mutex::new(HashSet::new()),
            rewrite_log: Mutex::new(false),
            tail: Mutex::new(TailCursor::default()),
            costs: Mutex::new(None),
            report_hits: AtomicU64::new(0),
            report_misses: AtomicU64::new(0),
            reports_saved: AtomicU64::new(0),
            splice_hits: AtomicU64::new(0),
            splice_misses: AtomicU64::new(0),
            slices_saved: AtomicU64::new(0),
            solver_loaded: AtomicU64::new(0),
            solver_saved: AtomicU64::new(0),
            log_dropped: AtomicU64::new(0),
            solver_tailed: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.cfg.root
    }

    /// Activity counters so far.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            report_hits: self.report_hits.load(Ordering::Relaxed),
            report_misses: self.report_misses.load(Ordering::Relaxed),
            reports_saved: self.reports_saved.load(Ordering::Relaxed),
            splice_hits: self.splice_hits.load(Ordering::Relaxed),
            splice_misses: self.splice_misses.load(Ordering::Relaxed),
            slices_saved: self.slices_saved.load(Ordering::Relaxed),
            solver_entries_loaded: self.solver_loaded.load(Ordering::Relaxed),
            solver_entries_saved: self.solver_saved.load(Ordering::Relaxed),
            log_bytes_dropped: self.log_dropped.load(Ordering::Relaxed),
            solver_entries_tailed: self.solver_tailed.load(Ordering::Relaxed),
        }
    }

    fn log_path(&self) -> PathBuf {
        self.cfg.root.join("solver.log")
    }

    fn lock_path(&self) -> PathBuf {
        self.cfg.root.join("solver.lock")
    }

    fn cost_path(&self) -> PathBuf {
        self.cfg.root.join("costs.log")
    }

    /// The per-run resource ledger log, beside the cost log.
    pub fn ledger_path(&self) -> PathBuf {
        self.cfg.root.join("ledgers.log")
    }

    fn reports_dir(&self) -> PathBuf {
        self.cfg.root.join("reports")
    }

    /// A collision-free temp sibling for an atomic temp+rename write.
    /// Concurrent writers of the *same* artifact within one process
    /// (two gateway threads stamping one job id, two suite workers
    /// saving one key) must not share a temp path — a pid-only suffix
    /// lets one writer's rename erase the other's temp file mid-write,
    /// surfacing as a spurious ENOENT.
    fn tmp_sibling(path: &Path) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        path.with_extension(format!("tmp{}_{seq}", std::process::id()))
    }

    fn report_path(&self, key: &ReportKey) -> PathBuf {
        self.cfg
            .root
            .join("reports")
            .join(format!("{}.bin", key.file_stem()))
    }

    fn slices_dir(&self) -> PathBuf {
        self.cfg.root.join("slices")
    }

    fn slice_path(&self, key: &SliceKey) -> PathBuf {
        self.cfg
            .root
            .join("slices")
            .join(format!("{}.bin", key.file_stem()))
    }

    /// Builds a solver cache warm-started from the log (empty when layer 1
    /// is disabled, the log is absent, or the log is unusable — a stale
    /// version or foreign file is *rejected cleanly*, remembered, and
    /// rewritten wholesale by the next [`Store::save_solver_cache`]).
    pub fn warm_solver_cache(&self) -> Arc<SharedQueryCache> {
        let cache = Arc::new(SharedQueryCache::new());
        if !self.cfg.solver_cache {
            return cache;
        }
        match log::load(&self.log_path(), &cache) {
            Ok(summary) => {
                self.solver_loaded
                    .fetch_add(summary.entries, Ordering::Relaxed);
                self.log_dropped
                    .fetch_add(summary.dropped_bytes, Ordering::Relaxed);
                // Tailing resumes just past the last intact record.
                *self.tail.lock().unwrap() = TailCursor {
                    offset: summary.clean_len,
                    generation: summary.generation,
                };
                // Fingerprints only — no model clones for bookkeeping.
                self.persisted.lock().unwrap().extend(cache.fingerprints());
                // Damage or heavy duplication ⇒ compact on save.
                if summary.dropped_bytes > 0 || summary.records > 2 * summary.entries.max(1) {
                    *self.rewrite_log.lock().unwrap() = true;
                }
            }
            Err(_) => {
                // Unusable log (bad magic / version): never partially
                // applied; schedule a full rewrite.
                *self.rewrite_log.lock().unwrap() = true;
            }
        }
        cache
    }

    /// Absorbs into `cache` every solver verdict other processes appended
    /// to the log since this handle's last load/tail/save — the live
    /// multi-daemon coherence path. Pre-existing cache entries are never
    /// overwritten, hit/miss counters are untouched, and a compaction by
    /// another process (generation bump) triggers a safe re-read from
    /// zero. I/O errors and in-flight appends degrade to "nothing new
    /// this tick"; an unusable log schedules a rewrite exactly like
    /// [`Store::warm_solver_cache`] does.
    pub fn tail_solver_log(&self, cache: &SharedQueryCache) -> TailStats {
        if !self.cfg.solver_cache {
            return TailStats::default();
        }
        static TAIL_NS: LazyHistogram = LazyHistogram::new("overify_store_tail_latency_ns");
        static TAILED: LazyCounter = LazyCounter::new("overify_store_tailed_verdicts_total");
        let started = std::time::Instant::now();
        let mut cursor = self.tail.lock().unwrap();
        match log::load_tail(&self.log_path(), cursor.offset, cursor.generation) {
            Ok((summary, entries)) => {
                let absorbed = cache.absorb(&entries);
                if !entries.is_empty() {
                    // Tailed verdicts are on disk by definition — never
                    // re-append them.
                    self.persisted
                        .lock()
                        .unwrap()
                        .extend(entries.iter().map(|&(fp, _)| fp));
                }
                cursor.offset = summary.offset;
                cursor.generation = summary.generation;
                self.solver_tailed.fetch_add(absorbed, Ordering::Relaxed);
                TAILED.get().add(absorbed);
                TAIL_NS.observe_ns(started.elapsed());
                TailStats {
                    absorbed,
                    records: summary.records,
                    reread: summary.reread,
                    pending_bytes: summary.pending_bytes,
                }
            }
            Err(_) => {
                *self.rewrite_log.lock().unwrap() = true;
                TAIL_NS.observe_ns(started.elapsed());
                TailStats::default()
            }
        }
    }

    /// Persists `cache` into the log: appends the verdicts not yet on
    /// disk, or compacts (rewrites the whole file) when the load pass
    /// found damage, duplicate bloat or a stale version.
    ///
    /// Both paths hold the store's advisory file lock. Compaction is a
    /// read-merge-rewrite: the current on-disk log is re-read *under the
    /// lock* and merged with this handle's snapshot, so records another
    /// process appended since our load are carried into the rewrite
    /// rather than renamed away — and the new header's bumped generation
    /// tells every tailing reader to restart its scan.
    pub fn save_solver_cache(&self, cache: &SharedQueryCache) -> io::Result<u64> {
        if !self.cfg.solver_cache {
            return Ok(0);
        }
        static COMPACT_NS: LazyHistogram =
            LazyHistogram::new("overify_store_compaction_latency_ns");
        static COMPACTIONS: LazyCounter = LazyCounter::new("overify_store_compactions_total");
        static SAVE_NS: LazyHistogram = LazyHistogram::new("overify_store_save_latency_ns");
        let started = std::time::Instant::now();
        let mut cursor = self.tail.lock().unwrap();
        let mut persisted = self.persisted.lock().unwrap();
        let mut rewrite = self.rewrite_log.lock().unwrap();
        let compacting = *rewrite;
        let saved = if *rewrite {
            let _lock = lock::DirLock::acquire(&self.lock_path(), lock::STALE_AFTER)?;
            let merged = SharedQueryCache::new();
            // An unreadable current log (that is usually why we are
            // rewriting) contributes nothing; generation restarts at 1.
            let disk_generation = log::load(&self.log_path(), &merged)
                .map(|s| s.generation)
                .unwrap_or(0);
            // What the disk knew that we did not is learning too — keep
            // it in the rewrite *and* absorb it locally, because the tail
            // cursor will point past the new file.
            merged.absorb(&cache.snapshot());
            let snapshot = merged.snapshot();
            let tailed = cache.absorb(&snapshot);
            self.solver_tailed.fetch_add(tailed, Ordering::Relaxed);
            let new_len = log::compact(&self.log_path(), &snapshot, disk_generation + 1)?;
            *rewrite = false;
            persisted.clear();
            persisted.extend(snapshot.iter().map(|&(fp, _)| fp));
            *cursor = TailCursor {
                offset: new_len,
                generation: disk_generation + 1,
            };
            snapshot.len() as u64
        } else {
            // Clone only the not-yet-persisted delta out of the cache.
            let fresh = cache.snapshot_if(|fp| !persisted.contains(&fp));
            if fresh.is_empty() {
                return Ok(0);
            }
            let _lock = lock::DirLock::acquire(&self.lock_path(), lock::STALE_AFTER)?;
            log::append(&self.log_path(), &fresh)?;
            persisted.extend(fresh.iter().map(|&(fp, _)| fp));
            fresh.len() as u64
        };
        self.solver_saved.fetch_add(saved, Ordering::Relaxed);
        if compacting {
            COMPACTIONS.inc();
            COMPACT_NS.observe_ns(started.elapsed());
        } else {
            SAVE_NS.observe_ns(started.elapsed());
        }
        Ok(saved)
    }

    /// Looks up a stored report. Any defect in the artifact (damage,
    /// version skew, key-echo mismatch) is a miss.
    pub fn load_report(&self, key: &ReportKey) -> Option<StoredJob> {
        if !self.cfg.reports {
            return None;
        }
        let hit = fs::read(self.report_path(key))
            .ok()
            .and_then(|bytes| artifact::decode_artifact(&bytes, key));
        static HITS: LazyCounter = LazyCounter::new("overify_store_report_hits_total");
        static MISSES: LazyCounter = LazyCounter::new("overify_store_report_misses_total");
        match &hit {
            Some(_) => {
                HITS.inc();
                self.report_hits.fetch_add(1, Ordering::Relaxed)
            }
            None => {
                MISSES.inc();
                self.report_misses.fetch_add(1, Ordering::Relaxed)
            }
        };
        hit
    }

    /// Stores a report artifact atomically (temp file + rename, so a
    /// concurrent reader sees the old bytes or the new bytes, never a
    /// torn file).
    pub fn save_report(&self, key: &ReportKey, job: &StoredJob) -> io::Result<()> {
        if !self.cfg.reports {
            return Ok(());
        }
        let path = self.report_path(key);
        let tmp = Self::tmp_sibling(&path);
        fs::write(&tmp, artifact::encode_artifact(key, job))?;
        fs::rename(&tmp, &path)?;
        self.reports_saved.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Looks up a stored slice verdict — the function-grained fallback
    /// consulted after [`Store::load_report`] misses. Any defect in the
    /// artifact (damage, version skew, key-echo mismatch) is a miss:
    /// a garbage-collected or corrupted slice verdict degrades to a
    /// re-execution, never to a corrupt splice.
    pub fn load_slice(&self, key: &SliceKey) -> Option<StoredJob> {
        if !self.cfg.reports {
            return None;
        }
        let hit = fs::read(self.slice_path(key))
            .ok()
            .and_then(|bytes| artifact::decode_slice_artifact(&bytes, key));
        static HITS: LazyCounter = LazyCounter::new("overify_store_slice_hits_total");
        static MISSES: LazyCounter = LazyCounter::new("overify_store_slice_misses_total");
        match &hit {
            Some(_) => {
                HITS.inc();
                self.splice_hits.fetch_add(1, Ordering::Relaxed)
            }
            None => {
                MISSES.inc();
                self.splice_misses.fetch_add(1, Ordering::Relaxed)
            }
        };
        hit
    }

    /// Stores a slice verdict atomically (same temp + rename discipline
    /// as [`Store::save_report`]).
    pub fn save_slice(&self, key: &SliceKey, job: &StoredJob) -> io::Result<()> {
        if !self.cfg.reports {
            return Ok(());
        }
        let path = self.slice_path(key);
        let tmp = Self::tmp_sibling(&path);
        fs::write(&tmp, artifact::encode_slice_artifact(key, job))?;
        fs::rename(&tmp, &path)?;
        self.slices_saved.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn jobs_dir(&self) -> PathBuf {
        self.cfg.root.join("jobs")
    }

    fn job_path(&self, id: u128) -> PathBuf {
        self.jobs_dir().join(format!("{id:032x}.bin"))
    }

    /// Persists one gateway job record atomically (same temp + rename
    /// discipline as the report artifacts), refusing state regressions:
    /// when a record already on disk is terminal and `rec` is not, the
    /// write is skipped and `Ok(false)` returned — two processes may
    /// share the store, and a stale `Running` must never clobber a
    /// `Done`. Returns `Ok(true)` when the record was written.
    pub fn save_job(&self, rec: &JobRecord) -> io::Result<bool> {
        static SAVED: LazyCounter = LazyCounter::new("overify_store_jobs_saved_total");
        let path = self.job_path(rec.id);
        if let Some(old) = fs::read(&path)
            .ok()
            .and_then(|bytes| job::decode_job_record(&bytes, rec.id))
        {
            if rec.regresses(&old) {
                return Ok(false);
            }
        }
        let tmp = Self::tmp_sibling(&path);
        fs::write(&tmp, job::encode_job_record(rec))?;
        fs::rename(&tmp, &path)?;
        SAVED.inc();
        Ok(true)
    }

    /// Looks up a job record by id. Any defect in the file (damage,
    /// version skew, id-echo mismatch) degrades to "job unknown".
    pub fn load_job(&self, id: u128) -> Option<JobRecord> {
        fs::read(self.job_path(id))
            .ok()
            .and_then(|bytes| job::decode_job_record(&bytes, id))
    }

    /// Every intact job record on disk, ordered by id. A restarted
    /// gateway replays this to re-enqueue whatever was non-terminal when
    /// it died; damaged files are silently skipped (those jobs degrade
    /// to unknown, exactly as [`Store::load_job`] would report them).
    pub fn list_jobs(&self) -> Vec<JobRecord> {
        let mut jobs = Vec::new();
        let Ok(entries) = fs::read_dir(self.jobs_dir()) else {
            return jobs;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if !path.is_file() || path.extension().is_none_or(|e| e != "bin") {
                continue;
            }
            if let Some(rec) = fs::read(&path).ok().and_then(|b| job::peek_then_decode(&b)) {
                jobs.push(rec);
            }
        }
        jobs.sort_by_key(|r| r.id);
        jobs
    }

    /// Every stored verdict at both grains — the gateway's
    /// `GET /v1/registry` view. Each row is read from an artifact
    /// *header* only (magic, version, full key echo), so listing is
    /// cheap and a damaged or foreign file simply contributes no row.
    /// Rows are sorted (modules first, then by fingerprint) so the
    /// registry is stable across scans.
    pub fn list_verdicts(&self) -> Vec<VerdictRow> {
        let mut rows = Vec::new();
        let read_dir = |dir: PathBuf, rows: &mut Vec<VerdictRow>, slice: bool| {
            let Ok(entries) = fs::read_dir(dir) else {
                return;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                if !path.is_file() || path.extension().is_none_or(|e| e != "bin") {
                    continue;
                }
                let Ok(bytes) = fs::read(&path) else { continue };
                let row = if slice {
                    artifact::peek_slice_artifact_key(&bytes).map(|k| VerdictRow {
                        slice: true,
                        fp: k.slice_fp,
                        level: k.level,
                        budget_sig: k.budget_sig,
                    })
                } else {
                    artifact::peek_artifact_key(&bytes).map(|k| VerdictRow {
                        slice: false,
                        fp: k.module_fp,
                        level: k.level,
                        budget_sig: k.budget_sig,
                    })
                };
                if let Some(row) = row {
                    rows.push(row);
                }
            }
        };
        read_dir(self.reports_dir(), &mut rows, false);
        read_dir(self.slices_dir(), &mut rows, true);
        rows.sort_by_key(|r| (r.slice, r.fp, artifact::level_tag(r.level), r.budget_sig));
        rows
    }

    /// How old a non-artifact file under `reports/` must be before
    /// [`Store::gc`] treats it as abandoned litter rather than a
    /// concurrent writer's in-flight temp file.
    pub const GC_TEMP_GRACE: Duration = Duration::from_secs(600);

    fn with_costs<R>(&self, f: impl FnOnce(&mut CostMap) -> R) -> R {
        let mut guard = self.costs.lock().unwrap();
        let map = guard.get_or_insert_with(|| {
            let mut m = HashMap::new();
            // File order: later records supersede earlier ones.
            for r in cost::load(&self.cost_path()) {
                m.insert(r.key, (r.kind, r.fp, r.nanos));
            }
            m
        });
        f(map)
    }

    fn record_cost_record(&self, record: cost::CostRecord) -> io::Result<()> {
        self.with_costs(|m| m.insert(record.key, (record.kind, record.fp, record.nanos)));
        cost::append(&self.cost_path(), &record)
    }

    fn lookup_cost_hash(&self, hash: u128) -> Option<Duration> {
        self.with_costs(|m| m.get(&hash).map(|&(_, _, ns)| Duration::from_nanos(ns)))
    }

    /// Records the observed verification cost of `key` (appended to the
    /// cost log and visible to [`Store::lookup_cost`] immediately).
    ///
    /// Cost metadata is a *scheduling hint*, not a result: it is recorded
    /// for truncated runs too (a budget-capped job is exactly the kind
    /// that comes back as a miss, and its observed wall time is what the
    /// scheduler needs to place it), and a bogus record can only reorder
    /// work, never change an answer.
    pub fn record_cost(&self, key: &ReportKey, cost: Duration) -> io::Result<()> {
        let nanos = cost.as_nanos().min(u64::MAX as u128) as u64;
        self.record_cost_record(cost::CostRecord {
            kind: cost::CostKind::Module,
            key: key.key_hash(),
            fp: key.module_fp,
            nanos,
        })
    }

    /// The most recently observed verification cost of `key`, if any.
    pub fn lookup_cost(&self, key: &ReportKey) -> Option<Duration> {
        self.lookup_cost_hash(key.key_hash())
    }

    /// Records the observed verification cost at the *slice* grain. A
    /// slice-keyed cost survives edits elsewhere in the module, so the
    /// serve scheduler can price the changed-slice remainder of a warm
    /// submission from history instead of the static overestimate.
    pub fn record_slice_cost(&self, key: &SliceKey, cost: Duration) -> io::Result<()> {
        let nanos = cost.as_nanos().min(u64::MAX as u128) as u64;
        self.record_cost_record(cost::CostRecord {
            kind: cost::CostKind::Slice,
            key: key.key_hash(),
            fp: key.slice_fp,
            nanos,
        })
    }

    /// The most recently observed verification cost of a slice key.
    pub fn lookup_slice_cost(&self, key: &SliceKey) -> Option<Duration> {
        self.lookup_cost_hash(key.key_hash())
    }

    /// Appends one per-run resource ledger to `ledgers.log`. Ledgers are
    /// attribution metadata like costs — a lost or damaged record can
    /// only blur the accounting, never change a verdict.
    pub fn record_ledger(&self, ledger: &RunLedger) -> io::Result<()> {
        ledger::append(&self.ledger_path(), ledger)
    }

    /// Loads every intact per-run ledger, in append order.
    pub fn load_ledgers(&self) -> Vec<RunLedger> {
        ledger::load(&self.ledger_path())
    }

    /// Garbage-collects content-addressed state at both grains: module
    /// artifacts whose module fingerprint does not occur in
    /// `live_modules`, slice artifacts whose slice fingerprint does not
    /// occur in `live_slices`, cost records at either grain by the same
    /// liveness, plus *stale* temp files from interrupted atomic writes
    /// (a temp file younger than [`Store::GC_TEMP_GRACE`] may be a
    /// concurrent writer's in-flight save — deleting it would break the
    /// rename and lose that result, so young temps are left alone).
    ///
    /// A collected slice verdict leaves nothing behind but its absence:
    /// the next lookup is a checksummed decode of a missing file — a
    /// miss, never a corrupt splice.
    ///
    /// The solver-verdict log is *not* content-addressed by program
    /// (formula fingerprints are shared across programs — a libc query
    /// serves every utility), so it is never collected here; its own
    /// compaction handles damage and duplicate bloat. Job records under
    /// `jobs/` are control-plane history, not cache — gc leaves them
    /// alone too, so `GET /v1/jobs/<id>` keeps answering across sweeps.
    pub fn gc(
        &self,
        live_modules: &HashSet<u128>,
        live_slices: &HashSet<u128>,
    ) -> io::Result<GcStats> {
        let mut stats = GcStats::default();
        if self.cfg.reports {
            let (kept, removed) = self.gc_dir(
                &self.reports_dir(),
                artifact::peek_module_fp,
                live_modules,
                &mut stats.reclaimed_bytes,
            )?;
            stats.reports_kept = kept;
            stats.reports_removed = removed;
            let (kept, removed) = self.gc_dir(
                &self.slices_dir(),
                artifact::peek_slice_fp,
                live_slices,
                &mut stats.reclaimed_bytes,
            )?;
            stats.slices_kept = kept;
            stats.slices_removed = removed;
        }
        // Rewrite the cost log keeping only live records at each grain
        // (last record per key wins, preserving the in-memory view).
        self.with_costs(|m| {
            let before = m.len() as u64;
            m.retain(|_, &mut (kind, fp, _)| match kind {
                cost::CostKind::Module => live_modules.contains(&fp),
                cost::CostKind::Slice => live_slices.contains(&fp),
            });
            stats.cost_records_kept = m.len() as u64;
            stats.cost_records_removed = before - stats.cost_records_kept;
            let mut records: Vec<cost::CostRecord> = m
                .iter()
                .map(|(&key, &(kind, fp, nanos))| cost::CostRecord {
                    kind,
                    key,
                    fp,
                    nanos,
                })
                .collect();
            records.sort_by_key(|r| r.key);
            cost::compact(&self.cost_path(), &records)
        })?;
        Ok(stats)
    }

    /// Sweeps one artifact directory, keeping files whose peeked
    /// fingerprint is in `live` and reclaiming everything else (plus
    /// provably stale temp litter). Returns `(kept, removed)`.
    fn gc_dir(
        &self,
        dir: &Path,
        peek: fn(&[u8]) -> Option<u128>,
        live: &HashSet<u128>,
        reclaimed_bytes: &mut u64,
    ) -> io::Result<(u64, u64)> {
        let (mut kept, mut removed) = (0u64, 0u64);
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if !path.is_file() {
                continue;
            }
            let is_artifact = path.extension().is_some_and(|e| e == "bin");
            if !is_artifact {
                // Non-artifact litter (temp files): reclaim only when
                // provably stale. An unreadable mtime is treated as
                // fresh — losing a concurrent write is worse than
                // keeping a few bytes until the next pass.
                let stale = fs::metadata(&path)
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok())
                    .is_some_and(|age| age >= Self::GC_TEMP_GRACE);
                if stale {
                    *reclaimed_bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                    fs::remove_file(&path)?;
                    removed += 1;
                }
                continue;
            }
            let fp = fs::read(&path).ok().and_then(|bytes| peek(&bytes));
            match fp {
                Some(fp) if live.contains(&fp) => kept += 1,
                // Dead content or an unreadable/foreign artifact:
                // reclaim it.
                _ => {
                    *reclaimed_bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                    fs::remove_file(&path)?;
                    removed += 1;
                }
            }
        }
        Ok((kept, removed))
    }
}

/// One row of the store's verdict registry ([`Store::list_verdicts`]):
/// a stored verification verdict's full content address, read from the
/// artifact header without decoding the payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerdictRow {
    /// True for a function-slice verdict (`slices/`), false for a
    /// whole-module report (`reports/`).
    pub slice: bool,
    /// Module or slice fingerprint.
    pub fp: u128,
    /// Pipeline level the verdict was computed at.
    pub level: OptLevel,
    /// Budget signature the verdict was computed under.
    pub budget_sig: u128,
}

/// What one [`Store::gc`] pass reclaimed and retained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Module-keyed report artifacts (and stale temp files) deleted.
    pub reports_removed: u64,
    /// Module-keyed report artifacts whose module is still live.
    pub reports_kept: u64,
    /// Slice artifacts (and stale temp files under `slices/`) deleted.
    pub slices_removed: u64,
    /// Slice artifacts whose slice fingerprint is still live.
    pub slices_kept: u64,
    /// Cost records dropped from the cost log.
    pub cost_records_removed: u64,
    /// Cost records retained.
    pub cost_records_kept: u64,
    /// Bytes of deleted files.
    pub reclaimed_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_opt::OptLevel;
    use overify_symex::{Model, VerificationReport};

    fn tmp_store(name: &str) -> Store {
        let root =
            std::env::temp_dir().join(format!("overify_store_lib_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        Store::open(StoreConfig::at(root)).unwrap()
    }

    #[test]
    fn solver_cache_round_trips_between_handles() {
        let store = tmp_store("solver_roundtrip");
        let cache = store.warm_solver_cache();
        assert!(cache.is_empty());
        let mut m = Model::default();
        m.values.insert(2, 7);
        cache.publish(10, Some(m));
        cache.publish(11, None);
        assert_eq!(store.save_solver_cache(&cache).unwrap(), 2);
        // Nothing new, nothing appended.
        assert_eq!(store.save_solver_cache(&cache).unwrap(), 0);

        // A second handle on the same directory warm-starts from disk.
        let store2 = Store::open(StoreConfig::at(store.root())).unwrap();
        let warm = store2.warm_solver_cache();
        assert_eq!(warm.snapshot(), cache.snapshot());
        assert_eq!(store2.stats().solver_entries_loaded, 2);

        // Only the delta is appended by the second handle.
        warm.publish(12, None);
        assert_eq!(store2.save_solver_cache(&warm).unwrap(), 1);
    }

    #[test]
    fn two_handles_converge_by_tailing_without_reopen() {
        let store_a = tmp_store("tail_converge");
        let store_b = Store::open(StoreConfig::at(store_a.root())).unwrap();
        let cache_a = store_a.warm_solver_cache();
        let cache_b = store_b.warm_solver_cache();

        // A learns and persists; B tails it live — no restart.
        let mut m = Model::default();
        m.values.insert(0, 3);
        cache_a.publish(100, Some(m.clone()));
        cache_a.publish(101, None);
        store_a.save_solver_cache(&cache_a).unwrap();
        let t = store_b.tail_solver_log(&cache_b);
        assert_eq!(t.absorbed, 2);
        assert_eq!(cache_b.lookup(100), Some(Some(m)));
        assert_eq!(cache_b.lookup(101), Some(None));
        assert_eq!(store_b.stats().solver_entries_tailed, 2);

        // Nothing new: the cursor holds.
        assert_eq!(store_b.tail_solver_log(&cache_b), TailStats::default());

        // B's own learning then saves only its delta (tailed entries are
        // marked persisted, never re-appended).
        cache_b.publish(102, None);
        assert_eq!(store_b.save_solver_cache(&cache_b).unwrap(), 1);

        // ...and A tails B's delta back.
        let t2 = store_a.tail_solver_log(&cache_a);
        assert_eq!(t2.absorbed, 1);
        assert_eq!(cache_a.lookup(102), Some(None));
    }

    #[test]
    fn tailing_survives_a_concurrent_compaction() {
        let store_a = tmp_store("tail_compaction");
        let cache_a = store_a.warm_solver_cache();
        for fp in 0..4u128 {
            cache_a.publish(fp, None);
        }
        store_a.save_solver_cache(&cache_a).unwrap();

        let store_b = Store::open(StoreConfig::at(store_a.root())).unwrap();
        let cache_b = store_b.warm_solver_cache();
        assert_eq!(cache_b.len(), 4);

        // A third handle compacts (generation bump); B's cursor predates
        // the rewrite.
        let store_d = Store::open(StoreConfig::at(store_a.root())).unwrap();
        let cache_d = store_d.warm_solver_cache();
        cache_d.publish(50, None);
        *store_d.rewrite_log.lock().unwrap() = true;
        store_d.save_solver_cache(&cache_d).unwrap();

        let t = store_b.tail_solver_log(&cache_b);
        assert!(t.reread, "generation bump detected");
        assert_eq!(t.absorbed, 1, "only the genuinely new verdict is new");
        assert_eq!(cache_b.lookup(50), Some(None));
    }

    #[test]
    fn compaction_merges_concurrent_appends_instead_of_losing_them() {
        // Handle A saves one verdict. A rewriter handle loads it and is
        // due a compaction; before that runs, an appender handle (a
        // second process) cleanly appends verdict 2. The rewrite must
        // carry the concurrent append into the new file.
        let store_a = tmp_store("compact_race");
        let cache_a = store_a.warm_solver_cache();
        cache_a.publish(1, None);
        store_a.save_solver_cache(&cache_a).unwrap();

        let rewriter = Store::open(StoreConfig::at(store_a.root())).unwrap();
        let rewriter_cache = rewriter.warm_solver_cache();
        *rewriter.rewrite_log.lock().unwrap() = true;

        let appender = Store::open(StoreConfig::at(store_a.root())).unwrap();
        let appender_cache = appender.warm_solver_cache();
        appender_cache.publish(2, None);
        appender.save_solver_cache(&appender_cache).unwrap();

        // The rewriter never saw fp 2 in memory; its compaction must
        // still keep it (read-merge-rewrite under the lock).
        rewriter_cache.publish(3, None);
        rewriter.save_solver_cache(&rewriter_cache).unwrap();
        assert_eq!(
            rewriter_cache.lookup(2),
            Some(None),
            "merge-back absorbs the concurrent append locally too"
        );

        let fresh = Store::open(StoreConfig::at(store_a.root())).unwrap();
        let warm = fresh.warm_solver_cache();
        assert_eq!(
            warm.fingerprints(),
            vec![1, 2, 3],
            "nothing learned is lost by compaction"
        );
        assert_eq!(fresh.stats().log_bytes_dropped, 0, "clean log");
    }

    #[test]
    fn concurrent_appends_and_compactions_lose_nothing() {
        let store = tmp_store("two_handle_race");
        let seed = store.warm_solver_cache();
        seed.publish(u128::MAX, None);
        store.save_solver_cache(&seed).unwrap();
        let root = store.root().to_path_buf();

        let appender = std::thread::spawn({
            let root = root.clone();
            move || {
                for i in 0..10u128 {
                    let h = Store::open(StoreConfig::at(&root)).unwrap();
                    let c = h.warm_solver_cache();
                    c.publish(i, None);
                    h.save_solver_cache(&c).unwrap();
                }
            }
        });
        let compactor = std::thread::spawn({
            let root = root.clone();
            move || {
                for i in 0..10u128 {
                    let h = Store::open(StoreConfig::at(&root)).unwrap();
                    let c = h.warm_solver_cache();
                    c.publish(1000 + i, None);
                    *h.rewrite_log.lock().unwrap() = true; // force compaction
                    h.save_solver_cache(&c).unwrap();
                }
            }
        });
        appender.join().unwrap();
        compactor.join().unwrap();

        let fresh = Store::open(StoreConfig::at(&root)).unwrap();
        let warm = fresh.warm_solver_cache();
        let fps: HashSet<u128> = warm.fingerprints().into_iter().collect();
        for i in 0..10u128 {
            assert!(fps.contains(&i), "append {i} lost");
            assert!(fps.contains(&(1000 + i)), "compactor entry {i} lost");
        }
        assert!(fps.contains(&u128::MAX));
    }

    #[test]
    fn stale_log_version_is_rejected_then_rewritten() {
        let store = tmp_store("stale_version");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(log::MAGIC);
        bytes.extend_from_slice(&(log::VERSION + 9).to_le_bytes());
        fs::write(store.root().join("solver.log"), &bytes).unwrap();

        let cache = store.warm_solver_cache();
        assert!(cache.is_empty(), "stale log contributes nothing");
        cache.publish(77, None);
        store.save_solver_cache(&cache).unwrap();

        // The rewrite produced a current-version log.
        let store2 = Store::open(StoreConfig::at(store.root())).unwrap();
        let warm = store2.warm_solver_cache();
        assert_eq!(warm.len(), 1);
        assert_eq!(warm.lookup(77), Some(None));
    }

    #[test]
    fn damaged_log_recovers_prefix_and_compacts_on_save() {
        let store = tmp_store("damaged_log");
        let cache = store.warm_solver_cache();
        for fp in 0..8u128 {
            cache.publish(fp, None);
        }
        store.save_solver_cache(&cache).unwrap();
        // Tear the tail.
        let path = store.root().join("solver.log");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let store2 = Store::open(StoreConfig::at(store.root())).unwrap();
        let warm = store2.warm_solver_cache();
        assert_eq!(warm.len(), 7, "all but the torn record survive");
        assert!(store2.stats().log_bytes_dropped > 0);
        store2.save_solver_cache(&warm).unwrap();

        // The compacted log is clean again.
        let store3 = Store::open(StoreConfig::at(store.root())).unwrap();
        let again = store3.warm_solver_cache();
        assert_eq!(again.len(), 7);
        assert_eq!(store3.stats().log_bytes_dropped, 0);
    }

    #[test]
    fn report_store_hits_misses_and_overwrites() {
        let store = tmp_store("reports");
        let key = ReportKey {
            module_fp: 99,
            level: OptLevel::Overify,
            budget_sig: 7,
        };
        assert!(store.load_report(&key).is_none());
        let job = StoredJob {
            runs: vec![(2, VerificationReport::default())],
        };
        store.save_report(&key, &job).unwrap();
        assert_eq!(store.load_report(&key).as_ref(), Some(&job));
        // Corrupt the artifact: degrades to a miss, and a save repairs it.
        let path = store.report_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load_report(&key).is_none());
        store.save_report(&key, &job).unwrap();
        assert_eq!(store.load_report(&key), Some(job));

        let s = store.stats();
        assert_eq!(s.report_hits, 2);
        assert_eq!(s.report_misses, 2);
        assert_eq!(s.reports_saved, 2);
    }

    #[test]
    fn disabled_layers_are_inert() {
        let root =
            std::env::temp_dir().join(format!("overify_store_lib_{}_disabled", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let mut cfg = StoreConfig::at(&root);
        cfg.solver_cache = false;
        cfg.reports = false;
        let store = Store::open(cfg).unwrap();
        let cache = store.warm_solver_cache();
        cache.publish(1, None);
        assert_eq!(store.save_solver_cache(&cache).unwrap(), 0);
        assert!(!store.root().join("solver.log").exists());
        let key = ReportKey {
            module_fp: 1,
            level: OptLevel::O0,
            budget_sig: 1,
        };
        store
            .save_report(&key, &StoredJob { runs: Vec::new() })
            .unwrap();
        assert!(store.load_report(&key).is_none());
        assert_eq!(store.stats(), StoreStats::default());
    }

    #[test]
    fn cost_metadata_round_trips_and_supersedes() {
        let store = tmp_store("costs");
        let key = ReportKey {
            module_fp: 5,
            level: OptLevel::O0,
            budget_sig: 9,
        };
        assert_eq!(store.lookup_cost(&key), None);
        store.record_cost(&key, Duration::from_millis(40)).unwrap();
        assert_eq!(store.lookup_cost(&key), Some(Duration::from_millis(40)));
        // A later observation supersedes, in memory and on disk.
        store.record_cost(&key, Duration::from_millis(25)).unwrap();
        assert_eq!(store.lookup_cost(&key), Some(Duration::from_millis(25)));
        let store2 = Store::open(StoreConfig::at(store.root())).unwrap();
        assert_eq!(store2.lookup_cost(&key), Some(Duration::from_millis(25)));
    }

    #[test]
    fn gc_evicts_dead_modules_and_keeps_survivors_intact() {
        let store = tmp_store("gc");
        let key = |fp: u128| ReportKey {
            module_fp: fp,
            level: OptLevel::Overify,
            budget_sig: 3,
        };
        let job = |n: usize| StoredJob {
            runs: vec![(n, VerificationReport::default())],
        };
        store.save_report(&key(1), &job(2)).unwrap();
        store.save_report(&key(2), &job(3)).unwrap();
        store.save_report(&key(3), &job(4)).unwrap();
        store
            .record_cost(&key(1), Duration::from_millis(1))
            .unwrap();
        store
            .record_cost(&key(2), Duration::from_millis(2))
            .unwrap();
        // An *old* temp file from an interrupted atomic write is litter; a
        // *fresh* one may be a concurrent writer's in-flight rename source
        // and must survive.
        let stale_tmp = store.root().join("reports/zzz.tmp999");
        fs::write(&stale_tmp, b"partial").unwrap();
        fs::File::options()
            .write(true)
            .open(&stale_tmp)
            .unwrap()
            .set_modified(std::time::SystemTime::now() - 2 * Store::GC_TEMP_GRACE)
            .unwrap();
        let fresh_tmp = store.root().join("reports/yyy.tmp123");
        fs::write(&fresh_tmp, b"in flight").unwrap();

        let live: HashSet<u128> = [1, 3].into_iter().collect();
        let gc = store.gc(&live, &HashSet::new()).unwrap();
        assert_eq!(gc.reports_removed, 2, "dead artifact + stale temp litter");
        assert_eq!(gc.reports_kept, 2);
        assert!(!stale_tmp.exists(), "stale temp reclaimed");
        assert!(fresh_tmp.exists(), "in-flight temp untouched");
        assert_eq!(gc.cost_records_removed, 1);
        assert_eq!(gc.cost_records_kept, 1);
        assert!(gc.reclaimed_bytes > 0);

        // Survivors answer byte-identically; the dead key is a miss.
        assert_eq!(store.load_report(&key(1)), Some(job(2)));
        assert_eq!(store.load_report(&key(3)), Some(job(4)));
        assert!(store.load_report(&key(2)).is_none());
        assert_eq!(store.lookup_cost(&key(1)), Some(Duration::from_millis(1)));
        assert_eq!(store.lookup_cost(&key(2)), None);
        // A fresh handle sees the compacted cost log.
        let store2 = Store::open(StoreConfig::at(store.root())).unwrap();
        assert_eq!(store2.lookup_cost(&key(1)), Some(Duration::from_millis(1)));
        assert_eq!(store2.lookup_cost(&key(2)), None);
    }

    #[test]
    fn slice_verdicts_round_trip_and_count_splices() {
        let store = tmp_store("slices");
        let key = SliceKey {
            slice_fp: 77,
            level: OptLevel::Overify,
            budget_sig: 9,
        };
        assert!(store.load_slice(&key).is_none());
        let job = StoredJob {
            runs: vec![(2, VerificationReport::default())],
        };
        store.save_slice(&key, &job).unwrap();
        assert_eq!(store.load_slice(&key), Some(job));
        let s = store.stats();
        assert_eq!((s.splice_hits, s.splice_misses, s.slices_saved), (1, 1, 1));
        // Slice traffic never perturbs module-grain counters.
        assert_eq!((s.report_hits, s.report_misses, s.reports_saved), (0, 0, 0));
    }

    #[test]
    fn gc_evicts_dead_slices_which_degrade_to_misses() {
        let store = tmp_store("gc_slices");
        let skey = |fp: u128| SliceKey {
            slice_fp: fp,
            level: OptLevel::Overify,
            budget_sig: 3,
        };
        let job = |n: usize| StoredJob {
            runs: vec![(n, VerificationReport::default())],
        };
        store.save_slice(&skey(10), &job(2)).unwrap();
        store.save_slice(&skey(20), &job(3)).unwrap();
        store
            .record_slice_cost(&skey(10), Duration::from_millis(4))
            .unwrap();
        store
            .record_slice_cost(&skey(20), Duration::from_millis(5))
            .unwrap();

        let live_slices: HashSet<u128> = [10].into_iter().collect();
        let gc = store.gc(&HashSet::new(), &live_slices).unwrap();
        assert_eq!(gc.slices_kept, 1);
        assert_eq!(gc.slices_removed, 1);
        assert_eq!(gc.cost_records_kept, 1);
        assert_eq!(gc.cost_records_removed, 1);

        // The survivor still splices byte-identically; the evicted
        // verdict is a clean miss — never a corrupt splice.
        assert_eq!(store.load_slice(&skey(10)), Some(job(2)));
        assert!(store.load_slice(&skey(20)).is_none());
        assert_eq!(
            store.lookup_slice_cost(&skey(10)),
            Some(Duration::from_millis(4))
        );
        assert_eq!(store.lookup_slice_cost(&skey(20)), None);
        // A fresh handle agrees (everything flowed through disk).
        let store2 = Store::open(StoreConfig::at(store.root())).unwrap();
        assert_eq!(store2.load_slice(&skey(10)), Some(job(2)));
        assert!(store2.load_slice(&skey(20)).is_none());
    }

    #[test]
    fn job_records_persist_refuse_regression_and_list_in_id_order() {
        let store = tmp_store("jobs");
        assert!(store.load_job(7).is_none());
        let rec = |id: u128, state: JobState| JobRecord {
            id,
            state,
            tenant: "t".into(),
            created_us: 10,
            updated_us: 20,
            spec: vec![9, 9],
            verdict: None,
            error: None,
        };
        assert!(store.save_job(&rec(7, JobState::Queued)).unwrap());
        assert!(store.save_job(&rec(3, JobState::Done)).unwrap());
        assert_eq!(store.load_job(7), Some(rec(7, JobState::Queued)));
        // Forward transitions write; a regression to non-terminal does not.
        assert!(store.save_job(&rec(7, JobState::Done)).unwrap());
        assert!(!store.save_job(&rec(7, JobState::Running)).unwrap());
        assert_eq!(store.load_job(7), Some(rec(7, JobState::Done)));
        // Listing is id-ordered and survives a fresh handle.
        let store2 = Store::open(StoreConfig::at(store.root())).unwrap();
        let ids: Vec<u128> = store2.list_jobs().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![3, 7]);
        // A damaged record degrades to unknown and drops out of the list.
        let path = store.job_path(7);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load_job(7).is_none());
        assert_eq!(store.list_jobs().len(), 1);
    }

    #[test]
    fn registry_lists_stored_verdicts_at_both_grains() {
        let store = tmp_store("registry");
        assert!(store.list_verdicts().is_empty());
        let job = StoredJob {
            runs: vec![(1, VerificationReport::default())],
        };
        let mkey = ReportKey {
            module_fp: 5,
            level: OptLevel::Overify,
            budget_sig: 9,
        };
        let skey = SliceKey {
            slice_fp: 2,
            level: OptLevel::O2,
            budget_sig: 4,
        };
        store.save_report(&mkey, &job).unwrap();
        store.save_slice(&skey, &job).unwrap();
        assert_eq!(
            store.list_verdicts(),
            vec![
                VerdictRow {
                    slice: false,
                    fp: 5,
                    level: OptLevel::Overify,
                    budget_sig: 9,
                },
                VerdictRow {
                    slice: true,
                    fp: 2,
                    level: OptLevel::O2,
                    budget_sig: 4,
                },
            ]
        );
        // Damage drops the row, never corrupts it.
        let path = store.report_path(&mkey);
        fs::write(&path, b"garbage").unwrap();
        let rows = store.list_verdicts();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].slice);
    }

    #[test]
    fn env_config_requires_nonempty_path() {
        // (Can't mutate the environment safely in parallel tests; just
        // check the parsing contract via the public constructor.)
        let cfg = StoreConfig::at("/some/dir");
        assert!(cfg.solver_cache && cfg.reports);
    }
}
