//! Advisory cross-process locking for store mutation.
//!
//! Concurrent *appends* to the solver log are individually safe (records
//! are checksummed, so an interleaved tail degrades to a recoverable
//! partial read), but **compaction** is a read-merge-rewrite: two
//! processes racing it — or one compacting while another appends — can
//! atomically rename away records the other just learned. The store
//! serializes those windows with a lock *file* created via `O_EXCL`
//! (`create_new`), the one atomic test-and-set the filesystem gives us
//! without platform-specific `flock`.
//!
//! The lock is advisory and crash-tolerant: a holder that dies leaves the
//! file behind, so waiters steal locks older than a staleness bound. The
//! steal itself is raced through an atomic rename — of several waiters
//! that see the same stale lock, exactly one wins the rename and removes
//! it; the rest simply retry `create_new`.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// How long a lock file may sit untouched before waiters assume its
/// holder died and steal it. Store critical sections are milliseconds of
/// file I/O, so anything this old is a corpse.
pub const STALE_AFTER: Duration = Duration::from_secs(30);

/// A held advisory lock; released (best-effort) on drop.
pub struct DirLock {
    path: PathBuf,
}

impl DirLock {
    /// Blocks until the lock file at `path` could be created, stealing it
    /// if an existing one is older than `stale_after`.
    pub fn acquire(path: &Path, stale_after: Duration) -> io::Result<DirLock> {
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(path)
            {
                Ok(mut f) => {
                    // Owner breadcrumb for post-mortems; the content is
                    // not load-bearing.
                    let _ = f.write_all(std::process::id().to_string().as_bytes());
                    return Ok(DirLock {
                        path: path.to_path_buf(),
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let stale = fs::metadata(path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.elapsed().ok())
                        .is_some_and(|age| age >= stale_after);
                    if stale {
                        // Rename-to-steal: atomic, so exactly one of the
                        // racing waiters clears the corpse.
                        let grave = path.with_extension(format!("stale{}", std::process::id()));
                        if fs::rename(path, &grave).is_ok() {
                            let _ = fs::remove_file(&grave);
                        }
                    } else {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("overify_store_lock_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("solver.lock")
    }

    #[test]
    fn lock_excludes_and_releases() {
        let path = tmp("excl");
        let inside = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let path = path.clone();
            let inside = inside.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    let _g = DirLock::acquire(&path, STALE_AFTER).unwrap();
                    let now = inside.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(now, 0, "mutual exclusion violated");
                    inside.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(!path.exists(), "released on drop");
    }

    #[test]
    fn stale_lock_is_stolen() {
        let path = tmp("stale");
        fs::write(&path, b"1").unwrap();
        fs::File::options()
            .write(true)
            .open(&path)
            .unwrap()
            .set_modified(std::time::SystemTime::now() - 2 * STALE_AFTER)
            .unwrap();
        // Acquire must not block forever on a corpse.
        let _g = DirLock::acquire(&path, STALE_AFTER).unwrap();
        assert!(path.exists());
    }
}
