//! Little-endian binary primitives shared by the store's on-disk formats.
//!
//! Both layers (the solver-verdict log and the report artifacts) frame
//! their payloads the same way: a fixed-size length prefix plus an FNV-1a
//! checksum, so a reader can always tell a complete record from a torn or
//! bit-rotted one and stop *before* consuming garbage. Nothing here
//! allocates beyond the output buffer — the store has no serde dependency
//! by design (the build environment is offline).

/// Appends values to a byte buffer.
#[derive(Default)]
pub struct Writer {
    pub buf: Vec<u8>,
}

impl Writer {
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed byte blob.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
}

/// Reads values back from a byte slice. Every accessor returns `None`
/// instead of panicking when the input is short — truncation is an
/// expected condition for the store, not a bug.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    pub fn u128(&mut self) -> Option<u128> {
        self.take(16)
            .map(|s| u128::from_le_bytes(s.try_into().unwrap()))
    }

    pub fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).ok()
    }

    pub fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.u32()? as usize;
        self.take(n).map(|s| s.to_vec())
    }

    /// Exactly `n` raw bytes with no length prefix (the caller framed
    /// them).
    pub fn bytes_exact(&mut self, n: usize) -> Option<&'a [u8]> {
        self.take(n)
    }
}

/// 64-bit FNV-1a over a byte slice — the record checksum.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// 128-bit FNV-1a over a byte slice — content-address hashing (store keys
/// and budget signatures).
pub fn fnv128(bytes: &[u8]) -> u128 {
    let mut h: u128 = 0x6c62272e07bb014262b821756295c58d;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(0x0000000001000000000000000000013B);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = Writer::default();
        w.u8(7);
        w.u32(0xDEADBEEF);
        w.u64(u64::MAX - 3);
        w.u128(0x0123456789ABCDEF_0011223344556677);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        let mut r = Reader::new(&w.buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xDEADBEEF));
        assert_eq!(r.u64(), Some(u64::MAX - 3));
        assert_eq!(r.u128(), Some(0x0123456789ABCDEF_0011223344556677));
        assert_eq!(r.str().as_deref(), Some("héllo"));
        assert_eq!(r.bytes(), Some(vec![1, 2, 3]));
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u8(), None, "reads past the end are None, not panics");
    }

    #[test]
    fn truncated_reads_are_none() {
        let mut w = Writer::default();
        w.str("long enough string");
        for cut in 0..w.buf.len() {
            let mut r = Reader::new(&w.buf[..cut]);
            assert_eq!(r.str(), None, "cut at {cut}");
        }
    }

    #[test]
    fn hashes_are_stable_and_distinct() {
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
        assert_ne!(fnv128(b"a"), fnv128(b"b"));
        assert_eq!(fnv128(b"xyz"), fnv128(b"xyz"));
    }
}
