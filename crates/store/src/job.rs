//! The durable job-record artifact class.
//!
//! The public gateway answers `POST /v1/verify` with a job id *before*
//! the verification runs, so the submit-then-poll contract needs a
//! record that outlives both the gateway process and the daemon: one
//! file per job id under `jobs/`, same codec discipline as the report
//! artifacts — magic, version, key echo, checksummed payload, atomic
//! temp + rename writes, and any defect degrades to "job unknown"
//! rather than a wrong answer.
//!
//! A record's identity is its **content-addressed job id**: the FNV-128
//! hash of the submission's canonical spec encoding (the serve
//! protocol's `encode_spec_bytes`). Resubmitting the same spec therefore
//! lands on the same record — idempotent submission for free — and the
//! record stores the spec bytes opaquely so a restarted gateway can
//! re-enqueue whatever was non-terminal when it died.
//!
//! Records are terminal-state sticky in one direction only: `Done` and
//! `Failed` never regress to `Queued`/`Running` via [`JobRecord::fresher_than`],
//! which callers consult before overwriting (two processes share the
//! store; last-write-wins is fine *within* a state class, regression
//! across classes is not).

use crate::codec::{fnv64, Reader, Writer};

/// Magic prefix of a job-record file.
pub const JOB_MAGIC: &[u8; 8] = b"OVFYJOB\0";
/// Job-record format version; older files decode as unknown jobs.
pub const JOB_VERSION: u32 = 1;

/// Lifecycle of one submitted job. `Done` and `Failed` are terminal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a dispatcher slot.
    Queued,
    /// Handed to the daemon; a verification run is in flight.
    Running,
    /// Verified; the record's verdict pointer names the stored artifact.
    Done,
    /// Terminal failure: build error, shed by an overloaded daemon, or
    /// the run itself errored. The record's `error` says which.
    Failed,
}

impl JobState {
    /// The wire/HTTP name of the state.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// True for `Done` and `Failed` — states that never change again.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }

    fn tag(self) -> u8 {
        match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done => 2,
            JobState::Failed => 3,
        }
    }

    fn from_tag(t: u8) -> Option<JobState> {
        Some(match t {
            0 => JobState::Queued,
            1 => JobState::Running,
            2 => JobState::Done,
            3 => JobState::Failed,
            _ => return None,
        })
    }
}

/// Where a finished job's verdict lives in the store: artifact class
/// (module report vs function slice), content fingerprint, level tag and
/// budget signature — enough to name the artifact file and to render a
/// registry row without touching the payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerdictPointer {
    /// True when the verdict is a slice artifact (`slices/`), false for
    /// a whole-module report (`reports/`).
    pub slice: bool,
    /// Module or slice fingerprint.
    pub fp: u128,
    /// Store-canonical level tag ([`crate::artifact::level_tag`]).
    pub level_tag: u8,
    /// Budget signature the verdict was computed under.
    pub budget_sig: u128,
}

/// One durable job record, as stored under `jobs/<32 hex of id>.bin`.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRecord {
    /// Content-addressed job id: FNV-128 of the canonical spec bytes.
    pub id: u128,
    pub state: JobState,
    /// The submitting tenant (API-token identity at the gateway).
    pub tenant: String,
    /// Submission wall-clock, microseconds since the Unix epoch.
    pub created_us: u64,
    /// Last state-transition wall-clock, microseconds since the epoch.
    pub updated_us: u64,
    /// The submission's canonical spec encoding, stored opaquely so a
    /// restarted gateway can resubmit without this crate knowing the
    /// serve protocol.
    pub spec: Vec<u8>,
    /// Set when `state` is `Done`: the stored verdict this job resolved
    /// to. (May be `None` even when done if the daemon ran storeless.)
    pub verdict: Option<VerdictPointer>,
    /// Set when `state` is `Failed`: what went wrong.
    pub error: Option<String>,
}

impl JobRecord {
    /// The record's file stem: 32 hex digits of the job id.
    pub fn file_stem(&self) -> String {
        format!("{:032x}", self.id)
    }

    /// True when overwriting `old` with `self` loses information: a
    /// terminal record must never regress to a non-terminal state.
    pub fn regresses(&self, old: &JobRecord) -> bool {
        old.state.is_terminal() && !self.state.is_terminal()
    }
}

/// Serializes a job-record file: magic, version, id echo, checksummed
/// payload.
pub fn encode_job_record(rec: &JobRecord) -> Vec<u8> {
    let mut payload = Writer::default();
    payload.u8(rec.state.tag());
    payload.str(&rec.tenant);
    payload.u64(rec.created_us);
    payload.u64(rec.updated_us);
    payload.bytes(&rec.spec);
    match &rec.verdict {
        None => payload.u8(0),
        Some(v) => {
            payload.u8(1);
            payload.u8(v.slice as u8);
            payload.u128(v.fp);
            payload.u8(v.level_tag);
            payload.u128(v.budget_sig);
        }
    }
    match &rec.error {
        None => payload.u8(0),
        Some(e) => {
            payload.u8(1);
            payload.str(e);
        }
    }

    let mut out = Writer::default();
    out.buf.extend_from_slice(JOB_MAGIC);
    out.u32(JOB_VERSION);
    out.u128(rec.id);
    out.u32(payload.buf.len() as u32);
    out.u64(fnv64(&payload.buf));
    out.buf.extend_from_slice(&payload.buf);
    out.buf
}

/// Deserializes a job-record file, checking the id echo. `None` on any
/// defect — the job degrades to unknown, never to a wrong state.
pub fn decode_job_record(bytes: &[u8], id: u128) -> Option<JobRecord> {
    peek_then_decode(bytes).filter(|rec| rec.id == id)
}

/// Deserializes a job-record file without an expected id (directory
/// scans — the id comes from the file itself).
pub fn peek_then_decode(bytes: &[u8]) -> Option<JobRecord> {
    if bytes.len() < JOB_MAGIC.len() || &bytes[..JOB_MAGIC.len()] != JOB_MAGIC {
        return None;
    }
    let mut r = Reader::new(&bytes[JOB_MAGIC.len()..]);
    if r.u32()? != JOB_VERSION {
        return None;
    }
    let id = r.u128()?;
    let len = r.u32()? as usize;
    let check = r.u64()?;
    let payload = r.bytes_exact(len)?;
    if r.remaining() != 0 || fnv64(payload) != check {
        return None;
    }
    let mut p = Reader::new(payload);
    let state = JobState::from_tag(p.u8()?)?;
    let tenant = p.str()?;
    let created_us = p.u64()?;
    let updated_us = p.u64()?;
    let spec = p.bytes()?;
    let verdict = match p.u8()? {
        0 => None,
        1 => {
            let slice = match p.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            Some(VerdictPointer {
                slice,
                fp: p.u128()?,
                level_tag: p.u8()?,
                budget_sig: p.u128()?,
            })
        }
        _ => return None,
    };
    let error = match p.u8()? {
        0 => None,
        1 => Some(p.str()?),
        _ => return None,
    };
    (p.remaining() == 0).then_some(JobRecord {
        id,
        state,
        tenant,
        created_us,
        updated_us,
        spec,
        verdict,
        error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobRecord {
        JobRecord {
            id: 0xDEAD_BEEF << 64 | 0x1234,
            state: JobState::Done,
            tenant: "alice".into(),
            created_us: 1_700_000_000_000_000,
            updated_us: 1_700_000_000_500_000,
            spec: vec![1, 2, 3, 0, 255],
            verdict: Some(VerdictPointer {
                slice: false,
                fp: 42 << 100,
                level_tag: 4,
                budget_sig: 7 << 90,
            }),
            error: None,
        }
    }

    #[test]
    fn record_roundtrip_is_byte_identical() {
        let rec = sample();
        let bytes = encode_job_record(&rec);
        assert_eq!(decode_job_record(&bytes, rec.id), Some(rec.clone()));
        assert_eq!(peek_then_decode(&bytes), Some(rec.clone()));
        assert_eq!(encode_job_record(&rec), bytes);
        // All four states and both option fields survive.
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
        ] {
            let rec = JobRecord {
                state,
                verdict: None,
                error: Some("queue full".into()),
                ..sample()
            };
            let bytes = encode_job_record(&rec);
            assert_eq!(decode_job_record(&bytes, rec.id), Some(rec));
        }
    }

    #[test]
    fn any_damage_degrades_to_unknown() {
        let rec = sample();
        let good = encode_job_record(&rec);
        for cut in [0, 4, JOB_MAGIC.len() + 3, good.len() / 2, good.len() - 1] {
            assert!(
                decode_job_record(&good[..cut], rec.id).is_none(),
                "cut={cut}"
            );
        }
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(decode_job_record(&bad, rec.id).is_none(), "payload flip");
        let mut old = good.clone();
        old[JOB_MAGIC.len()] ^= 0xFF;
        assert!(decode_job_record(&old, rec.id).is_none(), "version skew");
        assert!(decode_job_record(&good, rec.id + 1).is_none(), "id echo");
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_job_record(&padded, rec.id).is_none(), "trailing");
    }

    #[test]
    fn terminal_states_never_regress() {
        let done = sample();
        let queued = JobRecord {
            state: JobState::Queued,
            ..sample()
        };
        let failed = JobRecord {
            state: JobState::Failed,
            ..sample()
        };
        assert!(queued.regresses(&done), "done -> queued is a regression");
        assert!(!done.regresses(&queued));
        assert!(!failed.regresses(&done), "terminal -> terminal is allowed");
        assert!(!queued.regresses(&queued));
        assert!(done.state.is_terminal() && failed.state.is_terminal());
        assert!(!queued.state.is_terminal());
        assert_eq!(queued.state.as_str(), "queued");
        assert_eq!(done.state.as_str(), "done");
    }
}
