//! The process-wide metrics registry.
//!
//! Metrics are created on first use and live for the life of the process
//! (handles are `&'static`, leaked once at registration). Updates are
//! relaxed atomics — counters are sharded across cache lines so that
//! worker threads incrementing the same metric never contend.
//!
//! The registry renders to a stable, line-oriented text exposition
//! format: `# TYPE` comment lines followed by `name value` samples, with
//! histogram buckets as `name_bucket{le="<edge>"} <cumulative>` plus
//! `name_sum` / `name_count`. Names sort lexicographically, so two
//! snapshots of the same process differ only in sample values — the
//! serve protocol's `Metrics` reply and the `--metrics-dump` files are
//! exactly this text.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{OnceLock, RwLock};

/// Number of independent cache-line-padded shards per counter.
const SHARDS: usize = 8;

#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

thread_local! {
    /// A small per-thread id used to pick a counter shard; threads spread
    /// round-robin so concurrent increments of one counter land on
    /// different cache lines.
    static SHARD: usize = {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS
    };
}

/// A monotonically-increasing counter, sharded across cache lines.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// Adds `n` to the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        SHARD.with(|&s| self.shards[s].0.fetch_add(n, Ordering::Relaxed));
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The sum over all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A gauge: a value that goes up and down (queue depths, live leases).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts 1.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per bit position.
pub const BUCKETS: usize = 65;

/// A latency histogram with fixed logarithmic (power-of-two) buckets.
///
/// Bucket `0` holds exactly the value `0`; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i - 1]`, i.e. its inclusive upper edge is `2^i - 1`.
/// Observing is two relaxed atomic adds — no locks, no allocation.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index a value lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive upper edge of bucket `i` (`u64::MAX` for the last).
pub fn bucket_edge(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn observe_ns(&self, d: std::time::Duration) {
        self.observe(d.as_nanos() as u64);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts.
    pub fn buckets(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Estimates the `p`-quantile (`p` in `[0, 1]`) of everything this
    /// histogram has observed, by linear interpolation inside the
    /// power-of-two bucket the target rank falls in
    /// ([`quantile_from_buckets`]). Allocation-free.
    pub fn quantile(&self, p: f64) -> u64 {
        let counts = self.buckets();
        let mut pairs = [(0u64, 0u64); BUCKETS];
        for (i, pair) in pairs.iter_mut().enumerate() {
            *pair = (bucket_edge(i), counts[i]);
        }
        quantile_from_buckets(&pairs, p)
    }
}

/// Estimates the `p`-quantile from `(inclusive upper edge, count)` bucket
/// pairs (non-cumulative, edge-ascending — the [`Sample::Histogram`]
/// shape; zero-count pairs are allowed and ignored).
///
/// The rank `p * total` is located in its bucket and the value is
/// interpolated linearly between the bucket's bounds, so `p = 0` yields
/// the lower bound of the first populated bucket and `p = 1` the upper
/// edge of the last. An empty histogram estimates 0. Mass in the overflow
/// bucket interpolates toward `u64::MAX` — the estimate is deliberately
/// coarse there, as is the bucket.
pub fn quantile_from_buckets(buckets: &[(u64, u64)], p: f64) -> u64 {
    let total: u64 = buckets.iter().map(|&(_, n)| n).sum();
    if total == 0 {
        return 0;
    }
    let rank = p.clamp(0.0, 1.0) * total as f64;
    let mut cumulative = 0.0f64;
    let mut last = 0u64;
    for &(edge, n) in buckets.iter().filter(|&&(_, n)| n > 0) {
        let before = cumulative;
        cumulative += n as f64;
        last = edge;
        if cumulative >= rank {
            if edge == 0 {
                return 0;
            }
            // A power-of-two bucket with inclusive upper edge `e` covers
            // `[e/2 + 1, e]` (this also maps the overflow bucket's
            // `u64::MAX` edge to a 2^63 lower bound).
            let lo = edge / 2 + 1;
            let frac = (rank - before) / n as f64;
            // f64 rounding near 2^63 can overshoot; clamp to the bucket.
            return lo
                .saturating_add(((edge - lo) as f64 * frac) as u64)
                .min(edge);
        }
    }
    last
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// A borrowed view of one registered metric, for allocation-free registry
/// walks ([`for_each`]).
#[derive(Clone, Copy)]
pub enum MetricView {
    /// A registered [`Counter`].
    Counter(&'static Counter),
    /// A registered [`Gauge`].
    Gauge(&'static Gauge),
    /// A registered [`Histogram`].
    Histogram(&'static Histogram),
}

/// Visits every registered metric in name order without allocating —
/// the sampling hook behind [`crate::rings`], where [`snapshot`]'s
/// per-call `Vec` would be garbage on a periodic timer.
pub fn for_each(mut f: impl FnMut(&'static str, MetricView)) {
    let map = registry().metrics.read().unwrap();
    for (&name, metric) in map.iter() {
        let view = match metric {
            Metric::Counter(c) => MetricView::Counter(c),
            Metric::Gauge(g) => MetricView::Gauge(g),
            Metric::Histogram(h) => MetricView::Histogram(h),
        };
        f(name, view);
    }
}

/// The process-wide registry mapping names to metric handles.
#[derive(Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<&'static str, Metric>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

macro_rules! lookup_or_register {
    ($name:expr, $variant:ident, $ty:ty) => {{
        let reg = registry();
        if let Some(Metric::$variant(m)) = reg.metrics.read().unwrap().get($name) {
            return m;
        }
        let mut map = reg.metrics.write().unwrap();
        match map
            .entry($name)
            .or_insert_with(|| Metric::$variant(Box::leak(Box::<$ty>::default())))
        {
            Metric::$variant(m) => m,
            _ => panic!("metric {:?} registered with a different type", $name),
        }
    }};
}

/// The counter named `name`, creating it on first use.
pub fn counter(name: &'static str) -> &'static Counter {
    lookup_or_register!(name, Counter, Counter)
}

/// The gauge named `name`, creating it on first use.
pub fn gauge(name: &'static str) -> &'static Gauge {
    lookup_or_register!(name, Gauge, Gauge)
}

/// The histogram named `name`, creating it on first use.
pub fn histogram(name: &'static str) -> &'static Histogram {
    lookup_or_register!(name, Histogram, Histogram)
}

macro_rules! lazy_handle {
    ($lazy:ident, $ty:ident, $get:ident, $doc:literal) => {
        #[doc = $doc]
        ///
        /// Resolves its registry entry on first touch and caches the
        /// `&'static` handle, so steady-state access is one atomic load.
        pub struct $lazy {
            name: &'static str,
            cell: OnceLock<&'static $ty>,
        }

        impl $lazy {
            /// A handle for the metric named `name` (not yet registered).
            pub const fn new(name: &'static str) -> Self {
                Self {
                    name,
                    cell: OnceLock::new(),
                }
            }

            /// The resolved registry handle.
            #[inline]
            pub fn get(&self) -> &'static $ty {
                self.cell.get_or_init(|| $get(self.name))
            }
        }

        impl std::ops::Deref for $lazy {
            type Target = $ty;
            #[inline]
            fn deref(&self) -> &$ty {
                self.get()
            }
        }
    };
}

lazy_handle!(
    LazyCounter,
    Counter,
    counter,
    "A `static`-friendly handle to a named [`Counter`]."
);
lazy_handle!(
    LazyGauge,
    Gauge,
    gauge,
    "A `static`-friendly handle to a named [`Gauge`]."
);
lazy_handle!(
    LazyHistogram,
    Histogram,
    histogram,
    "A `static`-friendly handle to a named [`Histogram`]."
);

/// One metric's value in a [`snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Sample {
    /// A counter total.
    Counter(u64),
    /// A gauge level.
    Gauge(i64),
    /// Histogram per-bucket counts and value sum.
    Histogram {
        /// Non-cumulative per-bucket counts.
        buckets: Vec<(u64, u64)>,
        /// Sum of observed values.
        sum: u64,
        /// Total observations.
        count: u64,
    },
}

/// A consistent-as-of-read copy of every registered metric, sorted by
/// name. Counter reads sum their shards, so a snapshot taken while other
/// threads increment may lag, but it never tears a single 64-bit sample
/// and post-join totals are exact.
pub fn snapshot() -> Vec<(&'static str, Sample)> {
    let map = registry().metrics.read().unwrap();
    map.iter()
        .map(|(&name, metric)| {
            let sample = match metric {
                Metric::Counter(c) => Sample::Counter(c.value()),
                Metric::Gauge(g) => Sample::Gauge(g.value()),
                Metric::Histogram(h) => {
                    let buckets = h.buckets();
                    Sample::Histogram {
                        buckets: buckets
                            .iter()
                            .enumerate()
                            .filter(|&(_, &n)| n > 0)
                            .map(|(i, &n)| (bucket_edge(i), n))
                            .collect(),
                        sum: h.sum(),
                        count: buckets.iter().sum(),
                    }
                }
            };
            (name, sample)
        })
        .collect()
}

/// The exposition kind keyword for a sample (`counter` | `gauge` |
/// `histogram`) — what follows the name on its `# TYPE` line.
pub fn sample_kind(sample: &Sample) -> &'static str {
    match sample {
        Sample::Counter(_) => "counter",
        Sample::Gauge(_) => "gauge",
        Sample::Histogram { .. } => "histogram",
    }
}

/// Escapes a label value for the exposition format (backslash, quote and
/// newline, the characters that would break the quoted syntax).
fn escape_label(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Renders one sample's value lines (no `# TYPE` header) into `out`, with
/// an optional `{key="value"}` label pair on every line — the building
/// block both [`render`] and the daemon's per-worker fleet series use.
/// Histogram buckets come out cumulative under `le=""` edges, followed by
/// the `+Inf` bucket and `_sum` / `_count` lines; with a label, `le` is
/// the *last* label (so `name_bucket{worker="w3",le="1023"} 4`).
pub fn render_sample(out: &mut String, name: &str, sample: &Sample, label: Option<(&str, &str)>) {
    let mut lbl = String::new();
    if let Some((k, v)) = label {
        lbl.push('{');
        lbl.push_str(k);
        lbl.push_str("=\"");
        escape_label(v, &mut lbl);
        lbl.push_str("\"}");
    }
    match sample {
        Sample::Counter(v) => {
            let _ = writeln!(out, "{name}{lbl} {v}");
        }
        Sample::Gauge(v) => {
            let _ = writeln!(out, "{name}{lbl} {v}");
        }
        Sample::Histogram {
            buckets,
            sum,
            count,
        } => {
            // Bucket lines put `le` last inside the braces so labeled and
            // unlabeled series parse with the same suffix match.
            let bucket_lbl = |edge: &str| match label {
                Some((k, v)) => {
                    let mut s = String::new();
                    s.push('{');
                    s.push_str(k);
                    s.push_str("=\"");
                    escape_label(v, &mut s);
                    s.push_str("\",le=\"");
                    s.push_str(edge);
                    s.push_str("\"}");
                    s
                }
                None => format!("{{le=\"{edge}\"}}"),
            };
            let mut cumulative = 0u64;
            for (edge, n) in buckets {
                cumulative += n;
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cumulative}",
                    bucket_lbl(&edge.to_string())
                );
            }
            let _ = writeln!(out, "{name}_bucket{} {count}", bucket_lbl("+Inf"));
            let _ = writeln!(out, "{name}_sum{lbl} {sum}\n{name}_count{lbl} {count}");
        }
    }
}

/// Renders the registry in the text exposition format (see module docs).
pub fn render() -> String {
    let mut out = String::new();
    for (name, sample) in snapshot() {
        let _ = writeln!(out, "# TYPE {name} {}", sample_kind(&sample));
        render_sample(&mut out, name, &sample, None);
    }
    out
}

/// Parses unlabeled exposition text (the inverse of [`render`], and the
/// shape `DeltaTracker::delta` pushes) back into named [`Sample`]s — the
/// daemon's fleet-fold path runs worker pushes through this.
///
/// Each `# TYPE name kind` header is followed by that metric's sample
/// lines; histogram buckets are de-cumulated back to per-bucket counts
/// (the `+Inf` line is redundant with `_count` and skipped). Labeled
/// lines (`name{worker="w"} v`) and anything else that does not match the
/// open block are ignored, so parsing a full fleet scrape yields exactly
/// its unlabeled rollup series.
pub fn parse(text: &str) -> Vec<(String, Sample)> {
    let mut out: Vec<(String, Sample)> = Vec::new();
    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        let Some(header) = line.strip_prefix("# TYPE ") else {
            continue;
        };
        let mut words = header.split_whitespace();
        let (Some(name), Some(kind)) = (words.next(), words.next()) else {
            continue;
        };
        match kind {
            "counter" | "gauge" => {
                let Some(&sample_line) = lines.peek() else {
                    break;
                };
                let Some((n, v)) = sample_line.rsplit_once(' ') else {
                    continue;
                };
                if n != name {
                    continue;
                }
                lines.next();
                if kind == "counter" {
                    if let Ok(v) = v.parse::<u64>() {
                        out.push((name.to_string(), Sample::Counter(v)));
                    }
                } else if let Ok(v) = v.parse::<i64>() {
                    out.push((name.to_string(), Sample::Gauge(v)));
                }
            }
            "histogram" => {
                let bucket_prefix = format!("{name}_bucket{{le=\"");
                let sum_prefix = format!("{name}_sum ");
                let count_prefix = format!("{name}_count ");
                let mut cumulative: Vec<(u64, u64)> = Vec::new();
                let mut sum = None;
                let mut count = None;
                while let Some(&l) = lines.peek() {
                    if let Some(rest) = l.strip_prefix(&bucket_prefix) {
                        lines.next();
                        if let Some((edge, cum)) = rest.split_once("\"} ") {
                            if let (Ok(e), Ok(c)) = (edge.parse::<u64>(), cum.parse::<u64>()) {
                                cumulative.push((e, c));
                            }
                        }
                    } else if let Some(v) = l.strip_prefix(&sum_prefix) {
                        lines.next();
                        sum = v.trim().parse::<u64>().ok();
                    } else if let Some(v) = l.strip_prefix(&count_prefix) {
                        lines.next();
                        count = v.trim().parse::<u64>().ok();
                        break;
                    } else {
                        break;
                    }
                }
                if let (Some(sum), Some(count)) = (sum, count) {
                    let mut buckets = Vec::with_capacity(cumulative.len());
                    let mut prev = 0u64;
                    for (e, c) in cumulative {
                        buckets.push((e, c.saturating_sub(prev)));
                        prev = c;
                    }
                    out.push((
                        name.to_string(),
                        Sample::Histogram {
                            buckets,
                            sum,
                            count,
                        },
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

/// Folds `delta` into `acc` the way fleet rollups aggregate: counters and
/// histograms add (bucket-wise, edges merged sorted), gauges take the
/// incoming level (last write wins — a level is not additive across
/// pushes of one process). Mismatched kinds leave `acc` unchanged.
pub fn fold_sample(acc: &mut Sample, delta: &Sample) {
    match (acc, delta) {
        (Sample::Counter(a), Sample::Counter(d)) => *a = a.wrapping_add(*d),
        (Sample::Gauge(a), Sample::Gauge(d)) => *a = *d,
        (
            Sample::Histogram {
                buckets: ab,
                sum: asum,
                count: acount,
            },
            Sample::Histogram {
                buckets: db,
                sum: dsum,
                count: dcount,
            },
        ) => {
            for &(edge, n) in db {
                match ab.binary_search_by_key(&edge, |&(e, _)| e) {
                    Ok(i) => ab[i].1 += n,
                    Err(i) => ab.insert(i, (edge, n)),
                }
            }
            *asum = asum.wrapping_add(*dsum);
            *acount += dcount;
        }
        _ => {}
    }
}

/// Tracks the last-pushed value of every registered metric and renders
/// only the change since — the worker side of metrics upstreaming.
/// Counters and histogram buckets emit differences (fold-additive at the
/// receiver, so pushes over different connections of one process may
/// interleave freely); gauges emit their absolute level whenever it
/// moved. The first call emits everything; a call with nothing changed
/// renders empty text.
#[derive(Default)]
pub struct DeltaTracker {
    last: std::collections::HashMap<&'static str, Sample>,
}

impl DeltaTracker {
    /// A tracker with no baseline (the first delta is the full registry).
    pub fn new() -> DeltaTracker {
        DeltaTracker::default()
    }

    /// Snapshots the registry, renders what changed since the previous
    /// call in the exposition format, and advances the baseline.
    pub fn delta(&mut self) -> String {
        let mut out = String::new();
        for (name, sample) in snapshot() {
            let delta = match (&sample, self.last.get(name)) {
                (s, None) => Some(s.clone()),
                (Sample::Counter(now), Some(Sample::Counter(then))) => {
                    let d = now.saturating_sub(*then);
                    (d > 0).then_some(Sample::Counter(d))
                }
                (Sample::Gauge(now), Some(Sample::Gauge(then))) => {
                    (now != then).then_some(Sample::Gauge(*now))
                }
                (
                    Sample::Histogram {
                        buckets,
                        sum,
                        count,
                    },
                    Some(Sample::Histogram {
                        buckets: b0,
                        sum: s0,
                        count: c0,
                    }),
                ) => (count != c0).then(|| Sample::Histogram {
                    buckets: buckets
                        .iter()
                        .map(|&(edge, n)| {
                            let then = b0
                                .iter()
                                .find(|&&(e, _)| e == edge)
                                .map_or(0, |&(_, n0)| n0);
                            (edge, n.saturating_sub(then))
                        })
                        .filter(|&(_, n)| n > 0)
                        .collect(),
                    sum: sum.wrapping_sub(*s0),
                    count: count - c0,
                }),
                // A name cannot change kind within a process (registration
                // panics on mismatch), but stay total anyway.
                (s, Some(_)) => Some(s.clone()),
            };
            if let Some(d) = delta {
                let _ = writeln!(out, "# TYPE {name} {}", sample_kind(&d));
                render_sample(&mut out, name, &d, None);
                self.last.insert(name, sample);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shards_sum() {
        let c = counter("test_metrics_counter_shards");
        c.inc();
        c.add(41);
        assert_eq!(c.value(), 42);
        // Same name resolves to the same handle.
        assert_eq!(counter("test_metrics_counter_shards").value(), 42);
    }

    #[test]
    fn gauge_up_down() {
        let g = gauge("test_metrics_gauge");
        g.set(5);
        g.inc();
        g.dec();
        g.add(-3);
        assert_eq!(g.value(), 2);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 is exactly zero; bucket i>0 spans [2^(i-1), 2^i - 1].
        assert_eq!(bucket_index(0), 0);
        for i in 1..64usize {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            // At the lower edge, at the upper edge, and (when the bucket
            // is wider than one value) strictly inside.
            assert_eq!(bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper edge of bucket {i}");
            if hi > lo {
                assert_eq!(bucket_index(lo + 1), i, "interior of bucket {i}");
            }
            // Just below the lower edge lands one bucket down; just above
            // the upper edge lands one bucket up.
            assert_eq!(bucket_index(lo - 1), i - 1, "below bucket {i}");
            if i < 63 {
                assert_eq!(bucket_index(hi + 1), i + 1, "above bucket {i}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_edge(0), 0);
        assert_eq!(bucket_edge(1), 1);
        assert_eq!(bucket_edge(10), 1023);
        assert_eq!(bucket_edge(64), u64::MAX);
    }

    #[test]
    fn histogram_observe_and_edges() {
        let h = histogram("test_metrics_hist_edges");
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(
            h.sum(),
            0u64.wrapping_add(1 + 2 + 3 + 4 + 1023 + 1024)
                .wrapping_add(u64::MAX)
        );
        let b = h.buckets();
        assert_eq!(b[0], 1); // 0
        assert_eq!(b[1], 1); // 1
        assert_eq!(b[2], 2); // 2, 3
        assert_eq!(b[3], 1); // 4
        assert_eq!(b[10], 1); // 1023
        assert_eq!(b[11], 1); // 1024
        assert_eq!(b[64], 1); // u64::MAX
    }

    #[test]
    fn render_is_stable_and_parseable() {
        counter("test_render_counter").add(7);
        gauge("test_render_gauge").set(-3);
        let h = histogram("test_render_hist");
        h.observe(0);
        h.observe(100);
        let text = render();
        assert!(text.contains("# TYPE test_render_counter counter"));
        assert!(text.contains("test_render_counter 7"));
        assert!(text.contains("test_render_gauge -3"));
        assert!(text.contains("test_render_hist_bucket{le=\"0\"} 1"));
        assert!(text.contains("test_render_hist_bucket{le=\"127\"} 2"));
        assert!(text.contains("test_render_hist_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("test_render_hist_sum 100"));
        assert!(text.contains("test_render_hist_count 2"));
        // Every line is a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE ") || line.split_whitespace().count() == 2,
                "unparseable line: {line:?}"
            );
        }
        // Names appear in sorted order (stable exposition).
        let names: Vec<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .map(|l| l.split(' ').next().unwrap())
            .collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn lazy_handles_resolve_once() {
        static C: LazyCounter = LazyCounter::new("test_lazy_counter");
        static H: LazyHistogram = LazyHistogram::new("test_lazy_hist");
        C.inc();
        C.add(2);
        H.observe(9);
        assert_eq!(counter("test_lazy_counter").value(), 3);
        assert_eq!(histogram("test_lazy_hist").count(), 1);
        assert!(std::ptr::eq(C.get(), counter("test_lazy_counter")));
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = histogram("test_quantile_empty");
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(quantile_from_buckets(&[], 0.99), 0);
        assert_eq!(quantile_from_buckets(&[(1023, 0), (2047, 0)], 0.5), 0);
    }

    #[test]
    fn quantile_with_single_bucket_mass_interpolates_inside_it() {
        // All mass in the [512, 1023] bucket: every quantile lands there.
        let h = histogram("test_quantile_single");
        for _ in 0..100 {
            h.observe(700);
        }
        for p in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let q = h.quantile(p);
            assert!((512..=1023).contains(&q), "p={p} escaped the bucket: {q}");
        }
        assert_eq!(h.quantile(0.0), 512, "p=0 is the bucket's lower bound");
        assert_eq!(h.quantile(1.0), 1023, "p=1 is the bucket's upper edge");
        // All mass on exactly zero stays exactly zero.
        assert_eq!(quantile_from_buckets(&[(0, 10)], 0.999), 0);
    }

    #[test]
    fn quantile_extremes_pick_first_and_last_populated_buckets() {
        // 10 observations at 0, 10 in [8, 15], 10 in [1024, 2047].
        let b = [(0u64, 10u64), (15, 10), (2047, 10)];
        assert_eq!(quantile_from_buckets(&b, 0.0), 0);
        assert_eq!(quantile_from_buckets(&b, 1.0), 2047);
        // The median rank (15 of 30) sits at the top of the middle bucket.
        let mid = quantile_from_buckets(&b, 0.5);
        assert!((8..=15).contains(&mid), "median escaped: {mid}");
        // Ranks are monotone in p.
        let mut last = 0;
        for i in 0..=100 {
            let q = quantile_from_buckets(&b, i as f64 / 100.0);
            assert!(q >= last, "quantile not monotone at p={i}%");
            last = q;
        }
    }

    #[test]
    fn quantile_overflow_bucket_reaches_u64_max() {
        let h = histogram("test_quantile_overflow");
        h.observe(1);
        h.observe(u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        // Mass entirely in the overflow bucket: even p=0 is at least its
        // 2^63 lower bound.
        let q = quantile_from_buckets(&[(u64::MAX, 5)], 0.0);
        assert_eq!(q, 1u64 << 63);
        assert_eq!(quantile_from_buckets(&[(u64::MAX, 5)], 1.0), u64::MAX);
    }

    #[test]
    fn golden_exposition_format() {
        // The exact text a fixed registry slice renders to — the wire
        // format the fleet-fold path and external scrapers depend on.
        // Field order, `# TYPE` headers, cumulative `le=""` buckets and
        // the `+Inf`/`_sum`/`_count` trailer are all load-bearing.
        counter("test_golden_a_counter").add(12);
        gauge("test_golden_b_gauge").set(-7);
        let h = histogram("test_golden_c_hist");
        h.observe(0);
        h.observe(3);
        h.observe(3);
        h.observe(900);
        let text = render();
        let golden = "# TYPE test_golden_a_counter counter\n\
                      test_golden_a_counter 12\n\
                      # TYPE test_golden_b_gauge gauge\n\
                      test_golden_b_gauge -7\n\
                      # TYPE test_golden_c_hist histogram\n\
                      test_golden_c_hist_bucket{le=\"0\"} 1\n\
                      test_golden_c_hist_bucket{le=\"3\"} 3\n\
                      test_golden_c_hist_bucket{le=\"1023\"} 4\n\
                      test_golden_c_hist_bucket{le=\"+Inf\"} 4\n\
                      test_golden_c_hist_sum 906\n\
                      test_golden_c_hist_count 4\n";
        let mine: String = {
            // Other tests in this process register their own metrics;
            // keep exactly this test's contiguous, name-sorted block.
            let start = text.find("# TYPE test_golden_a_counter").unwrap();
            let tail = &text[start..];
            let end = tail
                .lines()
                .take_while(|l| l.contains("test_golden_"))
                .map(|l| l.len() + 1)
                .sum();
            tail[..end].to_string()
        };
        assert_eq!(mine, golden);
    }

    #[test]
    fn labeled_render_escapes_and_parses() {
        let mut out = String::new();
        render_sample(
            &mut out,
            "test_labeled",
            &Sample::Counter(3),
            Some(("worker", "w\"1\\x")),
        );
        assert_eq!(out, "test_labeled{worker=\"w\\\"1\\\\x\"} 3\n");
        let mut hist = String::new();
        render_sample(
            &mut hist,
            "test_labeled_h",
            &Sample::Histogram {
                buckets: vec![(1, 2)],
                sum: 2,
                count: 2,
            },
            Some(("worker", "w3")),
        );
        assert!(hist.contains("test_labeled_h_bucket{worker=\"w3\",le=\"1\"} 2"));
        assert!(hist.contains("test_labeled_h_bucket{worker=\"w3\",le=\"+Inf\"} 2"));
        assert!(hist.contains("test_labeled_h_sum{worker=\"w3\"} 2"));
    }

    #[test]
    fn parse_round_trips_render() {
        counter("test_parse_rt_counter").add(99);
        gauge("test_parse_rt_gauge").set(-41);
        let h = histogram("test_parse_rt_hist");
        for v in [0u64, 5, 5, 1000, u64::MAX] {
            h.observe(v);
        }
        let text = render();
        let parsed = parse(&text);
        // Everything the registry snapshot holds comes back intact.
        let live = snapshot();
        assert_eq!(parsed.len(), live.len());
        for ((pn, ps), (ln, ls)) in parsed.iter().zip(&live) {
            assert_eq!(pn, ln);
            assert_eq!(ps, ls, "{pn} did not round-trip");
        }
        // And a re-render of the parsed samples is byte-identical.
        let mut again = String::new();
        for (name, sample) in &parsed {
            let _ = writeln!(again, "# TYPE {name} {}", sample_kind(sample));
            render_sample(&mut again, name, sample, None);
        }
        assert_eq!(again, text);
        // Junk and labeled lines are skipped, not misparsed.
        let noisy =
            format!("garbage\n# TYPE lonely counter\nother_name 5\n{text}x{{worker=\"w\"}} 1\n");
        assert_eq!(parse(&noisy), parsed);
    }

    #[test]
    fn fold_adds_counters_and_merges_histograms() {
        let mut acc = Sample::Counter(10);
        fold_sample(&mut acc, &Sample::Counter(5));
        assert_eq!(acc, Sample::Counter(15));

        let mut g = Sample::Gauge(3);
        fold_sample(&mut g, &Sample::Gauge(-2));
        assert_eq!(g, Sample::Gauge(-2), "gauges take the incoming level");

        let mut h = Sample::Histogram {
            buckets: vec![(1, 2), (1023, 1)],
            sum: 700,
            count: 3,
        };
        fold_sample(
            &mut h,
            &Sample::Histogram {
                buckets: vec![(0, 4), (1023, 2)],
                sum: 1400,
                count: 6,
            },
        );
        assert_eq!(
            h,
            Sample::Histogram {
                buckets: vec![(0, 4), (1, 2), (1023, 3)],
                sum: 2100,
                count: 9,
            }
        );

        // Mismatched kinds leave the accumulator untouched.
        let mut c = Sample::Counter(1);
        fold_sample(&mut c, &Sample::Gauge(9));
        assert_eq!(c, Sample::Counter(1));
    }

    #[test]
    fn delta_tracker_emits_changes_that_fold_back_to_totals() {
        let c = counter("test_delta_counter");
        let h = histogram("test_delta_hist");
        let g = gauge("test_delta_gauge");
        c.add(3);
        h.observe(100);
        g.set(7);

        let mut tracker = DeltaTracker::new();
        let first = tracker.delta();
        assert!(first.contains("test_delta_counter 3"));
        assert!(first.contains("test_delta_gauge 7"));

        // Nothing moved: this tracker's metrics go quiet (other tests may
        // move theirs concurrently, so assert on ours only).
        let quiet = tracker.delta();
        assert!(!quiet.contains("test_delta_counter"));
        assert!(!quiet.contains("test_delta_hist"));

        c.add(2);
        h.observe(100);
        h.observe(100000);
        g.set(-1);
        let second = tracker.delta();
        assert!(second.contains("test_delta_counter 2"), "counters diff");
        assert!(second.contains("test_delta_gauge -1"), "gauges absolute");

        // Folding both pushes reconstructs the live totals exactly.
        let mut table: BTreeMap<String, Sample> = BTreeMap::new();
        for text in [&first, &second] {
            for (name, delta) in parse(text) {
                table
                    .entry(name)
                    .and_modify(|acc| fold_sample(acc, &delta))
                    .or_insert(delta);
            }
        }
        assert_eq!(table["test_delta_counter"], Sample::Counter(5));
        assert_eq!(table["test_delta_gauge"], Sample::Gauge(-1));
        let live = snapshot()
            .into_iter()
            .find(|(n, _)| *n == "test_delta_hist")
            .unwrap()
            .1;
        assert_eq!(table["test_delta_hist"], live);
    }
}
