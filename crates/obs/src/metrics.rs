//! The process-wide metrics registry.
//!
//! Metrics are created on first use and live for the life of the process
//! (handles are `&'static`, leaked once at registration). Updates are
//! relaxed atomics — counters are sharded across cache lines so that
//! worker threads incrementing the same metric never contend.
//!
//! The registry renders to a stable, line-oriented text exposition
//! format: `# TYPE` comment lines followed by `name value` samples, with
//! histogram buckets as `name_bucket{le="<edge>"} <cumulative>` plus
//! `name_sum` / `name_count`. Names sort lexicographically, so two
//! snapshots of the same process differ only in sample values — the
//! serve protocol's `Metrics` reply and the `--metrics-dump` files are
//! exactly this text.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{OnceLock, RwLock};

/// Number of independent cache-line-padded shards per counter.
const SHARDS: usize = 8;

#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

thread_local! {
    /// A small per-thread id used to pick a counter shard; threads spread
    /// round-robin so concurrent increments of one counter land on
    /// different cache lines.
    static SHARD: usize = {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS
    };
}

/// A monotonically-increasing counter, sharded across cache lines.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// Adds `n` to the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        SHARD.with(|&s| self.shards[s].0.fetch_add(n, Ordering::Relaxed));
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The sum over all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A gauge: a value that goes up and down (queue depths, live leases).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts 1.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per bit position.
pub const BUCKETS: usize = 65;

/// A latency histogram with fixed logarithmic (power-of-two) buckets.
///
/// Bucket `0` holds exactly the value `0`; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i - 1]`, i.e. its inclusive upper edge is `2^i - 1`.
/// Observing is two relaxed atomic adds — no locks, no allocation.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index a value lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive upper edge of bucket `i` (`u64::MAX` for the last).
pub fn bucket_edge(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn observe_ns(&self, d: std::time::Duration) {
        self.observe(d.as_nanos() as u64);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts.
    pub fn buckets(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// The process-wide registry mapping names to metric handles.
#[derive(Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<&'static str, Metric>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

macro_rules! lookup_or_register {
    ($name:expr, $variant:ident, $ty:ty) => {{
        let reg = registry();
        if let Some(Metric::$variant(m)) = reg.metrics.read().unwrap().get($name) {
            return m;
        }
        let mut map = reg.metrics.write().unwrap();
        match map
            .entry($name)
            .or_insert_with(|| Metric::$variant(Box::leak(Box::<$ty>::default())))
        {
            Metric::$variant(m) => m,
            _ => panic!("metric {:?} registered with a different type", $name),
        }
    }};
}

/// The counter named `name`, creating it on first use.
pub fn counter(name: &'static str) -> &'static Counter {
    lookup_or_register!(name, Counter, Counter)
}

/// The gauge named `name`, creating it on first use.
pub fn gauge(name: &'static str) -> &'static Gauge {
    lookup_or_register!(name, Gauge, Gauge)
}

/// The histogram named `name`, creating it on first use.
pub fn histogram(name: &'static str) -> &'static Histogram {
    lookup_or_register!(name, Histogram, Histogram)
}

macro_rules! lazy_handle {
    ($lazy:ident, $ty:ident, $get:ident, $doc:literal) => {
        #[doc = $doc]
        ///
        /// Resolves its registry entry on first touch and caches the
        /// `&'static` handle, so steady-state access is one atomic load.
        pub struct $lazy {
            name: &'static str,
            cell: OnceLock<&'static $ty>,
        }

        impl $lazy {
            /// A handle for the metric named `name` (not yet registered).
            pub const fn new(name: &'static str) -> Self {
                Self {
                    name,
                    cell: OnceLock::new(),
                }
            }

            /// The resolved registry handle.
            #[inline]
            pub fn get(&self) -> &'static $ty {
                self.cell.get_or_init(|| $get(self.name))
            }
        }

        impl std::ops::Deref for $lazy {
            type Target = $ty;
            #[inline]
            fn deref(&self) -> &$ty {
                self.get()
            }
        }
    };
}

lazy_handle!(
    LazyCounter,
    Counter,
    counter,
    "A `static`-friendly handle to a named [`Counter`]."
);
lazy_handle!(
    LazyGauge,
    Gauge,
    gauge,
    "A `static`-friendly handle to a named [`Gauge`]."
);
lazy_handle!(
    LazyHistogram,
    Histogram,
    histogram,
    "A `static`-friendly handle to a named [`Histogram`]."
);

/// One metric's value in a [`snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Sample {
    /// A counter total.
    Counter(u64),
    /// A gauge level.
    Gauge(i64),
    /// Histogram per-bucket counts and value sum.
    Histogram {
        /// Non-cumulative per-bucket counts.
        buckets: Vec<(u64, u64)>,
        /// Sum of observed values.
        sum: u64,
        /// Total observations.
        count: u64,
    },
}

/// A consistent-as-of-read copy of every registered metric, sorted by
/// name. Counter reads sum their shards, so a snapshot taken while other
/// threads increment may lag, but it never tears a single 64-bit sample
/// and post-join totals are exact.
pub fn snapshot() -> Vec<(&'static str, Sample)> {
    let map = registry().metrics.read().unwrap();
    map.iter()
        .map(|(&name, metric)| {
            let sample = match metric {
                Metric::Counter(c) => Sample::Counter(c.value()),
                Metric::Gauge(g) => Sample::Gauge(g.value()),
                Metric::Histogram(h) => {
                    let buckets = h.buckets();
                    Sample::Histogram {
                        buckets: buckets
                            .iter()
                            .enumerate()
                            .filter(|&(_, &n)| n > 0)
                            .map(|(i, &n)| (bucket_edge(i), n))
                            .collect(),
                        sum: h.sum(),
                        count: buckets.iter().sum(),
                    }
                }
            };
            (name, sample)
        })
        .collect()
}

/// Renders the registry in the text exposition format (see module docs).
pub fn render() -> String {
    let mut out = String::new();
    for (name, sample) in snapshot() {
        match sample {
            Sample::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
            }
            Sample::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
            }
            Sample::Histogram {
                buckets,
                sum,
                count,
            } => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (edge, n) in buckets {
                    cumulative += n;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{edge}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
                let _ = writeln!(out, "{name}_sum {sum}\n{name}_count {count}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shards_sum() {
        let c = counter("test_metrics_counter_shards");
        c.inc();
        c.add(41);
        assert_eq!(c.value(), 42);
        // Same name resolves to the same handle.
        assert_eq!(counter("test_metrics_counter_shards").value(), 42);
    }

    #[test]
    fn gauge_up_down() {
        let g = gauge("test_metrics_gauge");
        g.set(5);
        g.inc();
        g.dec();
        g.add(-3);
        assert_eq!(g.value(), 2);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 is exactly zero; bucket i>0 spans [2^(i-1), 2^i - 1].
        assert_eq!(bucket_index(0), 0);
        for i in 1..64usize {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            // At the lower edge, at the upper edge, and (when the bucket
            // is wider than one value) strictly inside.
            assert_eq!(bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper edge of bucket {i}");
            if hi > lo {
                assert_eq!(bucket_index(lo + 1), i, "interior of bucket {i}");
            }
            // Just below the lower edge lands one bucket down; just above
            // the upper edge lands one bucket up.
            assert_eq!(bucket_index(lo - 1), i - 1, "below bucket {i}");
            if i < 63 {
                assert_eq!(bucket_index(hi + 1), i + 1, "above bucket {i}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_edge(0), 0);
        assert_eq!(bucket_edge(1), 1);
        assert_eq!(bucket_edge(10), 1023);
        assert_eq!(bucket_edge(64), u64::MAX);
    }

    #[test]
    fn histogram_observe_and_edges() {
        let h = histogram("test_metrics_hist_edges");
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(
            h.sum(),
            0u64.wrapping_add(1 + 2 + 3 + 4 + 1023 + 1024)
                .wrapping_add(u64::MAX)
        );
        let b = h.buckets();
        assert_eq!(b[0], 1); // 0
        assert_eq!(b[1], 1); // 1
        assert_eq!(b[2], 2); // 2, 3
        assert_eq!(b[3], 1); // 4
        assert_eq!(b[10], 1); // 1023
        assert_eq!(b[11], 1); // 1024
        assert_eq!(b[64], 1); // u64::MAX
    }

    #[test]
    fn render_is_stable_and_parseable() {
        counter("test_render_counter").add(7);
        gauge("test_render_gauge").set(-3);
        let h = histogram("test_render_hist");
        h.observe(0);
        h.observe(100);
        let text = render();
        assert!(text.contains("# TYPE test_render_counter counter"));
        assert!(text.contains("test_render_counter 7"));
        assert!(text.contains("test_render_gauge -3"));
        assert!(text.contains("test_render_hist_bucket{le=\"0\"} 1"));
        assert!(text.contains("test_render_hist_bucket{le=\"127\"} 2"));
        assert!(text.contains("test_render_hist_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("test_render_hist_sum 100"));
        assert!(text.contains("test_render_hist_count 2"));
        // Every line is a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE ") || line.split_whitespace().count() == 2,
                "unparseable line: {line:?}"
            );
        }
        // Names appear in sorted order (stable exposition).
        let names: Vec<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .map(|l| l.split(' ').next().unwrap())
            .collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn lazy_handles_resolve_once() {
        static C: LazyCounter = LazyCounter::new("test_lazy_counter");
        static H: LazyHistogram = LazyHistogram::new("test_lazy_hist");
        C.inc();
        C.add(2);
        H.observe(9);
        assert_eq!(counter("test_lazy_counter").value(), 3);
        assert_eq!(histogram("test_lazy_hist").count(), 1);
        assert!(std::ptr::eq(C.get(), counter("test_lazy_counter")));
    }
}
