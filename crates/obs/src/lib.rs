//! Process-wide observability for the -OVERIFY stack, with zero external
//! dependencies (the build environment is offline).
//!
//! Three pieces, each usable alone:
//!
//! - [`metrics`] — a global registry of named [`metrics::Counter`]s,
//!   [`metrics::Gauge`]s, and fixed-log-bucket latency
//!   [`metrics::Histogram`]s. Handles are obtained once (usually through
//!   the `static`-friendly [`metrics::LazyCounter`] family) and updated
//!   with relaxed atomics; a snapshot renders in a stable, line-oriented
//!   text exposition format that the serve protocol's `Metrics` request
//!   returns verbatim.
//! - [`trace`] — a span/event tracing layer backed by a per-process
//!   ring-buffer *flight recorder*. Spans carry correlation ids (run
//!   fingerprint, job key, lease id) as string args; the daemon and every
//!   worker process each keep their own ring, and because timestamps are
//!   wall-clock microseconds the per-process dumps stitch into one
//!   timeline. Dumps are Chrome trace-event JSON, written on demand or
//!   from a panic hook. When disabled (the default), starting a span is
//!   one relaxed atomic load.
//! - [`log`] — leveled structured logging to stderr, off by default so
//!   test output stays clean. The level is parsed once from `OVERIFY_LOG`
//!   and cached in an atomic; a disabled call is one relaxed load.
//! - [`rings`] — fixed-size time-series rings sampled from the registry
//!   on a timer, for in-process rate() and windowed-quantile queries
//!   (no allocation in steady-state sampling).
//! - [`slow`] — a bounded top-K slow-query log keyed by solver query
//!   fingerprints, merged fleet-wide by the serve daemon.
//!
//! # Environment variables
//!
//! - `OVERIFY_LOG` — `error` | `warn` | `info` | `debug` | `trace`
//!   (or `0`–`5`). Unset/`off` disables logging entirely.
//! - `OVERIFY_TRACE` — `1`/`true`/`on` enables the flight recorder; any
//!   other non-empty value enables it *and* names the default dump path
//!   (written by [`trace::dump_default`] and by the panic hook).
//!
//! Call [`init`] once near process start (the serve daemon, the remote
//! worker, and the suite driver all do); it is idempotent and cheap.

pub mod log;
pub mod metrics;
pub mod rings;
pub mod slow;
pub mod trace;

use std::sync::Once;

static INIT: Once = Once::new();

/// Parses `OVERIFY_LOG` / `OVERIFY_TRACE` and installs the panic-dump
/// hook when tracing is enabled. Idempotent; safe to call from every
/// entry point that might be first.
pub fn init() {
    INIT.call_once(|| {
        log::init_from_env();
        trace::init_from_env();
    });
}

/// Wall-clock microseconds since the UNIX epoch — the shared timebase
/// that lets separately-dumped process traces merge into one timeline.
pub(crate) fn wall_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Minimal JSON string escaping for trace dump values.
pub(crate) fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}
