//! Leveled structured logging, off by default.
//!
//! The level is parsed once from `OVERIFY_LOG` and cached in an atomic;
//! every disabled call site is one relaxed load and an integer compare.
//! Enabled records go to stderr as `[overify::<target>] <level>: <msg>`
//! and — when the flight recorder is live — double as instant trace
//! events, so log lines land on the same timeline as spans.
//!
//! Use the crate-root macros:
//!
//! ```
//! overify_obs::warn!("store", "failed to persist the solver cache: {}", 7);
//! ```

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered. `Off` disables everything.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Logging disabled.
    Off = 0,
    /// Unrecoverable or dropped-work conditions.
    Error = 1,
    /// Degraded-but-continuing conditions (store write failures, reaps).
    Warn = 2,
    /// Lifecycle milestones (daemon up, worker attached).
    Info = 3,
    /// Per-job diagnostics.
    Debug = 4,
    /// Per-branch firehose (the old `SYMEX_TRACE`).
    Trace = 5,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            5 => Level::Trace,
            _ => Level::Off,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

/// Parses `OVERIFY_LOG` (`error`..`trace` or `0`..`5`) into the cached
/// level. Unset or unrecognized means [`Level::Off`].
pub fn init_from_env() {
    let level = match std::env::var("OVERIFY_LOG").as_deref() {
        Ok("error") | Ok("1") => Level::Error,
        Ok("warn") | Ok("2") => Level::Warn,
        Ok("info") | Ok("3") => Level::Info,
        Ok("debug") | Ok("4") => Level::Debug,
        Ok("trace") | Ok("5") => Level::Trace,
        _ => Level::Off,
    };
    set_max_level(level);
}

/// Overrides the cached level programmatically (tests, embedders).
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The currently cached level.
pub fn max_level() -> Level {
    Level::from_u8(MAX_LEVEL.load(Ordering::Relaxed))
}

/// Whether records at `level` are emitted. One relaxed atomic load.
#[inline]
pub fn enabled(level: Level) -> bool {
    (level as u8) <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Emits one record. Call through the macros, which gate on
/// [`enabled`] *before* formatting.
pub fn emit(level: Level, target: &'static str, args: std::fmt::Arguments<'_>) {
    let msg = args.to_string();
    eprintln!("[overify::{target}] {}: {msg}", level.name());
    if crate::trace::enabled() {
        crate::trace::event(
            "log",
            &[("target", &target), ("level", &level.name()), ("msg", &msg)],
        );
    }
}

/// Logs at error level: `error!("target", "fmt", ...)`.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::emit($crate::log::Level::Error, $target, format_args!($($arg)+));
        }
    };
}

/// Logs at warn level: `warn!("target", "fmt", ...)`.
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::emit($crate::log::Level::Warn, $target, format_args!($($arg)+));
        }
    };
}

/// Logs at info level: `info!("target", "fmt", ...)`.
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::emit($crate::log::Level::Info, $target, format_args!($($arg)+));
        }
    };
}

/// Logs at debug level: `debug!("target", "fmt", ...)`.
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::emit($crate::log::Level::Debug, $target, format_args!($($arg)+));
        }
    };
}

/// Logs at trace level: `log_trace!("target", "fmt", ...)`. (Named to
/// avoid colliding with [`crate::trace::span`]'s module.)
#[macro_export]
macro_rules! log_trace {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($crate::log::Level::Trace) {
            $crate::log::emit($crate::log::Level::Trace, $target, format_args!($($arg)+));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The level is process-global; tests mutating it serialize here.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn levels_order_and_gate() {
        let _g = test_lock();
        set_max_level(Level::Off);
        assert!(!enabled(Level::Error));
        set_max_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_max_level(Level::Trace);
        assert!(enabled(Level::Debug));
        assert!(enabled(Level::Trace));
        set_max_level(Level::Off);
    }

    #[test]
    fn macros_compile_and_gate() {
        let _g = test_lock();
        set_max_level(Level::Off);
        // Must not panic or print; the format arm must not even evaluate.
        let mut evaluated = false;
        crate::warn!("test", "{}", {
            evaluated = true;
            1
        });
        assert!(!evaluated);
        set_max_level(Level::Off);
    }
}
