//! Fixed-size time-series rings over the metrics registry.
//!
//! A [`Rings`] periodically snapshots every registered metric into a
//! preallocated circular buffer of cumulative values — `slots` windows of
//! `resolution` each — so rates and windowed quantiles over the last N
//! windows are computable in-process, with no external scraper and no
//! history database. The sampler is driven by whoever owns the `Rings`
//! (the serve daemon ticks it from its poller thread); sampling takes one
//! mutex and, in steady state, allocates nothing — storage is created
//! once per metric, the first time the sampler sees it.
//!
//! Counters and histograms store cumulative totals per slot, so any pair
//! of slots yields the exact delta over the windows between them;
//! quantiles over a span come from the bucket-count difference run
//! through [`crate::metrics::quantile_from_buckets`]. Gauges store the
//! sampled level.
//!
//! Environment knobs (read by [`Rings::from_env`]):
//!
//! - `OVERIFY_RING_MS` — window resolution in milliseconds (default
//!   1000).
//! - `OVERIFY_RING_SLOTS` — number of windows retained (default 64,
//!   minimum 2).

use crate::metrics::{self, MetricView, BUCKETS};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-metric ring storage: cumulative samples, one per slot.
enum Series {
    Counter(Box<[u64]>),
    Gauge(Box<[i64]>),
    /// Flattened `slots × BUCKETS` cumulative bucket counts plus the
    /// cumulative value sum per slot.
    Histogram {
        buckets: Box<[u64]>,
        sums: Box<[u64]>,
    },
}

struct Inner {
    /// Total samples taken since construction (monotone; `tick % slots`
    /// is the slot the *next* sample writes).
    tick: u64,
    last: Option<Instant>,
    series: HashMap<&'static str, Series>,
}

/// A set of per-metric time-series rings (see module docs).
pub struct Rings {
    resolution: Duration,
    slots: usize,
    inner: Mutex<Inner>,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

impl Rings {
    /// Rings with `slots` windows of `resolution` each (`slots` is
    /// clamped to at least 2 — one delta needs two samples).
    pub fn new(resolution: Duration, slots: usize) -> Rings {
        Rings {
            resolution: resolution.max(Duration::from_millis(1)),
            slots: slots.max(2),
            inner: Mutex::new(Inner {
                tick: 0,
                last: None,
                series: HashMap::new(),
            }),
        }
    }

    /// Rings configured from `OVERIFY_RING_MS` / `OVERIFY_RING_SLOTS`.
    pub fn from_env() -> Rings {
        Rings::new(
            Duration::from_millis(env_usize("OVERIFY_RING_MS", 1000) as u64),
            env_usize("OVERIFY_RING_SLOTS", 64),
        )
    }

    /// The configured window resolution.
    pub fn resolution(&self) -> Duration {
        self.resolution
    }

    /// Samples every registered metric into the next slot now,
    /// unconditionally.
    pub fn sample(&self) {
        let mut inner = self.inner.lock().unwrap();
        self.sample_locked(&mut inner);
    }

    /// Samples iff at least one resolution window elapsed since the last
    /// sample (first call always samples). Returns whether it sampled —
    /// callers on a faster housekeeping timer can tick this every pass.
    pub fn maybe_sample(&self) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let due = match inner.last {
            None => true,
            Some(t) => t.elapsed() >= self.resolution,
        };
        if due {
            self.sample_locked(&mut inner);
        }
        due
    }

    fn sample_locked(&self, inner: &mut Inner) {
        let slot = (inner.tick % self.slots as u64) as usize;
        let slots = self.slots;
        let series = &mut inner.series;
        metrics::for_each(|name, view| {
            let entry = series.entry(name).or_insert_with(|| match view {
                MetricView::Counter(_) => Series::Counter(vec![0u64; slots].into_boxed_slice()),
                MetricView::Gauge(_) => Series::Gauge(vec![0i64; slots].into_boxed_slice()),
                MetricView::Histogram(_) => Series::Histogram {
                    buckets: vec![0u64; slots * BUCKETS].into_boxed_slice(),
                    sums: vec![0u64; slots].into_boxed_slice(),
                },
            });
            match (entry, view) {
                (Series::Counter(ring), MetricView::Counter(c)) => ring[slot] = c.value(),
                (Series::Gauge(ring), MetricView::Gauge(g)) => ring[slot] = g.value(),
                (Series::Histogram { buckets, sums }, MetricView::Histogram(h)) => {
                    buckets[slot * BUCKETS..][..BUCKETS].copy_from_slice(&h.buckets());
                    sums[slot] = h.sum();
                }
                _ => {}
            }
        });
        inner.tick += 1;
        inner.last = Some(Instant::now());
    }

    /// `(newest slot, oldest slot, actual windows spanned)` for a query
    /// over up to `windows` windows, or `None` with fewer than 2 samples.
    fn span(&self, inner: &Inner, windows: usize) -> Option<(usize, usize, usize)> {
        let taken = inner.tick.min(self.slots as u64) as usize;
        if taken < 2 {
            return None;
        }
        let w = windows.clamp(1, taken - 1);
        let newest = ((inner.tick - 1) % self.slots as u64) as usize;
        let oldest = ((inner.tick - 1 - w as u64) % self.slots as u64) as usize;
        Some((newest, oldest, w))
    }

    /// The increase of counter (or histogram observation count) `name`
    /// over the last `windows` windows (clamped to what the ring holds).
    pub fn delta(&self, name: &str, windows: usize) -> Option<u64> {
        let inner = self.inner.lock().unwrap();
        let (new, old, _) = self.span(&inner, windows)?;
        match inner.series.get(name)? {
            Series::Counter(ring) => Some(ring[new].saturating_sub(ring[old])),
            Series::Histogram { buckets, .. } => {
                let count = |s: usize| buckets[s * BUCKETS..][..BUCKETS].iter().sum::<u64>();
                Some(count(new).saturating_sub(count(old)))
            }
            Series::Gauge(_) => None,
        }
    }

    /// The per-second rate of counter (or histogram count) `name` over
    /// the last `windows` windows.
    pub fn rate(&self, name: &str, windows: usize) -> Option<f64> {
        let inner = self.inner.lock().unwrap();
        let (new, old, w) = self.span(&inner, windows)?;
        let d = match inner.series.get(name)? {
            Series::Counter(ring) => ring[new].saturating_sub(ring[old]),
            Series::Histogram { buckets, .. } => {
                let count = |s: usize| buckets[s * BUCKETS..][..BUCKETS].iter().sum::<u64>();
                count(new).saturating_sub(count(old))
            }
            Series::Gauge(_) => return None,
        };
        Some(d as f64 / (w as f64 * self.resolution.as_secs_f64()))
    }

    /// The sampled level of gauge `name` at the newest sample.
    pub fn gauge_level(&self, name: &str) -> Option<i64> {
        let inner = self.inner.lock().unwrap();
        let (new, _, _) = self.span(&inner, 1)?;
        match inner.series.get(name)? {
            Series::Gauge(ring) => Some(ring[new]),
            _ => None,
        }
    }

    /// The estimated `p`-quantile of histogram `name` over observations
    /// made in the last `windows` windows. `None` when the metric is
    /// unknown, not a histogram, or saw nothing in the span.
    pub fn quantile_over(&self, name: &str, windows: usize, p: f64) -> Option<u64> {
        let inner = self.inner.lock().unwrap();
        let (new, old, _) = self.span(&inner, windows)?;
        let Series::Histogram { buckets, .. } = inner.series.get(name)? else {
            return None;
        };
        let mut pairs = [(0u64, 0u64); BUCKETS];
        let mut total = 0u64;
        for (i, pair) in pairs.iter_mut().enumerate() {
            let d = buckets[new * BUCKETS + i].saturating_sub(buckets[old * BUCKETS + i]);
            total += d;
            *pair = (metrics::bucket_edge(i), d);
        }
        (total > 0).then(|| metrics::quantile_from_buckets(&pairs, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{counter, gauge, histogram};

    #[test]
    fn counter_delta_and_rate_over_windows() {
        let c = counter("test_rings_counter");
        let rings = Rings::new(Duration::from_millis(100), 8);
        assert_eq!(rings.delta("test_rings_counter", 1), None, "one sample");
        rings.sample();
        for _ in 0..4 {
            c.add(10);
            rings.sample();
        }
        // 4 deltas of 10 each, newest-first spans.
        assert_eq!(rings.delta("test_rings_counter", 1), Some(10));
        assert_eq!(rings.delta("test_rings_counter", 4), Some(40));
        // Clamped to what the ring has seen.
        assert_eq!(rings.delta("test_rings_counter", 100), Some(40));
        let r = rings.rate("test_rings_counter", 4).unwrap();
        assert!(
            (r - 100.0).abs() < 1e-6,
            "10 per 100ms window = 100/s, got {r}"
        );
    }

    #[test]
    fn ring_wraps_without_losing_recent_windows() {
        let c = counter("test_rings_wrap");
        let rings = Rings::new(Duration::from_millis(50), 4);
        for _ in 0..10 {
            c.add(1);
            rings.sample();
        }
        // Only slots-1 = 3 windows survive the wrap.
        assert_eq!(rings.delta("test_rings_wrap", 1), Some(1));
        assert_eq!(rings.delta("test_rings_wrap", 3), Some(3));
        assert_eq!(rings.delta("test_rings_wrap", 50), Some(3));
    }

    #[test]
    fn histogram_quantile_over_recent_windows_ignores_old_mass() {
        let h = histogram("test_rings_hist");
        let rings = Rings::new(Duration::from_millis(50), 8);
        for _ in 0..1000 {
            h.observe(10); // old, small observations
        }
        rings.sample();
        for _ in 0..100 {
            h.observe(100_000); // recent, large observations
        }
        rings.sample();
        // Over the whole histogram the small mass dominates the median...
        assert!(h.quantile(0.5) <= 15);
        // ...but the last window saw only the large ones.
        let p50 = rings.quantile_over("test_rings_hist", 1, 0.5).unwrap();
        assert!((65536..=131071).contains(&p50), "window median {p50}");
        assert_eq!(rings.quantile_over("test_rings_hist", 1, 0.0), Some(65536));
        // A quiet span has no observations to estimate from.
        rings.sample();
        assert_eq!(rings.quantile_over("test_rings_hist", 1, 0.5), None);
        // Gauges have no quantiles; unknown names have nothing.
        gauge("test_rings_gauge_kind").set(5);
        rings.sample();
        assert_eq!(rings.quantile_over("test_rings_gauge_kind", 1, 0.5), None);
        assert_eq!(rings.quantile_over("test_rings_nosuch", 1, 0.5), None);
    }

    #[test]
    fn gauge_level_tracks_newest_sample() {
        let g = gauge("test_rings_gauge");
        let rings = Rings::new(Duration::from_millis(50), 4);
        g.set(3);
        rings.sample();
        g.set(9);
        rings.sample();
        assert_eq!(rings.gauge_level("test_rings_gauge"), Some(9));
        assert_eq!(rings.delta("test_rings_gauge", 1), None, "not a counter");
    }

    #[test]
    fn maybe_sample_respects_resolution() {
        let rings = Rings::new(Duration::from_secs(3600), 4);
        assert!(rings.maybe_sample(), "first tick always samples");
        assert!(!rings.maybe_sample(), "window has not elapsed");
        let quick = Rings::new(Duration::from_millis(1), 4);
        assert!(quick.maybe_sample());
        std::thread::sleep(Duration::from_millis(5));
        assert!(quick.maybe_sample());
    }
}
