//! A bounded slow-query log: the top-K most expensive solver queries a
//! process has seen, identified by their structural fingerprints.
//!
//! The solver records `(fingerprint, nanoseconds)` pairs after expensive
//! checks; the log keeps only the K slowest (deduplicated by fingerprint,
//! keeping each fingerprint's worst time), so memory is bounded no matter
//! how long the process runs. The hot-path gate is one relaxed atomic
//! load: once the log is full, [`SlowLog::would_record`] rejects anything
//! no slower than the current K-th entry without taking the lock — and
//! because every *successful* SAT-layer check is orders of magnitude
//! rarer than cache hits, even the lock-taking path is cold.
//!
//! Workers push their log with every metrics upstream frame; the daemon
//! [`SlowLog::absorb`]s them into its own, so a fleet scrape surfaces the
//! slowest queries anywhere in the fleet. `OVERIFY_SLOW_K` sizes the
//! process-global log (default 16).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Default capacity of the process-global log.
const DEFAULT_CAPACITY: usize = 16;

/// A bounded top-K log of `(fingerprint, worst nanoseconds)` entries,
/// kept sorted slowest-first.
pub struct SlowLog {
    capacity: usize,
    /// The K-th entry's time once the log is full (0 before): the
    /// record-nothing fast-path threshold.
    threshold: AtomicU64,
    entries: Mutex<Vec<(u128, u64)>>,
}

impl SlowLog {
    /// An empty log keeping the `capacity` slowest entries.
    pub fn with_capacity(capacity: usize) -> SlowLog {
        SlowLog {
            capacity: capacity.max(1),
            threshold: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// The process-global log (capacity from `OVERIFY_SLOW_K`).
    pub fn global() -> &'static SlowLog {
        static GLOBAL: OnceLock<SlowLog> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let k = std::env::var("OVERIFY_SLOW_K")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(DEFAULT_CAPACITY);
            SlowLog::with_capacity(k)
        })
    }

    /// Whether a `ns`-long query would make the log — one relaxed load,
    /// so callers can skip fingerprint computation for the common case.
    #[inline]
    pub fn would_record(&self, ns: u64) -> bool {
        ns > self.threshold.load(Ordering::Relaxed)
    }

    /// Records one query, keeping the worst time per fingerprint and only
    /// the K slowest fingerprints overall.
    pub fn record(&self, fp: u128, ns: u64) {
        if !self.would_record(ns) {
            return;
        }
        let mut entries = self.entries.lock().unwrap();
        match entries.iter_mut().find(|e| e.0 == fp) {
            Some(e) if e.1 >= ns => return,
            Some(e) => e.1 = ns,
            None => entries.push((fp, ns)),
        }
        entries.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.truncate(self.capacity);
        if entries.len() == self.capacity {
            self.threshold
                .store(entries.last().unwrap().1, Ordering::Relaxed);
        }
    }

    /// Merges externally-observed entries (a worker's pushed log).
    pub fn absorb(&self, entries: &[(u128, u64)]) {
        for &(fp, ns) in entries {
            self.record(fp, ns);
        }
    }

    /// The current entries, slowest first.
    pub fn snapshot(&self) -> Vec<(u128, u64)> {
        self.entries.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_the_k_slowest_sorted_desc() {
        let log = SlowLog::with_capacity(3);
        for (fp, ns) in [(1u128, 10u64), (2, 50), (3, 30), (4, 40), (5, 20)] {
            log.record(fp, ns);
        }
        assert_eq!(log.snapshot(), vec![(2, 50), (4, 40), (3, 30)]);
        // Once full, anything at or below the K-th entry is rejected
        // without locking.
        assert!(!log.would_record(30));
        assert!(log.would_record(31));
        log.record(6, 29);
        assert_eq!(log.snapshot().len(), 3);
    }

    #[test]
    fn dedups_by_fingerprint_keeping_the_worst_time() {
        let log = SlowLog::with_capacity(4);
        log.record(7, 100);
        log.record(7, 90);
        log.record(7, 120);
        assert_eq!(log.snapshot(), vec![(7, 120)]);
    }

    #[test]
    fn absorb_merges_a_pushed_log() {
        let daemon = SlowLog::with_capacity(2);
        daemon.record(1, 100);
        let worker = SlowLog::with_capacity(2);
        worker.record(2, 300);
        worker.record(1, 150);
        daemon.absorb(&worker.snapshot());
        assert_eq!(daemon.snapshot(), vec![(2, 300), (1, 150)]);
    }
}
