//! Span/event tracing into a per-process ring-buffer flight recorder.
//!
//! When disabled (the default) every entry point is one relaxed atomic
//! load returning a no-op guard — no clock reads, no formatting, no
//! allocation. When `OVERIFY_TRACE` enables it, completed spans and
//! instant events are pushed into a fixed-capacity ring (oldest events
//! drop first) and can be dumped at any time as Chrome trace-event JSON
//! (`chrome://tracing` / Perfetto load it directly).
//!
//! Timestamps are wall-clock microseconds since the UNIX epoch, so the
//! daemon's dump and each worker's dump share a timebase: concatenating
//! their `traceEvents` arrays yields one coherent distributed timeline.
//! Correlation ids — run fingerprint, job key, lease id — travel as span
//! args (and over the wire via protocol v5), which is how a worker's
//! `execute` span lines up under the daemon's `lease` span for the same
//! lease.

use std::fmt::Display;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity (events); oldest events are dropped beyond it.
const DEFAULT_CAPACITY: usize = 65_536;

static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Small dense per-thread id for the `tid` field of dumped events.
    static TID: u64 = {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        NEXT.fetch_add(1, Ordering::Relaxed)
    };
}

/// One recorded event (a completed span or an instant marker).
struct Event {
    name: &'static str,
    /// Chrome phase: `'X'` = complete span, `'i'` = instant.
    ph: char,
    /// Wall-clock microseconds since the UNIX epoch.
    ts_us: u64,
    dur_us: u64,
    tid: u64,
    args: Vec<(&'static str, String)>,
}

struct Recorder {
    ring: std::collections::VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl Recorder {
    fn push(&mut self, ev: Event) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }
}

fn recorder() -> &'static Mutex<Recorder> {
    static RECORDER: OnceLock<Mutex<Recorder>> = OnceLock::new();
    RECORDER.get_or_init(|| {
        Mutex::new(Recorder {
            ring: std::collections::VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
        })
    })
}

/// The default dump path from `OVERIFY_TRACE=<path>`, if one was given.
fn default_path() -> &'static Mutex<Option<PathBuf>> {
    static PATH: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    PATH.get_or_init(|| Mutex::new(None))
}

/// Whether the flight recorder is on. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the recorder on programmatically (tests, embedders).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the recorder off (already-recorded events stay in the ring).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Parses `OVERIFY_TRACE` and, when it enables tracing, installs a panic
/// hook that dumps the flight recorder before unwinding — the crash
/// timeline survives the crash.
pub fn init_from_env() {
    let Ok(v) = std::env::var("OVERIFY_TRACE") else {
        return;
    };
    match v.as_str() {
        "" | "0" | "off" | "false" => return,
        "1" | "true" | "on" => {}
        path => *default_path().lock().unwrap() = Some(PathBuf::from(path)),
    }
    enable();
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let path = default_path()
            .lock()
            .map(|p| p.clone())
            .unwrap_or_default()
            .unwrap_or_else(|| {
                std::env::temp_dir()
                    .join(format!("overify-trace-panic-{}.json", std::process::id()))
            });
        if dump_to(&path).is_ok() {
            eprintln!("overify_obs: flight recorder dumped to {}", path.display());
        }
        previous(info);
    }));
}

/// A live span guard. Dropping it records a complete (`ph:"X"`) event
/// covering its lifetime. When tracing is disabled the guard is inert
/// and carries no clock reads or allocations.
pub struct Span(Option<SpanInner>);

struct SpanInner {
    name: &'static str,
    ts_us: u64,
    start: Instant,
    args: Vec<(&'static str, String)>,
}

/// Starts a span named `name`. `name` should be a short stable verb
/// (`"lease"`, `"execute"`, `"submit"`); correlation ids go in
/// [`Span::arg`].
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span(None);
    }
    Span(Some(SpanInner {
        name,
        ts_us: crate::wall_us(),
        start: Instant::now(),
        args: Vec::new(),
    }))
}

impl Span {
    /// Attaches a correlation arg (formatted only when tracing is live).
    pub fn arg(mut self, key: &'static str, value: impl Display) -> Span {
        if let Some(inner) = &mut self.0 {
            inner.args.push((key, value.to_string()));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else { return };
        let dur_us = inner.start.elapsed().as_micros() as u64;
        record(Event {
            name: inner.name,
            ph: 'X',
            ts_us: inner.ts_us,
            dur_us,
            tid: TID.with(|&t| t),
            args: inner.args,
        });
    }
}

/// Records an instant (`ph:"i"`) event with the given args.
pub fn event(name: &'static str, args: &[(&'static str, &dyn Display)]) {
    if !enabled() {
        return;
    }
    record(Event {
        name,
        ph: 'i',
        ts_us: crate::wall_us(),
        dur_us: 0,
        tid: TID.with(|&t| t),
        args: args.iter().map(|&(k, v)| (k, v.to_string())).collect(),
    });
}

/// Records a complete span after the fact, from a start timestamp taken
/// earlier with [`now_us`] — for spans whose start and end live in
/// different call frames (a lease granted in one request and completed
/// in another).
pub fn complete_span(name: &'static str, start_us: u64, args: &[(&'static str, &dyn Display)]) {
    if !enabled() {
        return;
    }
    let now = crate::wall_us();
    record(Event {
        name,
        ph: 'X',
        ts_us: start_us,
        dur_us: now.saturating_sub(start_us),
        tid: TID.with(|&t| t),
        args: args.iter().map(|&(k, v)| (k, v.to_string())).collect(),
    });
}

/// Wall-clock microseconds since the UNIX epoch (the trace timebase).
pub fn now_us() -> u64 {
    crate::wall_us()
}

fn record(ev: Event) {
    if let Ok(mut rec) = recorder().lock() {
        rec.push(ev);
    }
}

/// Number of events currently buffered (tests, introspection).
pub fn buffered() -> usize {
    recorder().lock().map(|r| r.ring.len()).unwrap_or(0)
}

/// Serializes the ring as Chrome trace-event JSON. The ring is *not*
/// cleared; repeated dumps are supersets.
pub fn dump_json() -> String {
    let rec = recorder().lock().unwrap();
    let pid = std::process::id();
    let mut out = String::with_capacity(64 + rec.ring.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in rec.ring.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        crate::json_escape(ev.name, &mut out);
        out.push_str("\",\"cat\":\"overify\",\"ph\":\"");
        out.push(ev.ph);
        out.push_str(&format!(
            "\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}",
            ev.ts_us, ev.dur_us, pid, ev.tid
        ));
        if ev.ph == 'i' {
            // Chrome requires a scope on instant events.
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{");
        for (j, (k, v)) in ev.args.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            crate::json_escape(k, &mut out);
            out.push_str("\":\"");
            crate::json_escape(v, &mut out);
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Writes [`dump_json`] to `path`.
pub fn dump_to(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, dump_json())
}

/// Writes the dump to the `OVERIFY_TRACE=<path>` default, if one was
/// configured. Returns the path written. Service binaries call this on
/// clean shutdown so every process leaves a timeline behind.
pub fn dump_default() -> Option<PathBuf> {
    let path = default_path().lock().ok()?.clone()?;
    dump_to(&path).ok()?;
    Some(path)
}

/// Events dropped because the ring was full.
pub fn dropped() -> u64 {
    recorder().lock().map(|r| r.dropped).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global; tests touching enable/disable or
    /// capacity serialize on this.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn shrink_capacity(cap: usize) {
        let mut rec = recorder().lock().unwrap();
        rec.capacity = cap;
        while rec.ring.len() > cap {
            rec.ring.pop_front();
            rec.dropped += 1;
        }
    }

    #[test]
    fn disabled_span_is_inert() {
        let _g = test_lock();
        disable();
        let before = buffered();
        {
            let _s = span("noop").arg("k", 1);
        }
        event("noop", &[("k", &2)]);
        assert_eq!(buffered(), before);
    }

    #[test]
    fn enabled_span_records_complete_event() {
        let _g = test_lock();
        enable();
        {
            let _s = span("unit_test_span").arg("lease", 7).arg("job", "echo@2");
        }
        event("unit_test_event", &[("n", &3)]);
        complete_span(
            "unit_test_late",
            now_us().saturating_sub(50),
            &[("lease", &7)],
        );
        disable();
        let json = dump_json();
        assert!(json.contains("\"name\":\"unit_test_span\""));
        assert!(json.contains("\"lease\":\"7\""));
        assert!(json.contains("\"job\":\"echo@2\""));
        assert!(json.contains("\"name\":\"unit_test_event\""));
        assert!(json.contains("\"name\":\"unit_test_late\""));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn ring_drops_oldest() {
        let _g = test_lock();
        shrink_capacity(8);
        enable();
        for _ in 0..20 {
            event("ring_fill", &[]);
        }
        disable();
        assert!(buffered() <= 8);
        assert!(dropped() >= 12);
        shrink_capacity(DEFAULT_CAPACITY);
    }

    #[test]
    fn json_escapes_values() {
        let _g = test_lock();
        enable();
        event("esc", &[("v", &"a\"b\\c\nd")]);
        disable();
        let json = dump_json();
        assert!(json.contains("a\\\"b\\\\c\\nd"));
    }
}
