//! Property tests hammering the metrics registry from concurrent
//! threads.
//!
//! Invariants:
//!
//! 1. Counter totals are exact: after every thread joins, the registry
//!    value equals the sum of everything the threads added — sharding
//!    loses nothing.
//! 2. Snapshots taken *while* threads hammer are torn-free: every
//!    rendered line parses, per-counter values never move backwards
//!    between consecutive snapshots, and histogram bucket sums never
//!    exceed a later-read count by more than what is still in flight.

use overify_obs::metrics::{self, Sample};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn counter_value(name: &str) -> u64 {
    metrics::snapshot()
        .into_iter()
        .find(|&(n, _)| n == name)
        .and_then(|(_, s)| match s {
            Sample::Counter(v) => Some(v),
            _ => None,
        })
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_counter_totals_are_exact(
        threads in 2usize..8,
        per_thread in proptest::collection::vec(1u64..2_000, 2..8),
    ) {
        let counter = metrics::counter("prop_registry_hammer_total");
        let before = counter.value();
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let amounts = per_thread.clone();
                std::thread::spawn(move || {
                    let c = metrics::counter("prop_registry_hammer_total");
                    for &n in &amounts {
                        c.add(n);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected: u64 = per_thread.iter().sum::<u64>() * threads as u64;
        prop_assert_eq!(counter.value() - before, expected);
        // The snapshot agrees with the handle.
        prop_assert_eq!(counter_value("prop_registry_hammer_total"), counter.value());
    }

    #[test]
    fn snapshots_under_fire_are_torn_free(
        threads in 2usize..6,
        rounds in 50usize..400,
    ) {
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..threads)
            .map(|t| {
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let c = metrics::counter("prop_registry_torn_counter");
                    let h = metrics::histogram("prop_registry_torn_hist");
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        c.inc();
                        h.observe(i.wrapping_mul(t as u64 + 1) % 10_000);
                        i += 1;
                    }
                })
            })
            .collect();

        let mut last_counter = 0u64;
        for _ in 0..rounds {
            let text = metrics::render();
            for line in text.lines() {
                prop_assert!(
                    line.starts_with("# TYPE ") || line.split_whitespace().count() == 2,
                    "torn exposition line: {:?}", line
                );
            }
            // Counters only move forward between consecutive snapshots.
            let v = counter_value("prop_registry_torn_counter");
            prop_assert!(v >= last_counter, "counter went backwards: {} < {}", v, last_counter);
            last_counter = v;
            // The histogram's cumulative +Inf bucket equals its _count
            // line within the same snapshot (one consistent read).
            let inf = text.lines()
                .find(|l| l.starts_with("prop_registry_torn_hist_bucket{le=\"+Inf\"}"))
                .map(|l| l.split_whitespace().nth(1).unwrap().parse::<u64>().unwrap());
            let count = text.lines()
                .find(|l| l.starts_with("prop_registry_torn_hist_count"))
                .map(|l| l.split_whitespace().nth(1).unwrap().parse::<u64>().unwrap());
            prop_assert_eq!(inf, count);
        }

        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }
}
