//! Robustness: the front-end must reject malformed input with an error —
//! never a panic — and mutation of valid programs must not break that.

use proptest::prelude::*;

const SEED_PROGRAMS: &[&str] = &[
    "int f(int a, int b) { return a + b * 2; }",
    "int g(unsigned char *s, int n) { int k = 0; while (s[k]) k++; return k; }",
    "const char t[3] = {1,2,3}; int h() { return t[0]; }",
    "int r(int x) { if (x > 0) { return -x; } else { return x; } }",
    "long q(long v) { do { v /= 2; } while (v > 10); return v; }",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Truncating a valid program anywhere must produce Ok or Err, never a
    /// panic.
    #[test]
    fn truncated_programs_never_panic(idx in 0usize..5, cut in 0usize..200) {
        let src = SEED_PROGRAMS[idx];
        let cut = cut.min(src.len());
        // Cut on a char boundary (sources are ASCII).
        let _ = overify_lang::compile(&src[..cut]);
    }

    /// Splicing random bytes into a valid program must not panic the lexer
    /// or parser.
    #[test]
    fn mutated_programs_never_panic(
        idx in 0usize..5,
        pos in 0usize..200,
        junk in proptest::collection::vec(32u8..127, 1..12),
    ) {
        let src = SEED_PROGRAMS[idx];
        let pos = pos.min(src.len());
        let mut mutated = String::new();
        mutated.push_str(&src[..pos]);
        mutated.push_str(std::str::from_utf8(&junk).unwrap());
        mutated.push_str(&src[pos..]);
        let _ = overify_lang::compile(&mutated);
    }

    /// Random ASCII soup must not panic.
    #[test]
    fn random_soup_never_panics(soup in "[ -~]{0,120}") {
        let _ = overify_lang::compile(&soup);
    }
}

// The IR parser gets the same treatment.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ir_parser_never_panics(soup in "[ -~\n]{0,160}") {
        let _ = overify_ir::parse_module(&soup);
    }

    #[test]
    fn truncated_ir_never_panics(cut in 0usize..300) {
        let src = r#"
        global @tab 4 const x"01020304"
        func @f(%a: i32) -> i32 {
        entry:
          %b = add i32 %a, 1
          condbr %c, t, e
        t:
          %c = icmp eq i32 %b, 3
          ret i32 1
        e:
          ret i32 0
        }
        "#;
        let cut = cut.min(src.len());
        if src.is_char_boundary(cut) {
            let _ = overify_ir::parse_module(&src[..cut]);
        }
    }
}
