//! End-to-end front-end tests: MiniC source compiles to verified IR with the
//! expected structure.

use overify_ir::{InstKind, Terminator};
use overify_lang::compile;

#[test]
fn compiles_listing1_wc() {
    let src = r#"
        int isspace(int c);
        int isalpha(int c);
        int wc(unsigned char *str, int any) {
            int res = 0;
            int new_word = 1;
            for (unsigned char *p = str; *p; ++p) {
                if (isspace(*p) || (any && !isalpha(*p))) {
                    new_word = 1;
                } else {
                    if (new_word) {
                        ++res;
                        new_word = 0;
                    }
                }
            }
            return res;
        }
    "#;
    let m = compile(src).unwrap();
    let f = m.function("wc").unwrap();
    assert!(!f.is_declaration);
    // The unoptimized lowering must branch for the short-circuit operators:
    // count conditional branches.
    let condbrs = f
        .blocks
        .iter()
        .filter(|b| matches!(b.term, Terminator::CondBr { .. }))
        .count();
    assert!(
        condbrs >= 5,
        "expected branchy -O0 lowering, got {condbrs} condbrs"
    );
    // isspace/isalpha stay as calls for the linker.
    assert!(m.function("isspace").unwrap().is_declaration);
}

#[test]
fn globals_and_string_literals() {
    let src = r#"
        const char tab[4] = {1, 2, 3, 4};
        char buf[8];
        int n = 42;
        char *greet() { return "hi"; }
    "#;
    let m = compile(src).unwrap();
    assert_eq!(m.globals.len(), 4); // tab, buf, n, "hi"
    let (_, tab) = m.global("tab").unwrap();
    assert!(tab.is_const);
    assert_eq!(tab.init, vec![1, 2, 3, 4]);
    let (_, n) = m.global("n").unwrap();
    assert_eq!(n.init, vec![42, 0, 0, 0]);
    let (_, s) = m.global("str.0").unwrap();
    assert_eq!(s.init, vec![b'h', b'i', 0]);
}

#[test]
fn arithmetic_conversions_pick_signedness() {
    let src = r#"
        int f(unsigned int a, int b) { return a / b; }
        int g(int a, int b) { return a / b; }
        int h(unsigned char c) { return c >> 1; }
    "#;
    let m = compile(src).unwrap();
    let count_op = |fname: &str, op: overify_ir::BinOp| {
        m.function(fname)
            .unwrap()
            .insts
            .iter()
            .filter(|i| matches!(&i.kind, InstKind::Bin { op: o, .. } if *o == op))
            .count()
    };
    // unsigned / int -> unsigned division
    assert_eq!(count_op("f", overify_ir::BinOp::UDiv), 1);
    // int / int -> signed division
    assert_eq!(count_op("g", overify_ir::BinOp::SDiv), 1);
    // char promotes to int, so int (signed) shift
    assert_eq!(count_op("h", overify_ir::BinOp::AShr), 1);
}

#[test]
fn pointer_arithmetic_scales() {
    let src = "int f(int *p, int i) { return p[i]; }";
    let m = compile(src).unwrap();
    let f = m.function("f").unwrap();
    // Must contain a multiply by 4 feeding a ptradd.
    let has_scale = f.insts.iter().any(|i| {
        matches!(&i.kind, InstKind::Bin { op: overify_ir::BinOp::Mul, rhs, .. }
            if rhs.is_const_bits(4))
    });
    assert!(has_scale, "index must be scaled by element size");
    assert!(f
        .insts
        .iter()
        .any(|i| matches!(&i.kind, InstKind::PtrAdd { .. })));
}

#[test]
fn builtins_map_to_intrinsics() {
    let src = r#"
        int run() {
            char buf[4];
            __sym_input(buf, 4);
            __assume(buf[0] > 0);
            __assert(buf[0] != 13);
            putchar(buf[0]);
            return 0;
        }
    "#;
    let m = compile(src).unwrap();
    let f = m.function("run").unwrap();
    let intrinsics: Vec<&str> = f
        .insts
        .iter()
        .filter_map(|i| match &i.kind {
            InstKind::Call {
                callee: overify_ir::Callee::Intrinsic(x),
                ..
            } => Some(x.name()),
            _ => None,
        })
        .collect();
    assert_eq!(intrinsics, vec!["sym_input", "assume", "assert", "putchar"]);
}

#[test]
fn control_flow_statements() {
    let src = r#"
        int collatz_len(int n) {
            int len = 0;
            while (n != 1) {
                if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
                len++;
                if (len > 1000) break;
            }
            return len;
        }
        int sum_do(int n) {
            int s = 0;
            do { s += n; n--; } while (n > 0);
            return s;
        }
        int skip(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i == 3) continue;
                s += i;
            }
            return s;
        }
    "#;
    compile(src).unwrap();
}

#[test]
fn ternary_and_logical_results() {
    let src = r#"
        int max3(int a, int b, int c) {
            int m = a > b ? a : b;
            return m > c ? m : c;
        }
        int both(int a, int b) { return a && b; }
        int either(int a, int b) { return a || b; }
    "#;
    compile(src).unwrap();
}

#[test]
fn rejects_type_errors() {
    assert!(compile("int f(int *p) { return p * 2; }").is_err());
    assert!(compile("int f() { return g(); }").is_err());
    assert!(compile("int f(int a) { return a; } int f(int a) { return a; }").is_err());
    assert!(compile("void f() { return 1; }").is_err());
    assert!(compile("int f() { return; }").is_err());
    assert!(compile("int f() { break; }").is_err());
    assert!(compile("int f(char c) { int *p; p = c; return 0; }").is_err());
}

#[test]
fn rejects_builtin_redefinition() {
    assert!(compile("int putchar(int c) { return c; }").is_err());
}

#[test]
fn sizeof_values() {
    let src = r#"
        long sz() { return sizeof(int) + sizeof(char) + sizeof(long) + sizeof(int*); }
    "#;
    let m = compile(src).unwrap();
    // 4 + 1 + 8 + 8 = 21; the adds are instructions, just check it compiles
    // and the constants are present.
    let f = m.function("sz").unwrap();
    assert!(!f.is_declaration);
}

#[test]
fn multi_declarator_locals() {
    let src = "int f() { int a = 1, b = 2, *p = &a; return a + b + *p; }";
    compile(src).unwrap();
}

#[test]
fn nested_scopes_shadow() {
    let src = r#"
        int f(int x) {
            int y = 1;
            { int y = 2; x += y; }
            return x + y;
        }
    "#;
    compile(src).unwrap();
}

#[test]
fn local_array_initializers() {
    let src = r#"
        int f() {
            char s[] = "ab";
            int v[3] = {1, 2, 3};
            return s[0] + v[2];
        }
    "#;
    compile(src).unwrap();
}

#[test]
fn print_parse_round_trip_of_lowered_module() {
    let src = r#"
        int fact(int n) {
            int r = 1;
            while (n > 1) { r *= n; n--; }
            return r;
        }
    "#;
    let m = compile(src).unwrap();
    let p1 = overify_ir::print::print_module(&m);
    let m2 = overify_ir::parse_module(&p1).unwrap();
    let p2 = overify_ir::print::print_module(&m2);
    let m3 = overify_ir::parse_module(&p2).unwrap();
    assert_eq!(p2, overify_ir::print::print_module(&m3));
    overify_ir::verify_module(&m2).unwrap();
}
