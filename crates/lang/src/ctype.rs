//! MiniC's source-level type system.
//!
//! The IR is signedness-free (operations carry signedness instead), so the
//! front-end tracks signedness here and picks `sdiv`/`udiv`, `slt`/`ult`,
//! `sext`/`zext` during lowering.

use overify_ir::Ty;

/// A MiniC type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CType {
    Void,
    /// Integer with IR width and signedness. `char` is unsigned 8-bit in
    /// MiniC (like `unsigned char` in C), which matches Listing 1's use of
    /// `unsigned char *`.
    Int {
        ty: Ty,
        signed: bool,
    },
    /// Pointer to an element type.
    Ptr(Box<CType>),
    /// Fixed-size array; decays to a pointer in expressions.
    Array(Box<CType>, u64),
}

impl CType {
    /// `int` — the promoted arithmetic type.
    pub fn int() -> CType {
        CType::Int {
            ty: Ty::I32,
            signed: true,
        }
    }

    /// `unsigned int`.
    pub fn uint() -> CType {
        CType::Int {
            ty: Ty::I32,
            signed: false,
        }
    }

    /// `char` (unsigned 8-bit).
    pub fn char_() -> CType {
        CType::Int {
            ty: Ty::I8,
            signed: false,
        }
    }

    /// `long` (signed 64-bit).
    pub fn long() -> CType {
        CType::Int {
            ty: Ty::I64,
            signed: true,
        }
    }

    /// `unsigned long`.
    pub fn ulong() -> CType {
        CType::Int {
            ty: Ty::I64,
            signed: false,
        }
    }

    /// Pointer to `self`.
    pub fn ptr_to(self) -> CType {
        CType::Ptr(Box::new(self))
    }

    /// The IR type used to hold a value of this type in a register.
    pub fn ir_ty(&self) -> Ty {
        match self {
            CType::Void => Ty::Void,
            CType::Int { ty, .. } => *ty,
            CType::Ptr(_) | CType::Array(_, _) => Ty::Ptr,
        }
    }

    /// Size of a value of this type in memory, in bytes.
    pub fn size(&self) -> u64 {
        match self {
            CType::Void => 0,
            CType::Int { ty, .. } => ty.bytes(),
            CType::Ptr(_) => 8,
            CType::Array(elem, n) => elem.size() * n,
        }
    }

    /// True for integer types.
    pub fn is_integer(&self) -> bool {
        matches!(self, CType::Int { .. })
    }

    /// True for pointer (or array, which decays) types.
    pub fn is_pointer_like(&self) -> bool {
        matches!(self, CType::Ptr(_) | CType::Array(_, _))
    }

    /// Signedness; pointers compare unsigned.
    pub fn is_signed(&self) -> bool {
        matches!(self, CType::Int { signed: true, .. })
    }

    /// Element type of a pointer or array.
    pub fn pointee(&self) -> Option<&CType> {
        match self {
            CType::Ptr(e) | CType::Array(e, _) => Some(e),
            _ => None,
        }
    }

    /// The type after array-to-pointer decay.
    pub fn decayed(&self) -> CType {
        match self {
            CType::Array(e, _) => CType::Ptr(e.clone()),
            other => other.clone(),
        }
    }

    /// Integer promotion: types narrower than `int` promote to `int`.
    pub fn promoted(&self) -> CType {
        match self {
            CType::Int { ty, .. } if ty.bits() < 32 => CType::int(),
            other => other.clone(),
        }
    }

    /// The usual arithmetic conversions for a binary operator applied to
    /// `self` and `other` (both integers).
    pub fn common_with(&self, other: &CType) -> CType {
        let a = self.promoted();
        let b = other.promoted();
        match (&a, &b) {
            (CType::Int { ty: ta, signed: sa }, CType::Int { ty: tb, signed: sb }) => {
                if ta.bits() > tb.bits() {
                    a.clone()
                } else if tb.bits() > ta.bits() {
                    b.clone()
                } else {
                    // Same width: unsigned wins.
                    CType::Int {
                        ty: *ta,
                        signed: *sa && *sb,
                    }
                }
            }
            _ => a,
        }
    }
}

impl std::fmt::Display for CType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CType::Void => write!(f, "void"),
            CType::Int { ty, signed } => {
                let base = match ty {
                    Ty::I8 => "char",
                    Ty::I16 => "short",
                    Ty::I32 => "int",
                    Ty::I64 => "long",
                    Ty::I1 => "_Bool",
                    _ => "?",
                };
                if *signed || *ty == Ty::I8 {
                    // `char` is printed bare even though it is unsigned.
                    if !*signed && *ty != Ty::I8 {
                        write!(f, "unsigned {base}")
                    } else {
                        write!(f, "{base}")
                    }
                } else {
                    write!(f, "unsigned {base}")
                }
            }
            CType::Ptr(e) => write!(f, "{e}*"),
            CType::Array(e, n) => write!(f, "{e}[{n}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(CType::char_().size(), 1);
        assert_eq!(CType::int().size(), 4);
        assert_eq!(CType::int().ptr_to().size(), 8);
        assert_eq!(CType::Array(Box::new(CType::int()), 10).size(), 40);
    }

    #[test]
    fn promotions() {
        assert_eq!(CType::char_().promoted(), CType::int());
        assert_eq!(CType::long().promoted(), CType::long());
    }

    #[test]
    fn common_type_rules() {
        // char + int -> int
        assert_eq!(CType::char_().common_with(&CType::int()), CType::int());
        // int + unsigned -> unsigned
        assert_eq!(CType::int().common_with(&CType::uint()), CType::uint());
        // int + long -> long
        assert_eq!(CType::int().common_with(&CType::long()), CType::long());
    }

    #[test]
    fn decay() {
        let arr = CType::Array(Box::new(CType::char_()), 4);
        assert_eq!(arr.decayed(), CType::char_().ptr_to());
        assert_eq!(arr.ir_ty(), Ty::Ptr);
    }
}
