//! Lowering from the MiniC AST to overify IR.
//!
//! The translation is intentionally naive, mirroring `clang -O0`:
//!
//! * every local variable and parameter lives in an `alloca`,
//! * `&&`, `||` and `?:` become control flow through a temporary,
//! * no folding beyond what C requires for constant initializers.
//!
//! This gives the `-O0` baseline its authentic path structure; all cleverness
//! lives in `overify-opt`.

use crate::ast::*;
use crate::ctype::CType;
use crate::CompileError;
use overify_ir::{
    BinOp, BlockId, CastOp, CmpPred, Const, Cursor, Function, Global, GlobalId, Intrinsic, Module,
    Operand, Terminator, Ty,
};
use std::collections::HashMap;

type Result<T> = std::result::Result<T, CompileError>;

fn err(line: usize, msg: impl Into<String>) -> CompileError {
    CompileError {
        line,
        msg: msg.into(),
    }
}

/// Names reserved for builtins; user functions may not shadow them.
const BUILTINS: &[&str] = &[
    "__sym_input",
    "__assume",
    "__assert",
    "putchar",
    "malloc",
    "abort",
];

/// Lowers a parsed program to an IR module.
pub fn lower_program(prog: &Program) -> Result<Module> {
    let mut lw = Lowerer {
        module: Module::new(),
        sigs: HashMap::new(),
        globals: HashMap::new(),
        str_lits: HashMap::new(),
    };

    // Pass 1: collect signatures and check consistency.
    for item in &prog.items {
        let proto = match item {
            Item::Func(f) => &f.proto,
            Item::Proto(p) => p,
            Item::Global(_) => continue,
        };
        if BUILTINS.contains(&proto.name.as_str()) {
            return Err(err(
                proto.line,
                format!("`{}` is a builtin and cannot be redeclared", proto.name),
            ));
        }
        let sig = (
            proto
                .params
                .iter()
                .map(|(t, _)| t.clone())
                .collect::<Vec<_>>(),
            proto.ret.clone(),
        );
        if let Some(prev) = lw.sigs.get(&proto.name) {
            if *prev != sig {
                return Err(err(
                    proto.line,
                    format!("conflicting declarations of `{}`", proto.name),
                ));
            }
        } else {
            lw.sigs.insert(proto.name.clone(), sig);
        }
    }

    // Pass 2: globals (so functions can reference them).
    for item in &prog.items {
        if let Item::Global(g) = item {
            lw.lower_global(g)?;
        }
    }

    // Pass 3: function bodies.
    let mut defined: Vec<String> = Vec::new();
    for item in &prog.items {
        if let Item::Func(def) = item {
            if defined.contains(&def.proto.name) {
                return Err(err(
                    def.proto.line,
                    format!("duplicate definition of `{}`", def.proto.name),
                ));
            }
            defined.push(def.proto.name.clone());
            let f = lw.lower_function(def)?;
            lw.module.functions.push(f);
        }
    }

    // Remaining prototypes become declarations (resolved at link time).
    for item in &prog.items {
        if let Item::Proto(p) = item {
            if lw.module.function(&p.name).is_none() {
                let tys: Vec<Ty> = p.params.iter().map(|(t, _)| t.ir_ty()).collect();
                lw.module
                    .functions
                    .push(Function::declare(p.name.clone(), &tys, p.ret.ir_ty()));
            }
        }
    }

    Ok(lw.module)
}

/// A typed rvalue.
#[derive(Clone, Debug)]
struct RV {
    op: Operand,
    cty: CType,
}

/// A resolved lvalue: an address plus the type stored there.
#[derive(Clone, Debug)]
struct LV {
    addr: Operand,
    cty: CType,
}

struct Lowerer {
    module: Module,
    sigs: HashMap<String, (Vec<CType>, CType)>,
    globals: HashMap<String, (GlobalId, CType)>,
    str_lits: HashMap<Vec<u8>, GlobalId>,
}

impl Lowerer {
    fn lower_global(&mut self, g: &GlobalDef) -> Result<()> {
        if self.globals.contains_key(&g.name) {
            return Err(err(g.line, format!("duplicate global `{}`", g.name)));
        }
        let size = g.cty.size();
        if size == 0 {
            return Err(err(g.line, "global of size zero"));
        }
        let init = match &g.init {
            None => Vec::new(),
            Some(init) => encode_initializer(&g.cty, init, g.line)?,
        };
        let id = self.module.add_global(Global {
            name: g.name.clone(),
            size,
            init,
            is_const: g.is_const,
        });
        self.globals.insert(g.name.clone(), (id, g.cty.clone()));
        Ok(())
    }

    /// Interns a string literal as an anonymous constant global.
    fn intern_str(&mut self, bytes: &[u8]) -> GlobalId {
        if let Some(&id) = self.str_lits.get(bytes) {
            return id;
        }
        let mut data = bytes.to_vec();
        data.push(0);
        let id = self.module.add_global(Global {
            name: format!("str.{}", self.str_lits.len()),
            size: data.len() as u64,
            init: data,
            is_const: true,
        });
        self.str_lits.insert(bytes.to_vec(), id);
        id
    }

    fn lower_function(&mut self, def: &FuncDef) -> Result<Function> {
        let proto = &def.proto;
        let param_tys: Vec<Ty> = proto.params.iter().map(|(t, _)| t.ir_ty()).collect();
        let mut f = Function::new(proto.name.clone(), &param_tys, proto.ret.ir_ty());
        for (i, (_, pname)) in proto.params.iter().enumerate() {
            f.values[f.params[i].index()].name = Some(pname.clone());
        }

        let mut fl = FnLower {
            lw: self,
            f,
            block: overify_ir::value::ENTRY_BLOCK,
            scopes: vec![HashMap::new()],
            breaks: Vec::new(),
            continues: Vec::new(),
            ret: proto.ret.clone(),
            terminated: false,
        };

        // Spill parameters to allocas (promoted later by mem2reg).
        for (i, (pty, pname)) in proto.params.iter().enumerate() {
            let pv = Operand::Value(fl.f.params[i]);
            let addr = fl.cursor().alloca(pty.size().max(1));
            fl.cursor().store(pty.ir_ty(), pv, addr);
            fl.scopes.last_mut().unwrap().insert(
                pname.clone(),
                LV {
                    addr,
                    cty: pty.clone(),
                },
            );
        }

        fl.lower_stmts(&def.body)?;

        // Implicit return for functions that fall off the end.
        if !fl.terminated {
            let term = match proto.ret {
                CType::Void => Terminator::Ret { value: None },
                ref r => Terminator::Ret {
                    value: Some(Operand::Const(Const::zero(r.ir_ty()))),
                },
            };
            fl.f.set_term(fl.block, term);
        }
        Ok(fl.f)
    }
}

/// Encodes a global initializer to bytes (little-endian elements).
fn encode_initializer(cty: &CType, init: &Initializer, line: usize) -> Result<Vec<u8>> {
    match (cty, init) {
        (CType::Array(elem, n), Initializer::Str(bytes)) => {
            if elem.size() != 1 {
                return Err(err(line, "string initializer requires a char array"));
            }
            if bytes.len() as u64 + 1 > *n {
                return Err(err(line, "string initializer longer than array"));
            }
            let mut out = bytes.clone();
            out.push(0);
            Ok(out)
        }
        (CType::Array(elem, n), Initializer::List(items)) => {
            if items.len() as u64 > *n {
                return Err(err(line, "too many initializer elements"));
            }
            let esize = elem.size() as usize;
            let mut out = Vec::with_capacity(items.len() * esize);
            for item in items {
                let v = eval_const_expr(item)?;
                out.extend_from_slice(&(v as u64).to_le_bytes()[..esize]);
            }
            Ok(out)
        }
        (CType::Int { ty, .. }, Initializer::Expr(e)) => {
            let v = eval_const_expr(e)?;
            Ok((v as u64).to_le_bytes()[..ty.bytes() as usize].to_vec())
        }
        _ => Err(err(line, "unsupported global initializer form")),
    }
}

/// Evaluates a constant expression (for global initializers).
fn eval_const_expr(e: &Expr) -> Result<i64> {
    match e {
        Expr::IntLit { value, .. } => Ok(*value),
        Expr::Unary { op, expr, .. } => {
            let v = eval_const_expr(expr)?;
            Ok(match op {
                UnaryOp::Neg => v.wrapping_neg(),
                UnaryOp::Not => !v,
                UnaryOp::LogicalNot => (v == 0) as i64,
            })
        }
        Expr::Binary { op, lhs, rhs, line } => {
            let a = eval_const_expr(lhs)?;
            let b = eval_const_expr(rhs)?;
            Ok(match op {
                BinaryOp::Add => a.wrapping_add(b),
                BinaryOp::Sub => a.wrapping_sub(b),
                BinaryOp::Mul => a.wrapping_mul(b),
                BinaryOp::Div => {
                    if b == 0 {
                        return Err(err(*line, "division by zero in constant expression"));
                    }
                    a.wrapping_div(b)
                }
                BinaryOp::Rem => {
                    if b == 0 {
                        return Err(err(*line, "remainder by zero in constant expression"));
                    }
                    a.wrapping_rem(b)
                }
                BinaryOp::And => a & b,
                BinaryOp::Or => a | b,
                BinaryOp::Xor => a ^ b,
                BinaryOp::Shl => a.wrapping_shl(b as u32),
                BinaryOp::Shr => a.wrapping_shr(b as u32),
                BinaryOp::Eq => (a == b) as i64,
                BinaryOp::Ne => (a != b) as i64,
                BinaryOp::Lt => (a < b) as i64,
                BinaryOp::Le => (a <= b) as i64,
                BinaryOp::Gt => (a > b) as i64,
                BinaryOp::Ge => (a >= b) as i64,
            })
        }
        Expr::SizeOf { ty, .. } => Ok(ty.size() as i64),
        Expr::Cast { expr, .. } => eval_const_expr(expr),
        other => Err(err(
            other.line(),
            "expression is not constant (global initializers must be)",
        )),
    }
}

struct FnLower<'a> {
    lw: &'a mut Lowerer,
    f: Function,
    block: BlockId,
    scopes: Vec<HashMap<String, LV>>,
    breaks: Vec<BlockId>,
    continues: Vec<BlockId>,
    ret: CType,
    terminated: bool,
}

impl<'a> FnLower<'a> {
    fn cursor(&mut self) -> Cursor<'_> {
        Cursor {
            func: &mut self.f,
            block: self.block,
        }
    }

    /// Switches emission to `b`.
    fn move_to(&mut self, b: BlockId) {
        self.block = b;
        self.terminated = false;
    }

    /// Ensures the current block is open, diverting trailing dead code into a
    /// fresh unreachable block.
    fn ensure_open(&mut self) {
        if self.terminated {
            let dead = self.f.add_block("dead");
            self.block = dead;
            self.terminated = false;
        }
    }

    fn lookup(&self, name: &str) -> Option<&LV> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<()> {
        for s in stmts {
            self.lower_stmt(s)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<()> {
        match s {
            Stmt::Block(body) => {
                self.scopes.push(HashMap::new());
                let r = self.lower_stmts(body);
                self.scopes.pop();
                r
            }
            Stmt::Decl { decls, line } => {
                for (cty, name, init) in decls {
                    self.lower_local_decl(cty, name, init.as_ref(), *line)?;
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.ensure_open();
                self.lower_expr(e)?;
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.ensure_open();
                let c = self.lower_to_bool(cond)?;
                let then_bb = self.f.add_block("if.then");
                let else_bb = self.f.add_block("if.else");
                let merge = self.f.add_block("if.end");
                self.cursor().condbr(c, then_bb, else_bb);

                self.move_to(then_bb);
                self.scopes.push(HashMap::new());
                self.lower_stmts(then_body)?;
                self.scopes.pop();
                if !self.terminated {
                    self.cursor().br(merge);
                }

                self.move_to(else_bb);
                self.scopes.push(HashMap::new());
                self.lower_stmts(else_body)?;
                self.scopes.pop();
                if !self.terminated {
                    self.cursor().br(merge);
                }

                self.move_to(merge);
                Ok(())
            }
            Stmt::While { cond, body } => {
                self.ensure_open();
                let cond_bb = self.f.add_block("while.cond");
                let body_bb = self.f.add_block("while.body");
                let exit_bb = self.f.add_block("while.end");
                self.cursor().br(cond_bb);

                self.move_to(cond_bb);
                let c = self.lower_to_bool(cond)?;
                self.cursor().condbr(c, body_bb, exit_bb);

                self.move_to(body_bb);
                self.breaks.push(exit_bb);
                self.continues.push(cond_bb);
                self.scopes.push(HashMap::new());
                self.lower_stmts(body)?;
                self.scopes.pop();
                self.breaks.pop();
                self.continues.pop();
                if !self.terminated {
                    self.cursor().br(cond_bb);
                }

                self.move_to(exit_bb);
                Ok(())
            }
            Stmt::DoWhile { body, cond } => {
                self.ensure_open();
                let body_bb = self.f.add_block("do.body");
                let cond_bb = self.f.add_block("do.cond");
                let exit_bb = self.f.add_block("do.end");
                self.cursor().br(body_bb);

                self.move_to(body_bb);
                self.breaks.push(exit_bb);
                self.continues.push(cond_bb);
                self.scopes.push(HashMap::new());
                self.lower_stmts(body)?;
                self.scopes.pop();
                self.breaks.pop();
                self.continues.pop();
                if !self.terminated {
                    self.cursor().br(cond_bb);
                }

                self.move_to(cond_bb);
                let c = self.lower_to_bool(cond)?;
                self.cursor().condbr(c, body_bb, exit_bb);

                self.move_to(exit_bb);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.ensure_open();
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.lower_stmt(init)?;
                }
                let cond_bb = self.f.add_block("for.cond");
                let body_bb = self.f.add_block("for.body");
                let step_bb = self.f.add_block("for.step");
                let exit_bb = self.f.add_block("for.end");
                self.cursor().br(cond_bb);

                self.move_to(cond_bb);
                match cond {
                    Some(c) => {
                        let cv = self.lower_to_bool(c)?;
                        self.cursor().condbr(cv, body_bb, exit_bb);
                    }
                    None => self.cursor().br(body_bb),
                }

                self.move_to(body_bb);
                self.breaks.push(exit_bb);
                self.continues.push(step_bb);
                self.scopes.push(HashMap::new());
                self.lower_stmts(body)?;
                self.scopes.pop();
                self.breaks.pop();
                self.continues.pop();
                if !self.terminated {
                    self.cursor().br(step_bb);
                }

                self.move_to(step_bb);
                if let Some(step) = step {
                    self.lower_expr(step)?;
                }
                self.cursor().br(cond_bb);

                self.scopes.pop();
                self.move_to(exit_bb);
                Ok(())
            }
            Stmt::Break { line } => {
                self.ensure_open();
                let target = *self
                    .breaks
                    .last()
                    .ok_or_else(|| err(*line, "`break` outside of a loop"))?;
                self.cursor().br(target);
                self.terminated = true;
                Ok(())
            }
            Stmt::Continue { line } => {
                self.ensure_open();
                let target = *self
                    .continues
                    .last()
                    .ok_or_else(|| err(*line, "`continue` outside of a loop"))?;
                self.cursor().br(target);
                self.terminated = true;
                Ok(())
            }
            Stmt::Return { value, line } => {
                self.ensure_open();
                let term = match (value, &self.ret) {
                    (None, CType::Void) => Terminator::Ret { value: None },
                    (Some(_), CType::Void) => {
                        return Err(err(*line, "void function returns a value"))
                    }
                    (None, _) => return Err(err(*line, "non-void function returns no value")),
                    (Some(e), ret) => {
                        let ret = ret.clone();
                        let rv = self.lower_expr(e)?;
                        let rv = self.convert(rv, &ret, *line)?;
                        Terminator::Ret { value: Some(rv.op) }
                    }
                };
                self.f.set_term(self.block, term);
                self.terminated = true;
                Ok(())
            }
        }
    }

    fn lower_local_decl(
        &mut self,
        cty: &CType,
        name: &str,
        init: Option<&Initializer>,
        line: usize,
    ) -> Result<()> {
        self.ensure_open();
        if cty.size() == 0 {
            return Err(err(line, "variable of size zero"));
        }
        let addr = self.cursor().alloca(cty.size());
        // Name the alloca's value after the variable for readable IR.
        if let Operand::Value(v) = addr {
            self.f.values[v.index()].name = Some(name.to_string());
        }
        self.scopes.last_mut().unwrap().insert(
            name.to_string(),
            LV {
                addr,
                cty: cty.clone(),
            },
        );
        match (init, cty) {
            (None, _) => {}
            (Some(Initializer::Expr(e)), _) => {
                let rv = self.lower_expr(e)?;
                let rv = self.convert(rv, cty, line)?;
                self.cursor().store(cty.ir_ty(), rv.op, addr);
            }
            (Some(Initializer::Str(bytes)), CType::Array(elem, n)) => {
                if elem.size() != 1 {
                    return Err(err(line, "string initializer requires a char array"));
                }
                if bytes.len() as u64 + 1 > *n {
                    return Err(err(line, "string longer than array"));
                }
                let mut data = bytes.clone();
                data.push(0);
                for (i, b) in data.iter().enumerate() {
                    let mut c = self.cursor();
                    let p = c.ptradd(addr, Operand::imm(Ty::I64, i as u64));
                    c.store(Ty::I8, Operand::imm(Ty::I8, *b as u64), p);
                }
            }
            (Some(Initializer::List(items)), CType::Array(elem, n)) => {
                if items.len() as u64 > *n {
                    return Err(err(line, "too many initializer elements"));
                }
                let elem = (**elem).clone();
                let esize = elem.size();
                for (i, item) in items.iter().enumerate() {
                    let rv = self.lower_expr(item)?;
                    let rv = self.convert(rv, &elem, line)?;
                    let mut c = self.cursor();
                    let p = c.ptradd(addr, Operand::imm(Ty::I64, i as u64 * esize));
                    c.store(elem.ir_ty(), rv.op, p);
                }
            }
            _ => return Err(err(line, "invalid initializer for this type")),
        }
        Ok(())
    }

    /// Lowers `e` and converts the result to `i1` truthiness.
    fn lower_to_bool(&mut self, e: &Expr) -> Result<Operand> {
        let rv = self.lower_expr(e)?;
        self.rv_to_bool(rv, e.line())
    }

    fn rv_to_bool(&mut self, rv: RV, line: usize) -> Result<Operand> {
        let cty = rv.cty.decayed();
        if cty.is_integer() {
            let ty = cty.ir_ty();
            Ok(self
                .cursor()
                .cmp(CmpPred::Ne, ty, rv.op, Operand::Const(Const::zero(ty))))
        } else if cty.is_pointer_like() {
            Ok(self.cursor().cmp(
                CmpPred::Ne,
                Ty::Ptr,
                rv.op,
                Operand::Const(Const::zero(Ty::Ptr)),
            ))
        } else {
            Err(err(line, "value has no truth value"))
        }
    }

    /// Converts an rvalue to `to` with C's implicit conversion rules.
    fn convert(&mut self, rv: RV, to: &CType, line: usize) -> Result<RV> {
        let from = rv.cty.decayed();
        let to = to.decayed();
        if from == to {
            return Ok(RV { op: rv.op, cty: to });
        }
        match (&from, &to) {
            (CType::Int { ty: ft, signed }, CType::Int { ty: tt, .. }) => {
                if ft == tt {
                    return Ok(RV { op: rv.op, cty: to });
                }
                // Fold constant conversions so literals stay literals.
                if let Operand::Const(c) = rv.op {
                    let op = if ft.bits() < tt.bits() {
                        if *signed {
                            CastOp::Sext
                        } else {
                            CastOp::Zext
                        }
                    } else {
                        CastOp::Trunc
                    };
                    let bits = overify_ir::fold::eval_cast(op, *ft, *tt, c.bits);
                    return Ok(RV {
                        op: Operand::Const(Const::new(*tt, bits)),
                        cty: to,
                    });
                }
                let op = if ft.bits() < tt.bits() {
                    let cast = if *signed { CastOp::Sext } else { CastOp::Zext };
                    self.cursor().cast(cast, *tt, rv.op)
                } else {
                    self.cursor().cast(CastOp::Trunc, *tt, rv.op)
                };
                Ok(RV { op, cty: to })
            }
            (CType::Ptr(_), CType::Ptr(_)) => Ok(RV { op: rv.op, cty: to }),
            // Integer literal 0 converts to a null pointer.
            (CType::Int { .. }, CType::Ptr(_)) => match rv.op {
                Operand::Const(c) if c.bits == 0 => Ok(RV {
                    op: Operand::Const(Const::zero(Ty::Ptr)),
                    cty: to,
                }),
                _ => Err(err(line, format!("cannot convert `{from}` to `{to}`"))),
            },
            _ => Err(err(line, format!("cannot convert `{from}` to `{to}`"))),
        }
    }

    /// Resolves an lvalue expression to an address.
    fn lower_lvalue(&mut self, e: &Expr) -> Result<LV> {
        match e {
            Expr::Ident { name, line } => {
                if let Some(lv) = self.lookup(name) {
                    return Ok(lv.clone());
                }
                if let Some((gid, cty)) = self.lw.globals.get(name).cloned() {
                    let addr = self.cursor().global_addr(gid);
                    return Ok(LV { addr, cty });
                }
                Err(err(*line, format!("unknown variable `{name}`")))
            }
            Expr::Deref { expr, line } => {
                let rv = self.lower_expr(expr)?;
                let cty = rv.cty.decayed();
                let pointee = cty
                    .pointee()
                    .ok_or_else(|| err(*line, "cannot dereference a non-pointer"))?
                    .clone();
                if pointee == CType::Void {
                    return Err(err(*line, "cannot dereference `void*`"));
                }
                Ok(LV {
                    addr: rv.op,
                    cty: pointee,
                })
            }
            Expr::Index { base, index, line } => {
                let base_rv = self.lower_expr(base)?;
                let cty = base_rv.cty.decayed();
                let elem = cty
                    .pointee()
                    .ok_or_else(|| err(*line, "indexing a non-pointer"))?
                    .clone();
                let idx = self.lower_expr(index)?;
                let off = self.scaled_offset(idx, elem.size(), *line)?;
                let addr = self.cursor().ptradd(base_rv.op, off);
                Ok(LV { addr, cty: elem })
            }
            other => Err(err(other.line(), "expression is not an lvalue")),
        }
    }

    /// Converts an index rvalue into an `i64` byte offset scaled by `size`.
    fn scaled_offset(&mut self, idx: RV, size: u64, line: usize) -> Result<Operand> {
        if !idx.cty.is_integer() {
            return Err(err(line, "array index must be an integer"));
        }
        let idx64 = self.convert(
            idx.clone(),
            &if idx.cty.is_signed() {
                CType::long()
            } else {
                CType::ulong()
            },
            line,
        )?;
        if size == 1 {
            return Ok(idx64.op);
        }
        Ok(self
            .cursor()
            .bin(BinOp::Mul, Ty::I64, idx64.op, Operand::imm(Ty::I64, size)))
    }

    /// Loads the value stored at `lv` (with array decay).
    fn load_lv(&mut self, lv: &LV) -> RV {
        match &lv.cty {
            CType::Array(elem, _) => RV {
                // Arrays decay: the "value" is the address of element 0.
                op: lv.addr,
                cty: CType::Ptr(elem.clone()),
            },
            cty => {
                let op = self.cursor().load(cty.ir_ty(), lv.addr);
                RV {
                    op,
                    cty: cty.clone(),
                }
            }
        }
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<RV> {
        match e {
            Expr::IntLit { value, .. } => {
                // Decimal literals are `int` when they fit, `long` otherwise.
                let cty = if *value >= i32::MIN as i64 && *value <= i32::MAX as i64 {
                    CType::int()
                } else {
                    CType::long()
                };
                Ok(RV {
                    op: Operand::Const(Const::new(cty.ir_ty(), *value as u64)),
                    cty,
                })
            }
            Expr::StrLit { bytes, .. } => {
                let gid = self.lw.intern_str(bytes);
                let op = self.cursor().global_addr(gid);
                Ok(RV {
                    op,
                    cty: CType::char_().ptr_to(),
                })
            }
            Expr::Ident { .. } | Expr::Deref { .. } | Expr::Index { .. } => {
                let lv = self.lower_lvalue(e)?;
                Ok(self.load_lv(&lv))
            }
            Expr::AddrOf { expr, line } => {
                let lv = self.lower_lvalue(expr)?;
                let pointee = match &lv.cty {
                    // `&arr` yields a pointer to the first element in MiniC.
                    CType::Array(elem, _) => (**elem).clone(),
                    other => other.clone(),
                };
                let _ = line;
                Ok(RV {
                    op: lv.addr,
                    cty: pointee.ptr_to(),
                })
            }
            Expr::Unary { op, expr, line } => self.lower_unary(*op, expr, *line),
            Expr::Binary { op, lhs, rhs, line } => self.lower_binary(*op, lhs, rhs, *line),
            Expr::Logical {
                and,
                lhs,
                rhs,
                line,
            } => self.lower_logical(*and, lhs, rhs, *line),
            Expr::Conditional {
                cond,
                then_expr,
                else_expr,
                line,
            } => self.lower_conditional(cond, then_expr, else_expr, *line),
            Expr::Assign {
                op,
                target,
                value,
                line,
            } => self.lower_assign(*op, target, value, *line),
            Expr::IncDec {
                inc,
                pre,
                target,
                line,
            } => self.lower_incdec(*inc, *pre, target, *line),
            Expr::Call { name, args, line } => self.lower_call(name, args, *line),
            Expr::Cast { to, expr, line } => {
                let rv = self.lower_expr(expr)?;
                if *to == CType::Void {
                    return Ok(RV {
                        op: Operand::imm(Ty::I32, 0),
                        cty: CType::Void,
                    });
                }
                self.convert(rv, to, *line)
            }
            Expr::SizeOf { ty, .. } => Ok(RV {
                op: Operand::Const(Const::new(Ty::I64, ty.size())),
                cty: CType::ulong(),
            }),
        }
    }

    fn lower_unary(&mut self, op: UnaryOp, expr: &Expr, line: usize) -> Result<RV> {
        match op {
            UnaryOp::LogicalNot => {
                let rv = self.lower_expr(expr)?;
                let b = self.rv_to_bool(rv, line)?;
                // `!x` == (x == 0): invert then widen to int.
                let inv =
                    self.cursor()
                        .bin(BinOp::Xor, Ty::I1, b, Operand::Const(Const::bool(true)));
                let op = self.cursor().cast(CastOp::Zext, Ty::I32, inv);
                Ok(RV {
                    op,
                    cty: CType::int(),
                })
            }
            UnaryOp::Neg | UnaryOp::Not => {
                let rv = self.lower_expr(expr)?;
                if !rv.cty.is_integer() {
                    return Err(err(line, "unary operator requires an integer"));
                }
                let cty = rv.cty.promoted();
                let rv = self.convert(rv, &cty, line)?;
                let ty = cty.ir_ty();
                // Fold on constants so `-1` is a literal, as C requires in
                // constant contexts.
                if let Operand::Const(c) = rv.op {
                    let bits = match op {
                        UnaryOp::Neg => (c.bits as i64).wrapping_neg() as u64,
                        _ => !c.bits,
                    };
                    return Ok(RV {
                        op: Operand::Const(Const::new(ty, bits)),
                        cty,
                    });
                }
                let out = match op {
                    UnaryOp::Neg => {
                        self.cursor()
                            .bin(BinOp::Sub, ty, Operand::Const(Const::zero(ty)), rv.op)
                    }
                    _ => self.cursor().bin(
                        BinOp::Xor,
                        ty,
                        rv.op,
                        Operand::Const(Const::new(ty, u64::MAX)),
                    ),
                };
                Ok(RV { op: out, cty })
            }
        }
    }

    fn lower_binary(&mut self, op: BinaryOp, lhs: &Expr, rhs: &Expr, line: usize) -> Result<RV> {
        let l = self.lower_expr(lhs)?;
        let r = self.lower_expr(rhs)?;
        self.lower_binary_rv(op, l, r, line)
    }

    fn lower_binary_rv(&mut self, op: BinaryOp, l: RV, r: RV, line: usize) -> Result<RV> {
        let lc = l.cty.decayed();
        let rc = r.cty.decayed();

        // Pointer arithmetic.
        if lc.is_pointer_like() && rc.is_integer() && matches!(op, BinaryOp::Add | BinaryOp::Sub) {
            let elem = lc.pointee().unwrap().clone();
            let mut off = self.scaled_offset(r, elem.size(), line)?;
            if op == BinaryOp::Sub {
                off = self.cursor().bin(
                    BinOp::Sub,
                    Ty::I64,
                    Operand::Const(Const::zero(Ty::I64)),
                    off,
                );
            }
            let out = self.cursor().ptradd(l.op, off);
            return Ok(RV { op: out, cty: lc });
        }
        if lc.is_integer() && rc.is_pointer_like() && op == BinaryOp::Add {
            return self.lower_binary_rv(op, r, l, line);
        }

        // Pointer comparisons (including against the literal 0).
        if op.is_comparison() && (lc.is_pointer_like() || rc.is_pointer_like()) {
            let lp = self.convert(l, &lc.clone().decayed(), line)?;
            let (lp, rp) = if lc.is_pointer_like() && rc.is_pointer_like() {
                (lp, r)
            } else if lc.is_pointer_like() {
                let rp = self.convert(r, &lc, line)?;
                (lp, rp)
            } else {
                let new_l = self.convert(lp, &rc, line)?;
                (new_l, r)
            };
            let pred = comparison_pred(op, false);
            let b = self.cursor().cmp(pred, Ty::Ptr, lp.op, rp.op);
            let out = self.cursor().cast(CastOp::Zext, Ty::I32, b);
            return Ok(RV {
                op: out,
                cty: CType::int(),
            });
        }

        if !lc.is_integer() || !rc.is_integer() {
            return Err(err(line, format!("invalid operands `{lc}` and `{rc}`")));
        }

        let common = lc.common_with(&rc);
        let lv = self.convert(l, &common, line)?;
        let rv = self.convert(r, &common, line)?;
        let ty = common.ir_ty();
        let signed = common.is_signed();

        if op.is_comparison() {
            let pred = comparison_pred(op, signed);
            let b = self.cursor().cmp(pred, ty, lv.op, rv.op);
            let out = self.cursor().cast(CastOp::Zext, Ty::I32, b);
            return Ok(RV {
                op: out,
                cty: CType::int(),
            });
        }

        let irop = match op {
            BinaryOp::Add => BinOp::Add,
            BinaryOp::Sub => BinOp::Sub,
            BinaryOp::Mul => BinOp::Mul,
            BinaryOp::Div => {
                if signed {
                    BinOp::SDiv
                } else {
                    BinOp::UDiv
                }
            }
            BinaryOp::Rem => {
                if signed {
                    BinOp::SRem
                } else {
                    BinOp::URem
                }
            }
            BinaryOp::And => BinOp::And,
            BinaryOp::Or => BinOp::Or,
            BinaryOp::Xor => BinOp::Xor,
            BinaryOp::Shl => BinOp::Shl,
            BinaryOp::Shr => {
                if signed {
                    BinOp::AShr
                } else {
                    BinOp::LShr
                }
            }
            _ => unreachable!(),
        };
        let out = self.cursor().bin(irop, ty, lv.op, rv.op);
        Ok(RV {
            op: out,
            cty: common,
        })
    }

    /// Short-circuit `&&` / `||` through a temporary, exactly like `-O0` C.
    fn lower_logical(&mut self, and: bool, lhs: &Expr, rhs: &Expr, line: usize) -> Result<RV> {
        let tmp = self.cursor().alloca(4);
        let lb = self.lower_to_bool(lhs)?;
        let rhs_bb = self.f.add_block(if and { "land.rhs" } else { "lor.rhs" });
        let short_bb = self
            .f
            .add_block(if and { "land.short" } else { "lor.short" });
        let merge = self.f.add_block(if and { "land.end" } else { "lor.end" });
        if and {
            self.cursor().condbr(lb, rhs_bb, short_bb);
        } else {
            self.cursor().condbr(lb, short_bb, rhs_bb);
        }

        // Short-circuit side: result is 0 for `&&`, 1 for `||`.
        self.move_to(short_bb);
        let short_val = Operand::imm(Ty::I32, if and { 0 } else { 1 });
        self.cursor().store(Ty::I32, short_val, tmp);
        self.cursor().br(merge);

        // Evaluate the right-hand side.
        self.move_to(rhs_bb);
        let rb = self.lower_to_bool(rhs)?;
        let _ = line;
        let rz = self.cursor().cast(CastOp::Zext, Ty::I32, rb);
        self.cursor().store(Ty::I32, rz, tmp);
        self.cursor().br(merge);

        self.move_to(merge);
        let out = self.cursor().load(Ty::I32, tmp);
        Ok(RV {
            op: out,
            cty: CType::int(),
        })
    }

    fn lower_conditional(
        &mut self,
        cond: &Expr,
        then_expr: &Expr,
        else_expr: &Expr,
        line: usize,
    ) -> Result<RV> {
        let c = self.lower_to_bool(cond)?;
        let then_bb = self.f.add_block("cond.then");
        let else_bb = self.f.add_block("cond.else");
        let merge = self.f.add_block("cond.end");
        self.cursor().condbr(c, then_bb, else_bb);

        // First pass evaluates both arms into a temporary once the common
        // type is known; we discover the common type by lowering the arms.
        self.move_to(then_bb);
        let tv = self.lower_expr(then_expr)?;
        let then_out = self.block;

        self.move_to(else_bb);
        let ev = self.lower_expr(else_expr)?;
        let else_out = self.block;

        let common = common_arm_type(&tv.cty, &ev.cty, line)?;
        let tmp_size = common.size().max(1);

        // The temporary must dominate both arms: put it in the entry block.
        let (_, tmp_val) = self.f.create_inst(
            overify_ir::InstKind::Alloca { size: tmp_size },
            Some(Ty::Ptr),
        );
        let entry = self.f.entry();
        let id = match self.f.values[tmp_val.unwrap().index()].def {
            overify_ir::ValueDef::Inst(i) => i,
            _ => unreachable!(),
        };
        self.f.blocks[entry.index()].insts.insert(0, id);
        let tmp = Operand::Value(tmp_val.unwrap());

        self.move_to(then_out);
        let tv = self.convert(tv, &common, line)?;
        self.cursor().store(common.ir_ty(), tv.op, tmp);
        self.cursor().br(merge);

        self.move_to(else_out);
        let ev = self.convert(ev, &common, line)?;
        self.cursor().store(common.ir_ty(), ev.op, tmp);
        self.cursor().br(merge);

        self.move_to(merge);
        let out = self.cursor().load(common.ir_ty(), tmp);
        Ok(RV {
            op: out,
            cty: common,
        })
    }

    fn lower_assign(
        &mut self,
        op: Option<BinaryOp>,
        target: &Expr,
        value: &Expr,
        line: usize,
    ) -> Result<RV> {
        let lv = self.lower_lvalue(target)?;
        if matches!(lv.cty, CType::Array(_, _)) {
            return Err(err(line, "cannot assign to an array"));
        }
        let new_val = match op {
            None => {
                let rv = self.lower_expr(value)?;
                self.convert(rv, &lv.cty, line)?
            }
            Some(bop) => {
                let cur = self.load_lv(&lv);
                let rv = self.lower_expr(value)?;
                let combined = self.lower_binary_rv(bop, cur, rv, line)?;
                self.convert(combined, &lv.cty, line)?
            }
        };
        self.cursor().store(lv.cty.ir_ty(), new_val.op, lv.addr);
        Ok(new_val)
    }

    fn lower_incdec(&mut self, inc: bool, pre: bool, target: &Expr, line: usize) -> Result<RV> {
        let lv = self.lower_lvalue(target)?;
        let old = self.load_lv(&lv);
        let one = Expr::IntLit { value: 1, line };
        let op = if inc { BinaryOp::Add } else { BinaryOp::Sub };
        let one_rv = self.lower_expr(&one)?;
        let new = self.lower_binary_rv(op, old.clone(), one_rv, line)?;
        let new = self.convert(new, &lv.cty, line)?;
        self.cursor().store(lv.cty.ir_ty(), new.op, lv.addr);
        Ok(if pre { new } else { old })
    }

    fn lower_call(&mut self, name: &str, args: &[Expr], line: usize) -> Result<RV> {
        // Builtins first.
        match name {
            "__sym_input" => {
                let [ptr, len] = self.expect_args::<2>(args, line)?;
                let ptr = self.lower_expr(&ptr)?;
                if !ptr.cty.decayed().is_pointer_like() {
                    return Err(err(line, "__sym_input expects a pointer"));
                }
                let len = self.lower_expr(&len)?;
                let len = self.convert(len, &CType::long(), line)?;
                self.cursor()
                    .intrinsic(Intrinsic::SymInput, vec![ptr.op, len.op]);
                return Ok(void_rv());
            }
            "__assume" | "__assert" => {
                let [c] = self.expect_args::<1>(args, line)?;
                let b = self.lower_to_bool(&c)?;
                let i = if name == "__assume" {
                    Intrinsic::Assume
                } else {
                    Intrinsic::Assert
                };
                self.cursor().intrinsic(i, vec![b]);
                return Ok(void_rv());
            }
            "putchar" => {
                let [c] = self.expect_args::<1>(args, line)?;
                let c = self.lower_expr(&c)?;
                let c = self.convert(c, &CType::int(), line)?;
                let out = self.cursor().intrinsic(Intrinsic::PutChar, vec![c.op]);
                return Ok(RV {
                    op: out.unwrap(),
                    cty: CType::int(),
                });
            }
            "malloc" => {
                let [n] = self.expect_args::<1>(args, line)?;
                let n = self.lower_expr(&n)?;
                let n = self.convert(n, &CType::long(), line)?;
                let out = self.cursor().intrinsic(Intrinsic::Malloc, vec![n.op]);
                return Ok(RV {
                    op: out.unwrap(),
                    cty: CType::char_().ptr_to(),
                });
            }
            "abort" => {
                if !args.is_empty() {
                    return Err(err(line, "abort takes no arguments"));
                }
                self.cursor().intrinsic(Intrinsic::Abort, vec![]);
                return Ok(void_rv());
            }
            _ => {}
        }

        let (param_tys, ret) = self
            .lw
            .sigs
            .get(name)
            .cloned()
            .ok_or_else(|| err(line, format!("call to undeclared function `{name}`")))?;
        if args.len() != param_tys.len() {
            return Err(err(
                line,
                format!(
                    "`{name}` expects {} arguments, got {}",
                    param_tys.len(),
                    args.len()
                ),
            ));
        }
        let mut ops = Vec::with_capacity(args.len());
        for (a, pty) in args.iter().zip(&param_tys) {
            let rv = self.lower_expr(a)?;
            let rv = self.convert(rv, pty, line)?;
            ops.push(rv.op);
        }
        let out = self.cursor().call(name, ops, ret.ir_ty());
        Ok(match ret {
            CType::Void => void_rv(),
            ret => RV {
                op: out.unwrap(),
                cty: ret,
            },
        })
    }

    fn expect_args<const N: usize>(&self, args: &[Expr], line: usize) -> Result<[Expr; N]> {
        if args.len() != N {
            return Err(err(
                line,
                format!("expected {N} arguments, got {}", args.len()),
            ));
        }
        Ok(std::array::from_fn(|i| args[i].clone()))
    }
}

fn void_rv() -> RV {
    RV {
        op: Operand::imm(Ty::I32, 0),
        cty: CType::Void,
    }
}

/// Common type of `?:` arms.
fn common_arm_type(a: &CType, b: &CType, line: usize) -> Result<CType> {
    let a = a.decayed();
    let b = b.decayed();
    if a.is_integer() && b.is_integer() {
        return Ok(a.common_with(&b));
    }
    if a == b {
        return Ok(a);
    }
    if a.is_pointer_like() && b.is_pointer_like() {
        return Ok(a);
    }
    Err(err(line, format!("incompatible `?:` arms `{a}` and `{b}`")))
}

/// Maps an AST comparison to an IR predicate.
fn comparison_pred(op: BinaryOp, signed: bool) -> CmpPred {
    match (op, signed) {
        (BinaryOp::Eq, _) => CmpPred::Eq,
        (BinaryOp::Ne, _) => CmpPred::Ne,
        (BinaryOp::Lt, true) => CmpPred::Slt,
        (BinaryOp::Lt, false) => CmpPred::Ult,
        (BinaryOp::Le, true) => CmpPred::Sle,
        (BinaryOp::Le, false) => CmpPred::Ule,
        (BinaryOp::Gt, true) => CmpPred::Sgt,
        (BinaryOp::Gt, false) => CmpPred::Ugt,
        (BinaryOp::Ge, true) => CmpPred::Sge,
        (BinaryOp::Ge, false) => CmpPred::Uge,
        _ => unreachable!(),
    }
}
