//! Recursive-descent parser for MiniC.

use crate::ast::*;
use crate::ctype::CType;
use crate::lexer::{Lexer, Token, TokenKind};
use crate::CompileError;
use overify_ir::Ty;

type Result<T> = std::result::Result<T, CompileError>;

/// Parses a MiniC translation unit.
pub fn parse_program(src: &str) -> Result<Program> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !p.at_eof() {
        items.push(p.item()?);
    }
    Ok(Program { items })
}

/// Words that start a type.
const TYPE_KEYWORDS: &[&str] = &["void", "char", "short", "int", "long", "unsigned", "const"];

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn line(&self) -> usize {
        self.peek().line
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError {
            line: self.line(),
            msg: msg.into(),
        }
    }

    fn is_punct(&self, p: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Punct(x) if *x == p)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.is_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {:?}", self.peek().kind)))
        }
    }

    fn is_ident(&self, name: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(x) if x == name)
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if self.is_ident(name) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_any_ident(&mut self) -> Result<String> {
        match self.bump().kind {
            TokenKind::Ident(n) => Ok(n),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    /// True if the current token starts a type.
    fn at_type(&self) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(x) if TYPE_KEYWORDS.contains(&x.as_str()))
    }

    /// Parses a type prefix: qualifiers, base type and `*`s. Returns the
    /// type and whether `const` appeared.
    fn type_prefix(&mut self) -> Result<(CType, bool)> {
        let mut is_const = false;
        while self.eat_ident("const") {
            is_const = true;
        }
        let base = if self.eat_ident("void") {
            CType::Void
        } else if self.eat_ident("char") {
            CType::char_()
        } else if self.eat_ident("short") {
            CType::Int {
                ty: Ty::I16,
                signed: true,
            }
        } else if self.eat_ident("int") {
            CType::int()
        } else if self.eat_ident("long") {
            CType::long()
        } else if self.eat_ident("unsigned") {
            if self.eat_ident("char") {
                CType::char_()
            } else if self.eat_ident("short") {
                CType::Int {
                    ty: Ty::I16,
                    signed: false,
                }
            } else if self.eat_ident("long") {
                CType::ulong()
            } else {
                self.eat_ident("int");
                CType::uint()
            }
        } else {
            return Err(self.err("expected type name"));
        };
        // Interleaved `const` after the base (e.g. `char const`).
        while self.eat_ident("const") {
            is_const = true;
        }
        let mut ty = base;
        while self.eat_punct("*") {
            ty = ty.ptr_to();
            while self.eat_ident("const") {
                is_const = true;
            }
        }
        Ok((ty, is_const))
    }

    /// Parses an optional array suffix `[N]` or `[]` after a declarator name.
    fn array_suffix(&mut self, base: CType) -> Result<(CType, bool)> {
        if !self.eat_punct("[") {
            return Ok((base, false));
        }
        if self.eat_punct("]") {
            // Size inferred from the initializer.
            return Ok((CType::Array(Box::new(base), 0), true));
        }
        let n = match self.bump().kind {
            TokenKind::Int(v) if v > 0 => v as u64,
            _ => return Err(self.err("array size must be a positive integer literal")),
        };
        self.expect_punct("]")?;
        Ok((CType::Array(Box::new(base), n), false))
    }

    /// Parses one top-level item.
    fn item(&mut self) -> Result<Item> {
        let line = self.line();
        let (base, is_const) = self.type_prefix()?;
        let name = self.expect_any_ident()?;

        if self.is_punct("(") {
            // Function prototype or definition.
            self.bump();
            let mut params = Vec::new();
            if !self.is_punct(")") {
                if self.is_ident("void") && {
                    // `(void)` exactly.
                    matches!(
                        self.tokens.get(self.pos + 1).map(|t| &t.kind),
                        Some(TokenKind::Punct(")"))
                    )
                } {
                    self.bump();
                } else {
                    loop {
                        let (pty, _) = self.type_prefix()?;
                        let pname = self.expect_any_ident()?;
                        let (pty, _) = self.array_suffix(pty)?;
                        // Array parameters decay to pointers.
                        params.push((pty.decayed(), pname));
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                }
            }
            self.expect_punct(")")?;
            let proto = FuncProto {
                name,
                params,
                ret: base,
                line,
            };
            if self.eat_punct(";") {
                return Ok(Item::Proto(proto));
            }
            self.expect_punct("{")?;
            let body = self.block_body()?;
            return Ok(Item::Func(FuncDef { proto, body }));
        }

        // Global variable.
        let (cty, infer) = self.array_suffix(base)?;
        let init = if self.eat_punct("=") {
            Some(self.initializer()?)
        } else {
            None
        };
        self.expect_punct(";")?;
        let cty = infer_array_size(cty, infer, &init, line)?;
        Ok(Item::Global(GlobalDef {
            name,
            cty,
            is_const,
            init,
            line,
        }))
    }

    fn initializer(&mut self) -> Result<Initializer> {
        if self.eat_punct("{") {
            let mut items = Vec::new();
            if !self.is_punct("}") {
                loop {
                    items.push(self.expr()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                    if self.is_punct("}") {
                        break; // Trailing comma.
                    }
                }
            }
            self.expect_punct("}")?;
            return Ok(Initializer::List(items));
        }
        if let TokenKind::Str(bytes) = &self.peek().kind {
            let bytes = bytes.clone();
            self.bump();
            return Ok(Initializer::Str(bytes));
        }
        Ok(Initializer::Expr(self.expr()?))
    }

    /// Parses statements until the closing `}` (which is consumed).
    fn block_body(&mut self) -> Result<Vec<Stmt>> {
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if self.at_eof() {
                return Err(self.err("unexpected end of input in block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let line = self.line();
        if self.eat_punct("{") {
            return Ok(Stmt::Block(self.block_body()?));
        }
        if self.at_type() {
            return self.decl_stmt();
        }
        if self.eat_ident("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_body = self.stmt_as_block()?;
            let else_body = if self.eat_ident("else") {
                self.stmt_as_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_body,
                else_body,
            });
        }
        if self.eat_ident("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.stmt_as_block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_ident("do") {
            let body = self.stmt_as_block()?;
            if !self.eat_ident("while") {
                return Err(self.err("expected `while` after do-body"));
            }
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::DoWhile { body, cond });
        }
        if self.eat_ident("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else if self.at_type() {
                Some(Box::new(self.decl_stmt()?))
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(Box::new(Stmt::Expr(e)))
            };
            let cond = if self.is_punct(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            let step = if self.is_punct(")") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(")")?;
            let body = self.stmt_as_block()?;
            return Ok(Stmt::For {
                init,
                cond,
                step,
                body,
            });
        }
        if self.eat_ident("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break { line });
        }
        if self.eat_ident("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue { line });
        }
        if self.eat_ident("return") {
            let value = if self.is_punct(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Return { value, line });
        }
        if self.eat_punct(";") {
            return Ok(Stmt::Block(Vec::new()));
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    /// Wraps a single statement as a block body (for `if (c) stmt;`).
    fn stmt_as_block(&mut self) -> Result<Vec<Stmt>> {
        if self.eat_punct("{") {
            self.block_body()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    /// Local declaration statement, possibly with several declarators.
    fn decl_stmt(&mut self) -> Result<Stmt> {
        let line = self.line();
        let (base, _) = self.type_prefix()?;
        let mut decls = Vec::new();
        loop {
            // Additional `*`s per declarator (`int x, *p;`).
            let mut dty = base.clone();
            while self.eat_punct("*") {
                dty = dty.ptr_to();
            }
            let name = self.expect_any_ident()?;
            let (dty, infer) = self.array_suffix(dty)?;
            let init = if self.eat_punct("=") {
                Some(self.initializer()?)
            } else {
                None
            };
            let dty = infer_array_size(dty, infer, &init, line)?;
            decls.push((dty, name, init));
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(";")?;
        Ok(Stmt::Decl { decls, line })
    }

    // ---- Expressions (precedence climbing). ----

    pub fn expr(&mut self) -> Result<Expr> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr> {
        let lhs = self.conditional()?;
        let line = self.line();
        let op = if self.eat_punct("=") {
            None
        } else if self.eat_punct("+=") {
            Some(BinaryOp::Add)
        } else if self.eat_punct("-=") {
            Some(BinaryOp::Sub)
        } else if self.eat_punct("*=") {
            Some(BinaryOp::Mul)
        } else if self.eat_punct("/=") {
            Some(BinaryOp::Div)
        } else if self.eat_punct("%=") {
            Some(BinaryOp::Rem)
        } else if self.eat_punct("&=") {
            Some(BinaryOp::And)
        } else if self.eat_punct("|=") {
            Some(BinaryOp::Or)
        } else if self.eat_punct("^=") {
            Some(BinaryOp::Xor)
        } else if self.eat_punct("<<=") {
            Some(BinaryOp::Shl)
        } else if self.eat_punct(">>=") {
            Some(BinaryOp::Shr)
        } else {
            return Ok(lhs);
        };
        let value = self.assignment()?;
        Ok(Expr::Assign {
            op,
            target: Box::new(lhs),
            value: Box::new(value),
            line,
        })
    }

    fn conditional(&mut self) -> Result<Expr> {
        let cond = self.logical_or()?;
        if self.is_punct("?") {
            let line = self.line();
            self.bump();
            let then_expr = self.expr()?;
            self.expect_punct(":")?;
            let else_expr = self.conditional()?;
            return Ok(Expr::Conditional {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
                line,
            });
        }
        Ok(cond)
    }

    fn logical_or(&mut self) -> Result<Expr> {
        let mut lhs = self.logical_and()?;
        while self.is_punct("||") {
            let line = self.line();
            self.bump();
            let rhs = self.logical_and()?;
            lhs = Expr::Logical {
                and: false,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr> {
        let mut lhs = self.bit_or()?;
        while self.is_punct("&&") {
            let line = self.line();
            self.bump();
            let rhs = self.bit_or()?;
            lhs = Expr::Logical {
                and: true,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn bit_or(&mut self) -> Result<Expr> {
        let mut lhs = self.bit_xor()?;
        while self.is_punct("|") {
            let line = self.line();
            self.bump();
            let rhs = self.bit_xor()?;
            lhs = bin(BinaryOp::Or, lhs, rhs, line);
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self) -> Result<Expr> {
        let mut lhs = self.bit_and()?;
        while self.is_punct("^") {
            let line = self.line();
            self.bump();
            let rhs = self.bit_and()?;
            lhs = bin(BinaryOp::Xor, lhs, rhs, line);
        }
        Ok(lhs)
    }

    fn bit_and(&mut self) -> Result<Expr> {
        let mut lhs = self.equality()?;
        while self.is_punct("&") {
            let line = self.line();
            self.bump();
            let rhs = self.equality()?;
            lhs = bin(BinaryOp::And, lhs, rhs, line);
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr> {
        let mut lhs = self.relational()?;
        loop {
            let line = self.line();
            let op = if self.eat_punct("==") {
                BinaryOp::Eq
            } else if self.eat_punct("!=") {
                BinaryOp::Ne
            } else {
                return Ok(lhs);
            };
            let rhs = self.relational()?;
            lhs = bin(op, lhs, rhs, line);
        }
    }

    fn relational(&mut self) -> Result<Expr> {
        let mut lhs = self.shift()?;
        loop {
            let line = self.line();
            let op = if self.eat_punct("<=") {
                BinaryOp::Le
            } else if self.eat_punct(">=") {
                BinaryOp::Ge
            } else if self.eat_punct("<") {
                BinaryOp::Lt
            } else if self.eat_punct(">") {
                BinaryOp::Gt
            } else {
                return Ok(lhs);
            };
            let rhs = self.shift()?;
            lhs = bin(op, lhs, rhs, line);
        }
    }

    fn shift(&mut self) -> Result<Expr> {
        let mut lhs = self.additive()?;
        loop {
            let line = self.line();
            let op = if self.eat_punct("<<") {
                BinaryOp::Shl
            } else if self.eat_punct(">>") {
                BinaryOp::Shr
            } else {
                return Ok(lhs);
            };
            let rhs = self.additive()?;
            lhs = bin(op, lhs, rhs, line);
        }
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let line = self.line();
            let op = if self.eat_punct("+") {
                BinaryOp::Add
            } else if self.eat_punct("-") {
                BinaryOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.multiplicative()?;
            lhs = bin(op, lhs, rhs, line);
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.cast_expr()?;
        loop {
            let line = self.line();
            let op = if self.eat_punct("*") {
                BinaryOp::Mul
            } else if self.eat_punct("/") {
                BinaryOp::Div
            } else if self.eat_punct("%") {
                BinaryOp::Rem
            } else {
                return Ok(lhs);
            };
            let rhs = self.cast_expr()?;
            lhs = bin(op, lhs, rhs, line);
        }
    }

    fn cast_expr(&mut self) -> Result<Expr> {
        // `(` type `)` cast-expr — distinguishable because MiniC has no
        // typedefs: a type keyword after `(` means a cast.
        if self.is_punct("(") {
            if let Some(t) = self.tokens.get(self.pos + 1) {
                if matches!(&t.kind, TokenKind::Ident(x) if TYPE_KEYWORDS.contains(&x.as_str())) {
                    let line = self.line();
                    self.bump(); // (
                    let (to, _) = self.type_prefix()?;
                    self.expect_punct(")")?;
                    let inner = self.cast_expr()?;
                    return Ok(Expr::Cast {
                        to,
                        expr: Box::new(inner),
                        line,
                    });
                }
            }
        }
        self.unary()
    }

    fn unary(&mut self) -> Result<Expr> {
        let line = self.line();
        if self.eat_punct("++") {
            let t = self.unary()?;
            return Ok(Expr::IncDec {
                inc: true,
                pre: true,
                target: Box::new(t),
                line,
            });
        }
        if self.eat_punct("--") {
            let t = self.unary()?;
            return Ok(Expr::IncDec {
                inc: false,
                pre: true,
                target: Box::new(t),
                line,
            });
        }
        if self.eat_punct("!") {
            let e = self.cast_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::LogicalNot,
                expr: Box::new(e),
                line,
            });
        }
        if self.eat_punct("~") {
            let e = self.cast_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
                line,
            });
        }
        if self.eat_punct("-") {
            let e = self.cast_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(e),
                line,
            });
        }
        if self.eat_punct("+") {
            return self.cast_expr();
        }
        if self.eat_punct("*") {
            let e = self.cast_expr()?;
            return Ok(Expr::Deref {
                expr: Box::new(e),
                line,
            });
        }
        if self.eat_punct("&") {
            let e = self.cast_expr()?;
            return Ok(Expr::AddrOf {
                expr: Box::new(e),
                line,
            });
        }
        if self.is_ident("sizeof") {
            self.bump();
            self.expect_punct("(")?;
            let (ty, _) = self.type_prefix()?;
            let (ty, _) = self.array_suffix(ty)?;
            self.expect_punct(")")?;
            return Ok(Expr::SizeOf { ty, line });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::Index {
                    base: Box::new(e),
                    index: Box::new(idx),
                    line,
                };
            } else if self.is_punct("(") {
                let name = match &e {
                    Expr::Ident { name, .. } => name.clone(),
                    _ => return Err(self.err("only direct calls are supported")),
                };
                self.bump();
                let mut args = Vec::new();
                if !self.is_punct(")") {
                    loop {
                        args.push(self.assignment()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                }
                self.expect_punct(")")?;
                e = Expr::Call { name, args, line };
            } else if self.eat_punct("++") {
                e = Expr::IncDec {
                    inc: true,
                    pre: false,
                    target: Box::new(e),
                    line,
                };
            } else if self.eat_punct("--") {
                e = Expr::IncDec {
                    inc: false,
                    pre: false,
                    target: Box::new(e),
                    line,
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        let line = self.line();
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::IntLit { value: v, line })
            }
            TokenKind::Str(bytes) => {
                self.bump();
                Ok(Expr::StrLit { bytes, line })
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::Ident { name, line })
            }
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }
}

fn bin(op: BinaryOp, lhs: Expr, rhs: Expr, line: usize) -> Expr {
    Expr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
        line,
    }
}

/// Resolves `[]` array sizes from initializers.
fn infer_array_size(
    cty: CType,
    infer: bool,
    init: &Option<Initializer>,
    line: usize,
) -> Result<CType> {
    if !infer {
        return Ok(cty);
    }
    let CType::Array(elem, _) = cty else {
        unreachable!()
    };
    let n = match init {
        Some(Initializer::Str(bytes)) => bytes.len() as u64 + 1, // Implicit NUL.
        Some(Initializer::List(items)) => items.len() as u64,
        _ => {
            return Err(CompileError {
                line,
                msg: "array with `[]` requires an initializer".into(),
            })
        }
    };
    Ok(CType::Array(elem, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_listing1_wc() {
        // Listing 1 from the paper, verbatim modulo `isspace` prototypes.
        let src = r#"
            int isspace(int c);
            int isalpha(int c);
            int wc(unsigned char *str, int any) {
                int res = 0;
                int new_word = 1;
                for (unsigned char *p = str; *p; ++p) {
                    if (isspace(*p) || (any && !isalpha(*p))) {
                        new_word = 1;
                    } else {
                        if (new_word) {
                            ++res;
                            new_word = 0;
                        }
                    }
                }
                return res;
            }
        "#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.items.len(), 3);
        match &prog.items[2] {
            Item::Func(f) => {
                assert_eq!(f.proto.name, "wc");
                assert_eq!(f.proto.params.len(), 2);
            }
            _ => panic!("expected function"),
        }
    }

    #[test]
    fn parses_globals_and_arrays() {
        let src = r#"
            const char table[4] = {1, 2, 3, 4};
            char msg[] = "hi";
            int counter = 0;
        "#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.items.len(), 3);
        match &prog.items[1] {
            Item::Global(g) => assert_eq!(g.cty, CType::Array(Box::new(CType::char_()), 3)),
            _ => panic!(),
        }
    }

    #[test]
    fn precedence_binds_correctly() {
        // `a + b * c` must parse as a + (b * c).
        let src = "int f(int a, int b, int c) { return a + b * c; }";
        let prog = parse_program(src).unwrap();
        let Item::Func(f) = &prog.items[0] else {
            panic!()
        };
        let Stmt::Return { value: Some(e), .. } = &f.body[0] else {
            panic!()
        };
        match e {
            Expr::Binary {
                op: BinaryOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(
                    **rhs,
                    Expr::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            _ => panic!("bad precedence: {e:?}"),
        }
    }

    #[test]
    fn parses_casts_and_sizeof() {
        let src = "long f(int x) { return (long)x + (long)sizeof(int); }";
        parse_program(src).unwrap();
    }

    #[test]
    fn parses_do_while_and_ternary() {
        let src = r#"
            int f(int n) {
                int s = 0;
                do { s += n > 0 ? n : -n; n--; } while (n);
                return s;
            }
        "#;
        parse_program(src).unwrap();
    }

    #[test]
    fn rejects_indirect_calls() {
        assert!(parse_program("int f(int x) { return (x + 1)(1); }").is_err());
    }

    #[test]
    fn rejects_missing_semicolon() {
        assert!(parse_program("int f() { return 1 }").is_err());
    }
}
