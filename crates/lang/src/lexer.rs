//! MiniC tokenizer.

use crate::CompileError;

/// Token categories.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (value already decoded; char literals included).
    Int(i64),
    /// String literal (decoded bytes, without the implicit NUL).
    Str(Vec<u8>),
    /// Punctuation or operator, e.g. `"+"`, `"<<="`, `"&&"`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token plus its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

/// All multi-character operators, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", "++", "--", "->", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
    "<", ">", "=", "?", ":", ";", ",", "(", ")", "[", "]", "{", "}",
];

/// Converts MiniC source into a token stream.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    /// Tokenizes the whole input, appending a final `Eof` token.
    pub fn tokenize(mut self) -> Result<Vec<Token>, CompileError> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let eof = t.kind == TokenKind::Eof;
            out.push(t);
            if eof {
                return Ok(out);
            }
        }
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError {
            line: self.line,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), CompileError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start_line = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(CompileError {
                                    line: start_line,
                                    msg: "unterminated block comment".into(),
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, CompileError> {
        self.skip_trivia()?;
        let line = self.line;
        let c = match self.peek() {
            None => {
                return Ok(Token {
                    kind: TokenKind::Eof,
                    line,
                })
            }
            Some(c) => c,
        };

        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
            let text = std::str::from_utf8(&self.src[start..self.pos])
                .unwrap()
                .to_string();
            return Ok(Token {
                kind: TokenKind::Ident(text),
                line,
            });
        }

        // Numbers.
        if c.is_ascii_digit() {
            let start = self.pos;
            if c == b'0' && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
                self.bump();
                self.bump();
                while matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                    self.bump();
                }
                let text = std::str::from_utf8(&self.src[start + 2..self.pos]).unwrap();
                let v = i64::from_str_radix(text, 16)
                    .map_err(|_| self.err("hex literal out of range"))?;
                return Ok(Token {
                    kind: TokenKind::Int(v),
                    line,
                });
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
            let v: i64 = text
                .parse()
                .map_err(|_| self.err("integer literal out of range"))?;
            return Ok(Token {
                kind: TokenKind::Int(v),
                line,
            });
        }

        // Character literals.
        if c == b'\'' {
            self.bump();
            let v = self.escaped_char(b'\'')? as i64;
            if self.bump() != Some(b'\'') {
                return Err(self.err("unterminated character literal"));
            }
            return Ok(Token {
                kind: TokenKind::Int(v),
                line,
            });
        }

        // String literals.
        if c == b'"' {
            self.bump();
            let mut bytes = Vec::new();
            loop {
                match self.peek() {
                    Some(b'"') => {
                        self.bump();
                        break;
                    }
                    Some(_) => bytes.push(self.escaped_char(b'"')?),
                    None => return Err(self.err("unterminated string literal")),
                }
            }
            return Ok(Token {
                kind: TokenKind::Str(bytes),
                line,
            });
        }

        // Punctuation, longest match first.
        for p in PUNCTS {
            if self.src[self.pos..].starts_with(p.as_bytes()) {
                for _ in 0..p.len() {
                    self.bump();
                }
                return Ok(Token {
                    kind: TokenKind::Punct(p),
                    line,
                });
            }
        }

        Err(self.err(format!("unexpected character `{}`", c as char)))
    }

    /// Decodes one possibly escaped character inside a literal delimited by
    /// `delim`.
    fn escaped_char(&mut self, _delim: u8) -> Result<u8, CompileError> {
        let c = self
            .bump()
            .ok_or_else(|| self.err("unterminated literal"))?;
        if c != b'\\' {
            return Ok(c);
        }
        let e = self.bump().ok_or_else(|| self.err("unterminated escape"))?;
        Ok(match e {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0' => 0,
            b'\\' => b'\\',
            b'\'' => b'\'',
            b'"' => b'"',
            b'a' => 7,
            b'b' => 8,
            b'f' => 12,
            b'v' => 11,
            b'x' => {
                let mut v: u32 = 0;
                let mut any = false;
                while let Some(h) = self.peek() {
                    if h.is_ascii_hexdigit() {
                        v = v * 16 + (h as char).to_digit(16).unwrap();
                        self.bump();
                        any = true;
                    } else {
                        break;
                    }
                }
                if !any {
                    return Err(self.err("\\x escape with no digits"));
                }
                (v & 0xff) as u8
            }
            other => return Err(self.err(format!("unknown escape `\\{}`", other as char))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_operators_with_maximal_munch() {
        assert_eq!(
            kinds("a <<= b >> 1"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("<<="),
                TokenKind::Ident("b".into()),
                TokenKind::Punct(">>"),
                TokenKind::Int(1),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_literals() {
        assert_eq!(
            kinds(r#"0x1F 42 'a' '\n' '\0' "hi\n""#),
            vec![
                TokenKind::Int(31),
                TokenKind::Int(42),
                TokenKind::Int(97),
                TokenKind::Int(10),
                TokenKind::Int(0),
                TokenKind::Str(vec![b'h', b'i', b'\n']),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = Lexer::new("// one\n/* two\nthree */ x").tokenize().unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("x".into()));
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(Lexer::new("\"abc").tokenize().is_err());
        assert!(Lexer::new("/* abc").tokenize().is_err());
    }

    #[test]
    fn hex_escape_in_string() {
        assert_eq!(
            kinds(r#""\x41\x42""#),
            vec![TokenKind::Str(vec![0x41, 0x42]), TokenKind::Eof]
        );
    }
}
