//! `overify-lang`: the MiniC front-end.
//!
//! MiniC is the C subset in which the -OVERIFY reproduction's workloads are
//! written: Listing 1's `wc`, the verification-oriented libc, and the
//! Coreutils-style utility suite. It supports:
//!
//! * types: `void`, `char` (unsigned 8-bit), `short`, `int`, `long`,
//!   `unsigned` variants, pointers and one-dimensional arrays,
//! * functions, prototypes, global variables with initializers (including
//!   string literals and brace lists), `const`,
//! * statements: blocks, `if`/`else`, `while`, `do`-`while`, `for`,
//!   `break`, `continue`, `return`, declarations,
//! * expressions: the full C operator set including short-circuit `&&`/`||`,
//!   `?:`, compound assignment, pre/post `++`/`--`, casts, `sizeof`,
//!   pointer arithmetic and array indexing,
//! * builtins mapped to IR intrinsics: `__sym_input`, `__assume`,
//!   `__assert`, `putchar`, `malloc`, `abort`.
//!
//! Lowering is deliberately naive — every local lives in an `alloca`, every
//! short-circuit operator branches — so `-O0` output faithfully reproduces
//! the path structure an unoptimized C compile would hand to KLEE.
//!
//! # Example
//!
//! ```
//! let m = overify_lang::compile(
//!     "int add(int a, int b) { return a + b; }",
//! )
//! .unwrap();
//! assert!(m.function("add").is_some());
//! ```

pub mod ast;
pub mod ctype;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ctype::CType;
pub use lexer::{Lexer, Token, TokenKind};
pub use lower::lower_program;
pub use parser::parse_program;

use overify_ir::Module;

/// A front-end failure (lexing, parsing or semantic) with a 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CompileError {}

/// Compiles MiniC source to an (unoptimized) IR module and verifies it.
pub fn compile(src: &str) -> Result<Module, CompileError> {
    let program = parse_program(src)?;
    let module = lower_program(&program)?;
    if let Err(e) = overify_ir::verify_module(&module) {
        // A verifier failure after lowering is a front-end bug; surface it
        // with enough context to debug.
        return Err(CompileError {
            line: 0,
            msg: format!("internal error: lowered IR is malformed: {e}"),
        });
    }
    Ok(module)
}
