//! MiniC abstract syntax tree.

use crate::ctype::CType;

/// A whole translation unit.
#[derive(Clone, Debug, Default)]
pub struct Program {
    pub items: Vec<Item>,
}

/// A top-level item.
#[derive(Clone, Debug)]
pub enum Item {
    /// Function definition.
    Func(FuncDef),
    /// Function prototype (declaration).
    Proto(FuncProto),
    /// Global variable.
    Global(GlobalDef),
}

/// A function signature.
#[derive(Clone, Debug)]
pub struct FuncProto {
    pub name: String,
    pub params: Vec<(CType, String)>,
    pub ret: CType,
    pub line: usize,
}

/// A function definition: prototype plus body.
#[derive(Clone, Debug)]
pub struct FuncDef {
    pub proto: FuncProto,
    pub body: Vec<Stmt>,
}

/// A global variable definition.
#[derive(Clone, Debug)]
pub struct GlobalDef {
    pub name: String,
    pub cty: CType,
    pub is_const: bool,
    pub init: Option<Initializer>,
    pub line: usize,
}

/// A variable initializer.
#[derive(Clone, Debug)]
pub enum Initializer {
    /// Single expression (must be a constant for globals).
    Expr(Expr),
    /// `{ a, b, c }` brace list for arrays.
    List(Vec<Expr>),
    /// String literal initializing a char array.
    Str(Vec<u8>),
}

/// Statements.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// Local declaration: one or more declarators.
    Decl {
        decls: Vec<(CType, String, Option<Initializer>)>,
        line: usize,
    },
    Expr(Expr),
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    DoWhile {
        body: Vec<Stmt>,
        cond: Expr,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Vec<Stmt>,
    },
    Break {
        line: usize,
    },
    Continue {
        line: usize,
    },
    Return {
        value: Option<Expr>,
        line: usize,
    },
    /// Nested block with its own scope.
    Block(Vec<Stmt>),
}

/// Binary operators (short-circuit `&&`/`||` are separate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinaryOp {
    /// True for comparison operators, whose result type is `int`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-x`
    Neg,
    /// `~x`
    Not,
    /// `!x`
    LogicalNot,
}

/// Expressions, each carrying its source line for diagnostics.
#[derive(Clone, Debug)]
pub enum Expr {
    IntLit {
        value: i64,
        line: usize,
    },
    StrLit {
        bytes: Vec<u8>,
        line: usize,
    },
    Ident {
        name: String,
        line: usize,
    },
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
        line: usize,
    },
    Binary {
        op: BinaryOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: usize,
    },
    /// `a && b` / `a || b` — lowered as control flow.
    Logical {
        and: bool,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: usize,
    },
    /// `cond ? a : b`
    Conditional {
        cond: Box<Expr>,
        then_expr: Box<Expr>,
        else_expr: Box<Expr>,
        line: usize,
    },
    /// Plain or compound assignment (`op` is `None` for `=`).
    Assign {
        op: Option<BinaryOp>,
        target: Box<Expr>,
        value: Box<Expr>,
        line: usize,
    },
    /// Pre/post increment/decrement.
    IncDec {
        inc: bool,
        pre: bool,
        target: Box<Expr>,
        line: usize,
    },
    Call {
        name: String,
        args: Vec<Expr>,
        line: usize,
    },
    /// `arr[idx]`
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
        line: usize,
    },
    /// `*p`
    Deref {
        expr: Box<Expr>,
        line: usize,
    },
    /// `&lv`
    AddrOf {
        expr: Box<Expr>,
        line: usize,
    },
    /// `(type)expr`
    Cast {
        to: CType,
        expr: Box<Expr>,
        line: usize,
    },
    /// `sizeof(type)`
    SizeOf {
        ty: CType,
        line: usize,
    },
}

impl Expr {
    /// Source line of the expression.
    pub fn line(&self) -> usize {
        match self {
            Expr::IntLit { line, .. }
            | Expr::StrLit { line, .. }
            | Expr::Ident { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Logical { line, .. }
            | Expr::Conditional { line, .. }
            | Expr::Assign { line, .. }
            | Expr::IncDec { line, .. }
            | Expr::Call { line, .. }
            | Expr::Index { line, .. }
            | Expr::Deref { line, .. }
            | Expr::AddrOf { line, .. }
            | Expr::Cast { line, .. }
            | Expr::SizeOf { line, .. } => *line,
        }
    }
}
