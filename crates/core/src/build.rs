//! Compilation driver: source → optimized, libc-linked module.

use overify_ir::Module;
use overify_libc::LibcVariant;
use overify_opt::{CostModel, OptLevel, OptStats, PipelineOptions};
use std::time::{Duration, Instant};

/// What to build and how.
#[derive(Clone, Debug)]
pub struct BuildOptions {
    /// Optimization level (the compiler switch).
    pub level: OptLevel,
    /// Which libc to link; `None` picks the paper's defaults — the native
    /// library below `-OVERIFY`, the verification library at `-OVERIFY`.
    pub libc: Option<LibcVariant>,
    /// Link a libc at all (off for freestanding snippets).
    pub link_libc: bool,
    /// Cost-model override (the branch-cost ablation knob).
    pub cost: Option<CostModel>,
    /// Runtime-checks override (defaults: only `-OVERIFY`).
    pub runtime_checks: Option<bool>,
    /// Annotations override (defaults: only `-OVERIFY`).
    pub annotations: Option<bool>,
}

impl BuildOptions {
    /// Defaults for a level.
    pub fn level(level: OptLevel) -> BuildOptions {
        BuildOptions {
            level,
            libc: None,
            link_libc: true,
            cost: None,
            runtime_checks: None,
            annotations: None,
        }
    }

    /// The libc variant this build links.
    pub fn resolved_libc(&self) -> LibcVariant {
        self.libc.unwrap_or(match self.level {
            OptLevel::Overify => LibcVariant::Verify,
            _ => LibcVariant::Native,
        })
    }
}

/// A build failure.
#[derive(Debug)]
pub enum BuildError {
    /// Front-end (lex/parse/sema) failure.
    Compile(overify_lang::CompileError),
    /// Linking the libc failed (duplicate symbols).
    Link(overify_ir::module::LinkError),
    /// The final module failed IR verification — a compiler bug.
    Malformed(overify_ir::VerifyError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Compile(e) => write!(f, "compile error: {e}"),
            BuildError::Link(e) => write!(f, "link error: {e}"),
            BuildError::Malformed(e) => write!(f, "internal error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<overify_lang::CompileError> for BuildError {
    fn from(e: overify_lang::CompileError) -> BuildError {
        BuildError::Compile(e)
    }
}

/// A compiled program plus its build metadata.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    pub module: Module,
    /// Transformation counters (Table 3).
    pub stats: OptStats,
    pub level: OptLevel,
    pub libc: Option<LibcVariant>,
    /// Wall-clock compile (+ optimize + link) time — Table 1's `t_compile`.
    pub compile_time: Duration,
}

impl CompiledProgram {
    /// Live instruction count — Table 1's "# instructions" (static).
    pub fn size(&self) -> usize {
        self.module.live_inst_count()
    }
}

/// Compiles MiniC source at the requested level, linking the configured
/// libc, optimizing, and verifying the result.
pub fn compile(source: &str, opts: &BuildOptions) -> Result<CompiledProgram, BuildError> {
    let start = Instant::now();
    let mut module = if opts.link_libc {
        let combined = format!("{}\n{source}", overify_libc::DECLARATIONS);
        let mut m = overify_lang::compile(&combined)?;
        let libc = overify_libc::compile_libc(opts.resolved_libc())?;
        m.link(libc).map_err(BuildError::Link)?;
        m
    } else {
        overify_lang::compile(source)?
    };
    let stats = optimize_in_place(&mut module, opts);
    overify_ir::verify_module(&module).map_err(BuildError::Malformed)?;
    Ok(CompiledProgram {
        module,
        stats,
        level: opts.level,
        libc: opts.link_libc.then(|| opts.resolved_libc()),
        compile_time: start.elapsed(),
    })
}

/// Optimizes an already-built module (used when the caller assembled the
/// module itself, e.g. the coreutils harness).
pub fn compile_module(module: &mut Module, opts: &BuildOptions) -> OptStats {
    optimize_in_place(module, opts)
}

fn optimize_in_place(module: &mut Module, opts: &BuildOptions) -> OptStats {
    let mut pipe = PipelineOptions::level(opts.level);
    pipe.cost = opts.cost.clone();
    pipe.runtime_checks = opts.runtime_checks;
    pipe.annotations = opts.annotations;
    // Pipeline-internal verification is expensive; rely on the final check.
    pipe.verify_each_pass = false;
    overify_opt::optimize(module, &pipe)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libc_defaults_follow_level() {
        assert_eq!(
            BuildOptions::level(OptLevel::O0).resolved_libc(),
            LibcVariant::Native
        );
        assert_eq!(
            BuildOptions::level(OptLevel::O3).resolved_libc(),
            LibcVariant::Native
        );
        assert_eq!(
            BuildOptions::level(OptLevel::Overify).resolved_libc(),
            LibcVariant::Verify
        );
        let mut o = BuildOptions::level(OptLevel::Overify);
        o.libc = Some(LibcVariant::Native);
        assert_eq!(o.resolved_libc(), LibcVariant::Native);
    }

    #[test]
    fn compile_reports_errors() {
        let r = compile("int f( {", &BuildOptions::level(OptLevel::O0));
        assert!(matches!(r, Err(BuildError::Compile(_))));
    }

    #[test]
    fn freestanding_build_skips_libc() {
        let mut o = BuildOptions::level(OptLevel::O2);
        o.link_libc = false;
        let p = compile("int f(int x) { return x + 1; }", &o).unwrap();
        assert!(p.module.function("isspace").is_none());
        assert!(p.libc.is_none());
    }

    #[test]
    fn size_shrinks_with_optimization() {
        let src = "int f(int x) { int a = x + 0; int b = a * 1; return b - 0; }";
        let mut o0 = BuildOptions::level(OptLevel::O0);
        o0.link_libc = false;
        let mut o2 = BuildOptions::level(OptLevel::O2);
        o2.link_libc = false;
        let p0 = compile(src, &o0).unwrap();
        let p2 = compile(src, &o2).unwrap();
        assert!(p2.size() < p0.size());
    }
}
