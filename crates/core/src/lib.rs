//! `overify` — the `-OVERIFY` compiler switch (HotOS'13), reproduced.
//!
//! > *"We propose that compilers support a new kind of switch, `-OVERIFY`,
//! > that generates code optimized for the needs of verification tools."*
//!
//! This crate is the user-facing assembly of the reproduction:
//!
//! * [`compile`] builds MiniC source at any [`OptLevel`] (`-O0` … `-O3`,
//!   `-OVERIFY`), linking the matching libc variant and returning the
//!   transformation statistics of Table 3;
//! * [`verify_program`] runs the KLEE-style symbolic executor over the
//!   compiled module (Table 1's `t_verify`, `# paths`, `# instructions`);
//! * [`run_program`] executes it concretely under a CPU cost model
//!   (Table 1's `t_run`);
//! * [`BuildChain`] mirrors Figure 3: one source, three build
//!   configurations (debug, release, verification);
//! * [`verify_program_parallel`] runs the work-stealing multi-core driver
//!   over one program, and [`verify_suite`] fans a whole workload matrix
//!   (utilities × levels × input sizes) across a thread pool — the §4
//!   "spend hardware on the verifier" direction;
//! * the persistent verification store (`overify_store`, surfaced as
//!   [`Store`] / [`StoreConfig`] / `OVERIFY_STORE`) amortizes that work
//!   *across* runs: suite sweeps warm-start the shared solver cache from
//!   disk and skip jobs whose program content hash and configuration
//!   match a stored report — at whole-module grain when the program is
//!   byte-identical, and at **function-slice** grain
//!   ([`slice_fingerprint`]) when only code outside the entry's
//!   dependency slice changed, so editing one function re-verifies one
//!   slice.
//!
//! # Quickstart
//!
//! ```
//! use overify::{compile, verify_program, BuildOptions, OptLevel, SymConfig};
//!
//! let src = r#"
//!     int umain(unsigned char *in, int n) {
//!         int vowels = 0;
//!         for (int i = 0; in[i]; i++) {
//!             int c = tolower(in[i]);
//!             if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u')
//!                 vowels++;
//!         }
//!         return vowels;
//!     }
//! "#;
//!
//! // Compile for verification...
//! let prog = compile(src, &BuildOptions::level(OptLevel::Overify)).unwrap();
//! // ...and exhaustively explore all inputs of up to 2 bytes.
//! let report = verify_program(
//!     &prog,
//!     "umain",
//!     &SymConfig { input_bytes: 2, pass_len_arg: true, ..Default::default() },
//! );
//! assert!(report.exhausted);
//! assert!(report.bugs.is_empty());
//! ```

pub mod build;
pub mod chain;
pub mod suite;

pub use build::{compile, compile_module, BuildError, BuildOptions, CompiledProgram};
pub use chain::BuildChain;
pub use suite::{
    coreutils_jobs, estimated_job_cost, estimated_module_cost, prepare_job, verify_suite,
    verify_suite_stored, verify_suite_stored_with, verify_suite_with, JobProgress, PreparedJob,
    ProgressSnapshot, SuiteJob, SuiteJobResult, SuiteReport,
};

// Re-export the pieces a downstream user needs, so `overify` is the single
// dependency.
pub use overify_coreutils::{suite as coreutils_suite, Utility};
pub use overify_interp::{
    run_module, run_with_buffer, CpuCostModel, ExecConfig, ExecResult, Outcome,
};
pub use overify_ir::{
    module_fingerprint, slice_fingerprint, slice_fingerprints, CallGraph, Module,
};
pub use overify_libc::LibcVariant;
pub use overify_opt::{CostModel, OptLevel, OptStats, PipelineOptions};
pub use overify_store::{
    budget_signature, GcStats, JobRecord, JobState, ReportKey, RunLedger, SliceKey, Store,
    StoreConfig, StoreStats, StoredJob, VerdictPointer, VerdictRow,
};
pub use overify_symex::{
    default_threads, estimated_subtree_forks, verify_parallel, verify_parallel_budgeted,
    verify_parallel_cached, verify_parallel_frontier, Bug, BugKind, CacheStats, DonationPolicy,
    Frontier, FrontierProvider, FrontierSignal, FrontierStats, LocalFrontier, SearchStrategy,
    SharedBudget, SharedFrontier, SharedQueryCache, SolverStats, SymArg, SymConfig, TestCase,
    VerificationReport,
};

/// Symbolically verifies a compiled program's entry function.
///
/// This is the `KLEE` arrow in Figure 3: the verification build is handed
/// to the symbolic executor unchanged.
pub fn verify_program(prog: &CompiledProgram, entry: &str, cfg: &SymConfig) -> VerificationReport {
    overify_symex::verify(&prog.module, entry, cfg)
}

/// Symbolically verifies a compiled program with `workers` work-stealing
/// threads sharing one path frontier and one solver cache. Bug signatures,
/// canonical test sets and the explored path set are identical to the
/// serial run for every worker count.
pub fn verify_program_parallel(
    prog: &CompiledProgram,
    entry: &str,
    cfg: &SymConfig,
    workers: usize,
) -> VerificationReport {
    overify_symex::verify_parallel(&prog.module, entry, cfg, workers)
}

/// Runs a compiled program concretely on `input`, returning outputs and the
/// CPU-model cycle count (Table 1's `t_run`).
pub fn run_program(
    prog: &CompiledProgram,
    entry: &str,
    input: &[u8],
    extra_args: &[u64],
    cfg: &ExecConfig,
) -> ExecResult {
    overify_interp::run_with_buffer(&prog.module, entry, input, extra_args, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_all_levels() {
        let src = r#"
            int umain(unsigned char *in, int n) {
                int x = 0;
                for (int i = 0; in[i]; i++) {
                    if (isdigit(in[i])) x = x * 10 + (in[i] - '0');
                }
                return x;
            }
        "#;
        for level in OptLevel::all() {
            let prog = compile(src, &BuildOptions::level(level)).unwrap();
            let r = run_program(&prog, "umain", b"a1b2\0", &[4], &ExecConfig::default());
            assert_eq!(r.ret, Some(12), "{level}");
            let v = verify_program(
                &prog,
                "umain",
                &SymConfig {
                    input_bytes: 1,
                    pass_len_arg: true,
                    ..Default::default()
                },
            );
            assert!(v.exhausted, "{level}");
            assert!(v.bugs.is_empty(), "{level}: {:?}", v.bugs);
        }
    }

    #[test]
    fn overify_uses_verify_libc_by_default() {
        let src = "int umain(unsigned char *in, int n) { return isspace(in[0]); }";
        let o0 = compile(src, &BuildOptions::level(OptLevel::O0)).unwrap();
        let ov = compile(src, &BuildOptions::level(OptLevel::Overify)).unwrap();
        assert!(o0.module.global("__ctype_tab").is_some());
        assert!(ov.module.global("__ctype_tab").is_none());
    }
}
