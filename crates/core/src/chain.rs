//! The three-configuration build chain of Figure 3.
//!
//! > *"Developers usually create different build configurations... Our
//! > proposed -OVERIFY option adds a third build configuration, aimed at
//! > automated testing and verification."*

use crate::build::{compile, BuildError, BuildOptions, CompiledProgram};
use overify_opt::OptLevel;

/// One source, three builds: debug (`-O0 -g`-style), release (`-O3`), and
/// verification (`-OVERIFY`).
pub struct BuildChain {
    source: String,
    base: BuildOptions,
}

impl BuildChain {
    /// Creates a chain over `source`.
    pub fn new(source: impl Into<String>) -> BuildChain {
        BuildChain {
            source: source.into(),
            base: BuildOptions::level(OptLevel::O0),
        }
    }

    /// Disables libc linking for every configuration.
    pub fn freestanding(mut self) -> BuildChain {
        self.base.link_libc = false;
        self
    }

    fn build(&self, level: OptLevel) -> Result<CompiledProgram, BuildError> {
        let mut opts = self.base.clone();
        opts.level = level;
        opts.libc = None; // Each configuration picks its own default libc.
        compile(&self.source, &opts)
    }

    /// The development build: unoptimized, direct mapping to source.
    pub fn debug(&self) -> Result<CompiledProgram, BuildError> {
        self.build(OptLevel::O0)
    }

    /// The release build: optimized for CPU execution.
    pub fn release(&self) -> Result<CompiledProgram, BuildError> {
        self.build(OptLevel::O3)
    }

    /// The verification build: optimized for analysis tools.
    pub fn verification(&self) -> Result<CompiledProgram, BuildError> {
        self.build(OptLevel::Overify)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_interp::ExecConfig;

    #[test]
    fn three_builds_agree_behaviourally() {
        let chain = BuildChain::new(
            r#"
            int umain(unsigned char *in, int n) {
                int sum = 0;
                for (int i = 0; in[i]; i++) {
                    if (isdigit(in[i])) sum += in[i] - '0';
                }
                return sum;
            }
            "#,
        );
        let dbg = chain.debug().unwrap();
        let rel = chain.release().unwrap();
        let ver = chain.verification().unwrap();
        assert_eq!(dbg.level, OptLevel::O0);
        assert_eq!(rel.level, OptLevel::O3);
        assert_eq!(ver.level, OptLevel::Overify);

        let cfg = ExecConfig::default();
        for input in [&b"123\0"[..], b"a5b\0", b"\0"] {
            let n = (input.len() - 1) as u64;
            let r0 = crate::run_program(&dbg, "umain", input, &[n], &cfg);
            let r3 = crate::run_program(&rel, "umain", input, &[n], &cfg);
            let rv = crate::run_program(&ver, "umain", input, &[n], &cfg);
            assert_eq!(r0.ret, r3.ret);
            assert_eq!(r0.ret, rv.ret);
            assert_eq!(r0.output, rv.output);
        }
        // The release build should be the fastest to execute; the
        // verification build pays speculation costs (Table 1's trun row).
        // (Not asserted: cycle counts are workload-dependent at this size.)
    }
}
