//! The batch suite driver: fan whole verification jobs (utility ×
//! optimization level × input sizes) across a thread pool, each job
//! optionally running the work-stealing path-level driver internally.
//!
//! This is the production face of the paper's §4 outlook: verification
//! time is the budget that matters, so the harness must keep every core
//! busy across a whole workload matrix (the Figure 4 sweep, CI suites,
//! multi-level ablations) — not just within one program.

use crate::build::{compile_module, BuildOptions};
use overify_opt::OptLevel;
use overify_symex::{verify_parallel, BugKind, SymConfig, VerificationReport};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One verification job: build `source` at `level`, then verify `entry`
/// once per entry of `bytes` (the symbolic-input sweep of Figure 4).
#[derive(Clone, Debug)]
pub struct SuiteJob {
    /// Display name (utility name, test id, ...).
    pub name: String,
    /// MiniC source of the whole program.
    pub source: String,
    /// Entry function, `umain` by convention.
    pub entry: String,
    /// Build configuration (level, libc, cost-model overrides).
    pub opts: BuildOptions,
    /// Symbolic input sizes to sweep; `cfg.input_bytes` is overridden per
    /// run.
    pub bytes: Vec<usize>,
    /// Per-run verification configuration (budgets live here).
    pub cfg: SymConfig,
    /// Work-stealing workers *inside* each verification run (1 = serial
    /// paths; parallelism across jobs is the driver's job).
    pub path_workers: usize,
}

impl SuiteJob {
    /// A job for one suite utility at one level.
    pub fn utility(
        u: &overify_coreutils::Utility,
        level: OptLevel,
        bytes: &[usize],
        cfg: &SymConfig,
    ) -> SuiteJob {
        SuiteJob {
            name: u.name.to_string(),
            source: u.source.to_string(),
            entry: "umain".to_string(),
            opts: BuildOptions::level(level),
            bytes: bytes.to_vec(),
            cfg: cfg.clone(),
            path_workers: 1,
        }
    }
}

/// The outcome of one [`SuiteJob`].
#[derive(Clone, Debug)]
pub struct SuiteJobResult {
    pub name: String,
    pub level: OptLevel,
    /// Front-end + pipeline + link wall time.
    pub compile_time: Duration,
    /// One report per swept input size, in `bytes` order.
    pub runs: Vec<(usize, VerificationReport)>,
    /// Build failure, if any (then `runs` is empty).
    pub error: Option<String>,
}

impl SuiteJobResult {
    /// Total compile + verification time of the job.
    pub fn total_time(&self) -> Duration {
        self.compile_time + self.runs.iter().map(|(_, r)| r.time).sum::<Duration>()
    }

    /// True if every swept run covered its whole path space in budget.
    pub fn exhausted(&self) -> bool {
        self.error.is_none() && self.runs.iter().all(|(_, r)| r.exhausted)
    }

    /// Union bug signature over the sweep, sorted and deduplicated.
    pub fn bug_signature(&self) -> Vec<(BugKind, String)> {
        let mut sig: Vec<(BugKind, String)> = self
            .runs
            .iter()
            .flat_map(|(_, r)| r.bug_signature())
            .collect();
        sig.sort();
        sig.dedup();
        sig
    }

    /// The most-explored path's multiplicity across the sweep (1 on any
    /// correct run).
    pub fn max_path_multiplicity(&self) -> u64 {
        self.runs
            .iter()
            .map(|(_, r)| r.max_path_multiplicity())
            .max()
            .unwrap_or(0)
    }
}

/// The merged outcome of a suite run. `jobs` preserves submission order
/// regardless of which thread finished which job when.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    pub jobs: Vec<SuiteJobResult>,
    /// Wall-clock of the whole batch.
    pub wall: Duration,
    /// Thread count the batch ran with.
    pub threads: usize,
}

impl SuiteReport {
    /// Looks up a job result by name and level.
    pub fn job(&self, name: &str, level: OptLevel) -> Option<&SuiteJobResult> {
        self.jobs
            .iter()
            .find(|j| j.name == name && j.level == level)
    }

    /// Sum of per-job compile + verification time (CPU-ish total; compare
    /// with `wall` for the parallel speedup).
    pub fn total_time(&self) -> Duration {
        self.jobs.iter().map(|j| j.total_time()).sum()
    }
}

/// Runs a batch of verification jobs on `threads` worker threads and
/// reports per-job outcomes plus wall time.
///
/// Jobs are claimed from a shared counter (they are independent, so an
/// atomic cursor is contention-free stealing); path-level work stealing
/// happens inside each job when `path_workers > 1`. Thread interleaving
/// never changes per-job results — each job is verified by one
/// deterministic `verify_parallel` call.
pub fn verify_suite(jobs: Vec<SuiteJob>, threads: usize) -> SuiteReport {
    verify_suite_with(jobs, threads, |_, _, _| {})
}

/// [`verify_suite`] with a progress callback, invoked after each finished
/// job as `progress(result, finished_so_far, total)`.
pub fn verify_suite_with<F>(jobs: Vec<SuiteJob>, threads: usize, progress: F) -> SuiteReport
where
    F: Fn(&SuiteJobResult, usize, usize) + Sync,
{
    let threads = threads.max(1);
    let start = Instant::now();
    let total = jobs.len();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<SuiteJobResult>>> =
        (0..total).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(total.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    return;
                }
                let result = run_one(&jobs[i]);
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                progress(&result, finished, total);
                *results[i].lock().unwrap() = Some(result);
            });
        }
    });

    SuiteReport {
        jobs: results
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("job result missing"))
            .collect(),
        wall: start.elapsed(),
        threads,
    }
}

fn run_one(job: &SuiteJob) -> SuiteJobResult {
    let t0 = Instant::now();
    let built = if job.opts.link_libc {
        overify_libc::compile_and_link(&job.source, job.opts.resolved_libc())
            .map_err(|e| e.to_string())
    } else {
        overify_lang::compile(&job.source).map_err(|e| e.to_string())
    };
    let mut module = match built {
        Ok(m) => m,
        Err(e) => {
            return SuiteJobResult {
                name: job.name.clone(),
                level: job.opts.level,
                compile_time: t0.elapsed(),
                runs: Vec::new(),
                error: Some(e),
            }
        }
    };
    compile_module(&mut module, &job.opts);
    let compile_time = t0.elapsed();

    let runs = job
        .bytes
        .iter()
        .map(|&n| {
            let mut cfg = job.cfg.clone();
            cfg.input_bytes = n;
            (
                n,
                verify_parallel(&module, &job.entry, &cfg, job.path_workers),
            )
        })
        .collect();

    SuiteJobResult {
        name: job.name.clone(),
        level: job.opts.level,
        compile_time,
        runs,
        error: None,
    }
}

/// Jobs for the whole coreutils-style suite: every utility × every level,
/// sweeping `bytes` symbolic input sizes — the Figure 4 workload as one
/// batch.
pub fn coreutils_jobs(levels: &[OptLevel], bytes: &[usize], cfg: &SymConfig) -> Vec<SuiteJob> {
    overify_coreutils::suite()
        .iter()
        .flat_map(|u| {
            levels
                .iter()
                .map(|&l| SuiteJob::utility(u, l, bytes, cfg))
                .collect::<Vec<_>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SymConfig {
        SymConfig {
            pass_len_arg: true,
            ..Default::default()
        }
    }

    #[test]
    fn suite_runs_jobs_and_preserves_order() {
        let u0 = overify_coreutils::utility("echo").unwrap();
        let u1 = overify_coreutils::utility("wc_words").unwrap();
        let jobs = vec![
            SuiteJob::utility(u0, OptLevel::Overify, &[2], &small_cfg()),
            SuiteJob::utility(u1, OptLevel::O0, &[2, 3], &small_cfg()),
        ];
        let report = verify_suite(jobs, 4);
        assert_eq!(report.jobs.len(), 2);
        assert_eq!(report.jobs[0].name, "echo");
        assert_eq!(report.jobs[1].name, "wc_words");
        assert_eq!(report.jobs[1].runs.len(), 2);
        assert!(report.jobs.iter().all(|j| j.exhausted()));
        assert!(report.jobs.iter().all(|j| j.max_path_multiplicity() <= 1));
        assert!(report.job("wc_words", OptLevel::O0).is_some());
        assert!(report.job("wc_words", OptLevel::O3).is_none());
    }

    #[test]
    fn suite_reports_build_errors_without_panicking() {
        let mut job = SuiteJob::utility(
            overify_coreutils::utility("echo").unwrap(),
            OptLevel::O0,
            &[2],
            &small_cfg(),
        );
        job.source = "int umain(unsigned char *in, int n) { syntax error }".into();
        let report = verify_suite(vec![job], 2);
        assert!(report.jobs[0].error.is_some());
        assert!(!report.jobs[0].exhausted());
        assert!(report.jobs[0].runs.is_empty());
    }

    #[test]
    fn progress_callback_sees_every_job() {
        let u = overify_coreutils::utility("cat_n").unwrap();
        let jobs: Vec<SuiteJob> = [OptLevel::O0, OptLevel::O3, OptLevel::Overify]
            .iter()
            .map(|&l| SuiteJob::utility(u, l, &[2], &small_cfg()))
            .collect();
        let seen = Mutex::new(Vec::new());
        let report = verify_suite_with(jobs, 2, |r, done, total| {
            seen.lock().unwrap().push((r.name.clone(), done, total));
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 3);
        assert!(seen.iter().all(|(_, _, t)| *t == 3));
        assert_eq!(report.threads, 2);
    }
}
