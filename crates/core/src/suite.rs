//! The batch suite driver: fan whole verification jobs (utility ×
//! optimization level × input sizes) across a thread pool, each job
//! optionally running the work-stealing path-level driver internally.
//!
//! This is the production face of the paper's §4 outlook: verification
//! time is the budget that matters, so the harness must keep every core
//! busy across a whole workload matrix (the Figure 4 sweep, CI suites,
//! multi-level ablations) — not just within one program.
//!
//! The driver is also where the **persistent verification store**
//! (`overify_store`) plugs in: point `OVERIFY_STORE` at a directory (or
//! pass a [`Store`] to [`verify_suite_stored`]) and repeated sweeps
//! warm-start the shared solver cache from disk *and* skip whole jobs
//! whose program (canonical printed-IR fingerprint), pipeline level and
//! budget signature match a stored run — the stored report is returned
//! verbatim, flagged via [`SuiteJobResult::from_store`] and counted in
//! [`SuiteReport::store`].
//!
//! Content addressing works at **two grains**. The module key is the fast
//! path: identical whole program, identical outcome. When it misses, the
//! job falls back to its **function slice** key — the entry function's
//! dependency-sliced fingerprint (`overify_ir::slice_fingerprint`), which
//! covers exactly the code verification can observe: the entry, its
//! transitive callees, the globals they reference and their annotations.
//! An edit *outside* that slice changes the module fingerprint but not the
//! slice fingerprint, so the stored verdict is **spliced** in verbatim
//! (flagged [`SuiteJobResult::from_slice`]) and only genuinely changed
//! slices re-execute. Splicing is sound because a verification run is a
//! pure function of the slice: byte-for-byte, the spliced report equals
//! what a cold full run would produce.

use crate::build::{compile_module, BuildOptions};
use overify_ir::{Cfg, DomTree, LoopForest, Module};
use overify_obs::metrics::LazyCounter;
use overify_opt::OptLevel;
use overify_store::{
    budget_signature, ReportKey, RunLedger, SliceKey, Store, StoreConfig, StoreStats, StoredJob,
};
use overify_symex::{
    verify_parallel_budgeted, verify_parallel_frontier, BugKind, FrontierProvider, SharedBudget,
    SharedQueryCache, SymConfig, VerificationReport,
};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One verification job: build `source` at `level`, then verify `entry`
/// once per entry of `bytes` (the symbolic-input sweep of Figure 4).
#[derive(Clone, Debug)]
pub struct SuiteJob {
    /// Display name (utility name, test id, ...).
    pub name: String,
    /// MiniC source of the whole program.
    pub source: String,
    /// Entry function, `umain` by convention.
    pub entry: String,
    /// Build configuration (level, libc, cost-model overrides).
    pub opts: BuildOptions,
    /// Symbolic input sizes to sweep; `cfg.input_bytes` is overridden per
    /// run.
    pub bytes: Vec<usize>,
    /// Per-run verification configuration (budgets live here).
    pub cfg: SymConfig,
    /// Work-stealing workers *inside* each verification run (1 = serial
    /// paths; parallelism across jobs is the driver's job).
    pub path_workers: usize,
}

impl SuiteJob {
    /// A job for one suite utility at one level.
    pub fn utility(
        u: &overify_coreutils::Utility,
        level: OptLevel,
        bytes: &[usize],
        cfg: &SymConfig,
    ) -> SuiteJob {
        SuiteJob {
            name: u.name.to_string(),
            source: u.source.to_string(),
            entry: "umain".to_string(),
            opts: BuildOptions::level(level),
            bytes: bytes.to_vec(),
            cfg: cfg.clone(),
            path_workers: 1,
        }
    }
}

/// The outcome of one [`SuiteJob`].
#[derive(Clone, Debug)]
pub struct SuiteJobResult {
    pub name: String,
    pub level: OptLevel,
    /// Front-end + pipeline + link wall time (always fresh: a store hit
    /// still compiles — it must, to know the module fingerprint).
    pub compile_time: Duration,
    /// One report per swept input size, in `bytes` order.
    pub runs: Vec<(usize, VerificationReport)>,
    /// Build failure, if any (then `runs` is empty).
    pub error: Option<String>,
    /// True when `runs` was answered verbatim from the persistent report
    /// store (verification skipped).
    pub from_store: bool,
    /// True when the store answer came from the **function-slice** grain:
    /// the whole-module key missed (something in the module changed) but
    /// the entry function's dependency slice was untouched, so its stored
    /// verdict was spliced in verbatim. Implies `from_store`.
    pub from_slice: bool,
    /// The job's resource ledger: where its verification effort went
    /// (solver time, SAT solves, paths, bytes moved, contributing
    /// workers). `None` only on build failure. Persisted to the store's
    /// `ledgers.log` when a store is attached.
    pub ledger: Option<RunLedger>,
}

impl SuiteJobResult {
    /// Total compile + verification time of the job.
    pub fn total_time(&self) -> Duration {
        self.compile_time + self.runs.iter().map(|(_, r)| r.time).sum::<Duration>()
    }

    /// True if every swept run covered its whole path space in budget.
    pub fn exhausted(&self) -> bool {
        self.error.is_none() && self.runs.iter().all(|(_, r)| r.exhausted)
    }

    /// Union bug signature over the sweep, sorted and deduplicated.
    pub fn bug_signature(&self) -> Vec<(BugKind, String)> {
        let mut sig: Vec<(BugKind, String)> = self
            .runs
            .iter()
            .flat_map(|(_, r)| r.bug_signature())
            .collect();
        sig.sort();
        sig.dedup();
        sig
    }

    /// The most-explored path's multiplicity across the sweep (1 on any
    /// correct run).
    pub fn max_path_multiplicity(&self) -> u64 {
        self.runs
            .iter()
            .map(|(_, r)| r.max_path_multiplicity())
            .max()
            .unwrap_or(0)
    }
}

/// The merged outcome of a suite run. `jobs` preserves submission order
/// regardless of which thread finished which job when.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    pub jobs: Vec<SuiteJobResult>,
    /// Wall-clock of the whole batch.
    pub wall: Duration,
    /// Thread count the batch ran with.
    pub threads: usize,
    /// Persistent-store activity (report hits/misses, solver-cache
    /// loads/saves); `None` when the batch ran without a store.
    pub store: Option<StoreStats>,
}

impl SuiteReport {
    /// Looks up a job result by name and level.
    pub fn job(&self, name: &str, level: OptLevel) -> Option<&SuiteJobResult> {
        self.jobs
            .iter()
            .find(|j| j.name == name && j.level == level)
    }

    /// Sum of per-job compile + verification time (CPU-ish total; compare
    /// with `wall` for the parallel speedup).
    pub fn total_time(&self) -> Duration {
        self.jobs.iter().map(|j| j.total_time()).sum()
    }

    /// Number of jobs answered verbatim from the persistent report store
    /// (at either grain: whole-module hits and slice splices alike).
    pub fn store_hits(&self) -> usize {
        self.jobs.iter().filter(|j| j.from_store).count()
    }

    /// Number of jobs answered by **splicing** a stored function-slice
    /// verdict: the module key missed but the entry's dependency slice was
    /// unchanged. A subset of [`SuiteReport::store_hits`].
    pub fn splice_hits(&self) -> usize {
        self.jobs.iter().filter(|j| j.from_slice).count()
    }
}

/// Runs a batch of verification jobs on `threads` worker threads and
/// reports per-job outcomes plus wall time.
///
/// Jobs are claimed from a shared counter (they are independent, so an
/// atomic cursor is contention-free stealing); path-level work stealing
/// happens inside each job when `path_workers > 1`. Thread interleaving
/// never changes per-job results — each job is verified by one
/// deterministic `verify_parallel` call.
///
/// When the `OVERIFY_STORE` environment variable names a directory, the
/// batch runs against a persistent store there (see
/// [`verify_suite_stored`]); an unusable store path is reported to stderr
/// and ignored.
pub fn verify_suite(jobs: Vec<SuiteJob>, threads: usize) -> SuiteReport {
    verify_suite_with(jobs, threads, |_, _, _| {})
}

/// [`verify_suite`] with a progress callback, invoked after each finished
/// job as `progress(result, finished_so_far, total)`.
pub fn verify_suite_with<F>(jobs: Vec<SuiteJob>, threads: usize, progress: F) -> SuiteReport
where
    F: Fn(&SuiteJobResult, usize, usize) + Sync,
{
    let store = StoreConfig::from_env().and_then(|cfg| match Store::open(cfg) {
        Ok(s) => Some(s),
        Err(e) => {
            overify_obs::warn!(
                "suite",
                "OVERIFY_STORE is unusable ({e}); running without a store"
            );
            None
        }
    });
    verify_suite_stored_with(jobs, threads, store.as_ref(), progress)
}

/// [`verify_suite`] against a caller-owned persistent [`Store`]: the
/// fleet-wide solver cache is warm-started from the store's verdict log
/// (and persisted back after the batch), and jobs whose
/// `(module fingerprint, level, budget signature)` key matches a stored
/// artifact skip verification entirely, returning the stored report
/// verbatim. Pass `None` to run storeless.
pub fn verify_suite_stored(
    jobs: Vec<SuiteJob>,
    threads: usize,
    store: Option<&Store>,
) -> SuiteReport {
    verify_suite_stored_with(jobs, threads, store, |_, _, _| {})
}

/// [`verify_suite_stored`] with a progress callback.
pub fn verify_suite_stored_with<F>(
    jobs: Vec<SuiteJob>,
    threads: usize,
    store: Option<&Store>,
    progress: F,
) -> SuiteReport
where
    F: Fn(&SuiteJobResult, usize, usize) + Sync,
{
    overify_obs::init();
    let threads = threads.max(1);
    let start = Instant::now();
    // Warm-start one fleet-wide solver cache from the store. Verdicts are
    // keyed by pool-independent structural fingerprints, so they are
    // valid across jobs, runs and processes alike; sharing the cache
    // across the whole batch also lets concurrent jobs of the same
    // program (different levels sweep identical library formulas) serve
    // each other within the run.
    let warm: Option<Arc<SharedQueryCache>> = store.map(|s| s.warm_solver_cache());
    let total = jobs.len();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<SuiteJobResult>>> =
        (0..total).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(total.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    return;
                }
                let result = run_one(&jobs[i], store, warm.as_ref());
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                progress(&result, finished, total);
                *results[i].lock().unwrap() = Some(result);
            });
        }
    });

    if let (Some(s), Some(cache)) = (store, &warm) {
        if let Err(e) = s.save_solver_cache(cache) {
            overify_obs::error!("suite", "failed to persist the solver cache: {e}");
        }
    }

    SuiteReport {
        jobs: results
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("job result missing"))
            .collect(),
        wall: start.elapsed(),
        threads,
        store: store.map(|s| s.stats()),
    }
}

fn run_one(
    job: &SuiteJob,
    store: Option<&Store>,
    warm: Option<&Arc<SharedQueryCache>>,
) -> SuiteJobResult {
    let prepared = match prepare_job(job, store.is_some()) {
        Ok(p) => p,
        Err(failed) => return failed,
    };
    if let Some(s) = store {
        if let Some(hit) = prepared.load_stored(s) {
            return hit;
        }
    }
    prepared.execute(store, warm, None)
}

/// Live, externally-sampleable progress of one executing job: the number
/// of swept runs finished plus fleet-wide path/bug/instruction counters of
/// the run in flight. This is the per-job observability hook behind
/// [`verify_suite_stored_with`]'s per-*job* callback: a long-running
/// service (or a TUI) holds the handle and samples it on its own clock
/// while [`PreparedJob::execute`] works — streaming progress without
/// perturbing the run.
#[derive(Default)]
pub struct JobProgress {
    runs_total: AtomicUsize,
    runs_done: AtomicUsize,
    base_paths: AtomicU64,
    base_bugs: AtomicU64,
    base_instructions: AtomicU64,
    current: Mutex<Option<Arc<SharedBudget>>>,
}

/// One point-in-time sample of a [`JobProgress`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Swept input sizes fully verified so far.
    pub runs_done: usize,
    /// Swept input sizes the job verifies in total.
    pub runs_total: usize,
    /// Paths ended so far (completed + buggy + killed), including the run
    /// in flight.
    pub paths: u64,
    /// Buggy path ends so far (raw, pre-deduplication).
    pub bugs: u64,
    /// Interpreted instructions flushed so far.
    pub instructions: u64,
}

impl JobProgress {
    /// A fresh, all-zero progress handle.
    pub fn new() -> JobProgress {
        JobProgress::default()
    }

    /// Samples the job's progress right now. Snapshots are monotone: the
    /// lock over the in-flight budget is held across both reads, and
    /// [`JobProgress::finish_run`] folds the budget into the base under
    /// the same lock, so a sample sees each counter exactly once.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let current = self.current.lock().unwrap();
        let (paths, bugs, instructions) = match &*current {
            Some(b) => (b.paths(), b.bugs(), b.instructions()),
            None => (0, 0, 0),
        };
        ProgressSnapshot {
            runs_done: self.runs_done.load(Ordering::Relaxed),
            runs_total: self.runs_total.load(Ordering::Relaxed),
            paths: self.base_paths.load(Ordering::Relaxed) + paths,
            bugs: self.base_bugs.load(Ordering::Relaxed) + bugs,
            instructions: self.base_instructions.load(Ordering::Relaxed) + instructions,
        }
    }

    fn begin(&self, total: usize) {
        self.runs_total.store(total, Ordering::Relaxed);
    }

    fn start_run(&self, budget: &Arc<SharedBudget>) {
        *self.current.lock().unwrap() = Some(budget.clone());
    }

    fn finish_run(&self) {
        let mut current = self.current.lock().unwrap();
        if let Some(b) = current.take() {
            self.base_paths.fetch_add(b.paths(), Ordering::Relaxed);
            self.base_bugs.fetch_add(b.bugs(), Ordering::Relaxed);
            self.base_instructions
                .fetch_add(b.instructions(), Ordering::Relaxed);
        }
        self.runs_done.fetch_add(1, Ordering::Relaxed);
    }
}

/// A [`SuiteJob`] after its build phase: the optimized module, the fresh
/// compile time, and (when content addressing is on) the job's store key.
///
/// Splitting the job lifecycle into *prepare* (compile + content-address)
/// → *lookup* ([`PreparedJob::load_stored`]) → *execute* is what lets a
/// resident service answer store hits immediately on the connection
/// thread and hand only the misses to its cost-ordered scheduler.
#[derive(Debug)]
pub struct PreparedJob {
    job: SuiteJob,
    /// The optimized, libc-linked module the job verifies.
    pub module: Module,
    /// Front-end + pipeline + link wall time of this preparation.
    pub compile_time: Duration,
    /// The job's whole-module content address; `None` when prepared
    /// without a store.
    pub key: Option<ReportKey>,
    /// The job's **function-slice** content address: the entry function's
    /// dependency-sliced fingerprint plus the same level and budget
    /// signature. `None` when prepared without a store or when the entry
    /// function is absent from the built module (the run would fail
    /// anyway). This is the key that survives edits outside the slice.
    pub slice_key: Option<SliceKey>,
    /// The module-feature static cost estimate ([`estimated_module_cost`])
    /// — free at prepare time, used by schedulers to price never-seen
    /// work.
    pub static_cost: u128,
}

/// Builds a job's module: front end, optional libc link, pipeline.
fn build_job_module(job: &SuiteJob) -> Result<Module, String> {
    let built = if job.opts.link_libc {
        overify_libc::compile_and_link(&job.source, job.opts.resolved_libc())
            .map_err(|e| e.to_string())
    } else {
        overify_lang::compile(&job.source).map_err(|e| e.to_string())
    };
    let mut module = built?;
    compile_module(&mut module, &job.opts);
    Ok(module)
}

/// Compiles a job and computes its content address (when `with_key`).
/// A build failure is returned as the job's finished [`SuiteJobResult`].
// The Err IS the deliverable (a finished result), not an error detour,
// and call sites consume it by value — boxing would only move the copy.
#[allow(clippy::result_large_err)]
pub fn prepare_job(job: &SuiteJob, with_key: bool) -> Result<PreparedJob, SuiteJobResult> {
    let t0 = Instant::now();
    let module = match build_job_module(job) {
        Ok(m) => m,
        Err(e) => {
            return Err(SuiteJobResult {
                name: job.name.clone(),
                level: job.opts.level,
                compile_time: t0.elapsed(),
                runs: Vec::new(),
                error: Some(e),
                from_store: false,
                from_slice: false,
                ledger: None,
            })
        }
    };
    let compile_time = t0.elapsed();

    // The content address of this job: the canonical printed-IR
    // fingerprint plus everything else that shapes the run. A stored
    // artifact under the same key *is* this job's outcome.
    let budget_sig =
        with_key.then(|| budget_signature(&job.entry, &job.bytes, job.path_workers, &job.cfg));
    let key = budget_sig.map(|budget_sig| ReportKey {
        module_fp: overify_ir::module_fingerprint(&module),
        level: job.opts.level,
        budget_sig,
    });
    // The finer grain: the entry function's dependency-sliced fingerprint.
    // It hashes exactly the code a verification run can observe, so a
    // stored verdict under it stays valid across edits elsewhere in the
    // module.
    let slice_key = budget_sig.and_then(|budget_sig| {
        Some(SliceKey {
            slice_fp: overify_ir::slice_fingerprint(&module, &job.entry)?,
            level: job.opts.level,
            budget_sig,
        })
    });
    let static_cost = estimated_module_cost(&module, job);
    Ok(PreparedJob {
        job: job.clone(),
        module,
        compile_time,
        key,
        slice_key,
        static_cost,
    })
}

impl PreparedJob {
    /// The job this preparation came from.
    pub fn job(&self) -> &SuiteJob {
        &self.job
    }

    /// Looks the job up in the persistent report store, finest-sufficient
    /// grain first in cost, coarsest first in order:
    ///
    /// 1. the **whole-module** key — identical program, identical outcome
    ///    (flagged [`SuiteJobResult::from_store`]);
    /// 2. the **function-slice** key — the module changed but the entry's
    ///    dependency slice did not, so its stored verdict is spliced in
    ///    verbatim (flagged `from_store` *and*
    ///    [`SuiteJobResult::from_slice`]).
    ///
    /// Either hit skips verification entirely; the spliced report is
    /// byte-identical to what a cold full run of this job would produce,
    /// because a run is a pure function of the entry's slice.
    pub fn load_stored(&self, store: &Store) -> Option<SuiteJobResult> {
        let (stored, from_slice) = match self.key.as_ref().and_then(|k| store.load_report(k)) {
            Some(stored) => (stored, false),
            None => {
                let key = self.slice_key.as_ref()?;
                (store.load_slice(key)?, true)
            }
        };
        // A store hit's ledger records what the answer *cost*: nothing
        // executed, so the solver and path columns stay zero; the report
        // bytes pulled from the store are the run's data movement.
        let ledger = RunLedger {
            name: self.job.name.clone(),
            runs: stored.runs.len() as u64,
            bytes_moved: stored
                .runs
                .iter()
                .map(|(_, r)| r.canonical_bytes().len() as u64)
                .sum(),
            from_store: true,
            from_slice,
            ..RunLedger::default()
        };
        Some(SuiteJobResult {
            name: self.job.name.clone(),
            level: self.job.opts.level,
            compile_time: self.compile_time,
            runs: stored.runs,
            error: None,
            from_store: true,
            from_slice,
            ledger: Some(ledger),
        })
    }

    /// Verifies the prepared job: one work-stealing run per swept input
    /// size, against the fleet-wide solver cache `warm` when given.
    ///
    /// With a `store`, a *complete* outcome is persisted as a report
    /// artifact and the observed verification cost is recorded as per-key
    /// scheduling metadata either way. With a `progress` handle, live
    /// counters are published throughout for concurrent sampling.
    pub fn execute(
        &self,
        store: Option<&Store>,
        warm: Option<&Arc<SharedQueryCache>>,
        progress: Option<&JobProgress>,
    ) -> SuiteJobResult {
        self.execute_with(store, warm, progress, None)
    }

    /// [`PreparedJob::execute`] with a [`FrontierProvider`]: each swept
    /// run is driven through the frontier the provider hands back, so a
    /// dispatcher (the verification daemon) can substitute a
    /// [`overify_symex::SharedFrontier`] and lease subtree jobs to remote
    /// worker processes mid-run. Results are bit-identical in their
    /// deterministic projection regardless of how the frontier was
    /// shared.
    pub fn execute_with(
        &self,
        store: Option<&Store>,
        warm: Option<&Arc<SharedQueryCache>>,
        progress: Option<&JobProgress>,
        frontiers: Option<&dyn FrontierProvider>,
    ) -> SuiteJobResult {
        let job = &self.job;
        if let Some(p) = progress {
            p.begin(job.bytes.len());
        }
        let fresh_cache;
        let cache = match warm {
            Some(c) => c,
            None => {
                fresh_cache = Arc::new(SharedQueryCache::new());
                &fresh_cache
            }
        };
        let verify_start = Instant::now();
        let runs: Vec<(usize, VerificationReport)> = job
            .bytes
            .iter()
            .map(|&n| {
                let mut cfg = job.cfg.clone();
                cfg.input_bytes = n;
                let budget = Arc::new(SharedBudget::new(&cfg));
                if let Some(p) = progress {
                    p.start_run(&budget);
                }
                let report = match frontiers {
                    Some(provider) => {
                        let frontier = provider.begin_run(&cfg, &budget);
                        let report = verify_parallel_frontier(
                            &self.module,
                            &job.entry,
                            &cfg,
                            job.path_workers,
                            cache,
                            &budget,
                            &*frontier,
                        );
                        provider.end_run(frontier);
                        report
                    }
                    None => verify_parallel_budgeted(
                        &self.module,
                        &job.entry,
                        &cfg,
                        job.path_workers,
                        cache,
                        &budget,
                    ),
                };
                if let Some(p) = progress {
                    p.finish_run();
                }
                (n, report)
            })
            .collect();

        let elapsed = verify_start.elapsed();

        // The run's resource ledger: where the verification effort went.
        // Contributing remote workers come from the frontier provider (the
        // daemon's run publisher tracks which workers completed leases).
        let mut workers: Vec<String> = frontiers.map(|p| p.contributors()).unwrap_or_default();
        workers.sort();
        workers.dedup();
        let ledger = RunLedger {
            name: job.name.clone(),
            verify_ns: elapsed.as_nanos().min(u64::MAX as u128) as u64,
            solver_ns: runs.iter().map(|(_, r)| r.solver.solver_ns).sum(),
            solver_queries: runs.iter().map(|(_, r)| r.solver.queries).sum(),
            sat_solves: runs.iter().map(|(_, r)| r.solver.solved_sat).sum(),
            paths: runs.iter().map(|(_, r)| r.total_paths()).sum(),
            instructions: runs.iter().map(|(_, r)| r.instructions).sum(),
            runs: runs.len() as u64,
            bytes_moved: runs
                .iter()
                .map(|(_, r)| r.canonical_bytes().len() as u64)
                .sum(),
            from_store: false,
            from_slice: false,
            workers,
        };
        // Fleet reconciliation counters: everything a fresh run charges to
        // its ledger is also charged here, at this single site, so a
        // scrape's `overify_ledger_*` totals must equal the sum of the
        // persisted ledgers — the telemetry plane's audit invariant.
        static LEDGER_RUNS: LazyCounter = LazyCounter::new("overify_ledger_runs_total");
        static LEDGER_PATHS: LazyCounter = LazyCounter::new("overify_ledger_paths_total");
        static LEDGER_SOLVER_NS: LazyCounter = LazyCounter::new("overify_ledger_solver_ns_total");
        static LEDGER_SAT: LazyCounter = LazyCounter::new("overify_ledger_sat_solves_total");
        static LEDGER_BYTES: LazyCounter = LazyCounter::new("overify_ledger_bytes_moved_total");
        LEDGER_RUNS.add(ledger.runs);
        LEDGER_PATHS.add(ledger.paths);
        LEDGER_SOLVER_NS.add(ledger.solver_ns);
        LEDGER_SAT.add(ledger.sat_solves);
        LEDGER_BYTES.add(ledger.bytes_moved);

        if let Some(s) = store {
            if let Err(e) = s.record_ledger(&ledger) {
                overify_obs::warn!("suite", "failed to record ledger for {}: {e}", job.name);
            }
            // Observed-cost feedback for the store-aware scheduler —
            // recorded for truncated runs too (they return as misses, and
            // their wall time is the scheduling signal). Both grains are
            // priced: the module record covers an exact resubmission, the
            // slice record survives edits elsewhere in the module so the
            // scheduler can price a changed-slice remainder.
            if let Some(key) = &self.key {
                if let Err(e) = s.record_cost(key, elapsed) {
                    overify_obs::warn!("suite", "failed to record cost for {}: {e}", job.name);
                }
            }
            if let Some(slice_key) = &self.slice_key {
                if let Err(e) = s.record_slice_cost(slice_key, elapsed) {
                    overify_obs::warn!(
                        "suite",
                        "failed to record slice cost for {}: {e}",
                        job.name
                    );
                }
            }
            // Only *complete* runs are pure functions of the content
            // address: a budget-truncated report depends on wall clock and
            // thread interleaving (where exactly exploration stopped), so
            // persisting it would replay a partial answer — and mask its
            // missed bugs — forever. Truncated jobs stay misses and are
            // recomputed. Complete outcomes are persisted at both grains.
            if runs.iter().all(|(_, r)| !r.timed_out) {
                let stored = StoredJob { runs: runs.clone() };
                if let Some(key) = &self.key {
                    if let Err(e) = s.save_report(key, &stored) {
                        overify_obs::error!(
                            "suite",
                            "failed to store report for {}: {e}",
                            job.name
                        );
                    }
                }
                if let Some(slice_key) = &self.slice_key {
                    if let Err(e) = s.save_slice(slice_key, &stored) {
                        overify_obs::error!("suite", "failed to store slice for {}: {e}", job.name);
                    }
                }
            }
        }

        SuiteJobResult {
            name: job.name.clone(),
            level: job.opts.level,
            compile_time: self.compile_time,
            runs,
            error: None,
            from_store: false,
            from_slice: false,
            ledger: Some(ledger),
        }
    }
}

/// The exponential weight of a job's symbolic-input sweep: path counts
/// grow geometrically with symbolic input bytes.
fn sweep_weight(bytes: &[usize]) -> u128 {
    bytes
        .iter()
        .map(|&b| 1u128 << (2 * b.min(24) as u32))
        .sum::<u128>()
        .max(1)
}

/// A deterministic, platform-independent static cost estimate of a
/// *compiled* job — the price a scheduler gives never-seen work.
///
/// Earlier revisions priced jobs by source size × byte budget; the
/// compiled module is available at [`prepare_job`] time and predicts
/// verification cost far better, so the estimate now reads the features
/// that actually drive symbolic execution:
///
/// * **instruction count** — every interpreted instruction costs time,
///   and unoptimized builds carry more of them (the paper's premise);
/// * **loop count** — each natural loop multiplies the explored path
///   count, so loops dominate the exponent;
/// * **annotation density** — `-OVERIFY` metadata (value ranges, trip
///   counts) prunes solver queries and bounds loops, discounting the
///   estimate the more facts the compiler proved per instruction.
///
/// The swept input sizes still enter exponentially. Deterministic because
/// compilation is (canonical printed IR is content-addressed on exactly
/// that property).
pub fn estimated_module_cost(m: &Module, job: &SuiteJob) -> u128 {
    let mut instructions: u128 = 0;
    let mut loops: u128 = 0;
    let mut facts: u128 = 0;
    for f in &m.functions {
        if f.is_declaration {
            continue;
        }
        // Block instruction lists exclude tombstones; +1 per terminator.
        instructions += f
            .blocks
            .iter()
            .map(|b| b.insts.len() as u128 + 1)
            .sum::<u128>();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(&cfg);
        loops += LoopForest::compute(&cfg, &dom).loops.len() as u128;
        facts += f.annotations.fact_count() as u128;
    }
    let instructions = instructions.max(1);
    // Loops multiply path counts; annotation facts prune them. The
    // density discount saturates at 8× so a heavily-annotated build can
    // never be priced at zero.
    let weight = instructions * (1 + 4 * loops);
    let density = (16 * facts / instructions).min(7);
    (weight * sweep_weight(&job.bytes)) / (1 + density)
}

/// A deterministic static cost estimate of an *uncompiled* job — the
/// enumeration-ordering estimate [`coreutils_jobs`] uses to emit jobs
/// cost-descending so long jobs start first.
///
/// Deliberately compile-free: enumerating a workload (a thin client
/// building specs to submit, a bench listing jobs) must not build every
/// module just to order them. Source size stands in for program size,
/// the swept byte sizes enter exponentially, and lower optimization
/// levels weigh more (the paper's premise: unoptimized builds verify
/// slowest). Once a job *is* compiled, [`estimated_module_cost`] — free
/// at [`prepare_job`] time as [`PreparedJob`]'s `static_cost` — prices it
/// far better, and that is what the verification service's scheduler
/// uses for never-seen work.
pub fn estimated_job_cost(job: &SuiteJob) -> u128 {
    let level_weight: u128 = match job.opts.level {
        OptLevel::O0 => 8,
        OptLevel::O1 => 6,
        OptLevel::O2 => 5,
        OptLevel::O3 => 4,
        OptLevel::Overify => 1,
    };
    (job.source.len() as u128).max(1) * level_weight * sweep_weight(&job.bytes)
}

/// Jobs for the whole coreutils-style suite: every utility × every level,
/// sweeping `bytes` symbolic input sizes — the Figure 4 workload as one
/// batch.
///
/// Jobs are emitted in deterministic cost-descending order (estimate:
/// [`estimated_job_cost`], ties broken by name then level) so the longest
/// jobs start first — the classic longest-processing-time heuristic for
/// batch makespan — and cold sweeps dispatch in the same order on every
/// platform, matching the service scheduler's cost-first policy.
pub fn coreutils_jobs(levels: &[OptLevel], bytes: &[usize], cfg: &SymConfig) -> Vec<SuiteJob> {
    // Decorate with the estimate once per job so the sort never
    // re-derives it per comparison.
    let mut jobs: Vec<(u128, SuiteJob)> = overify_coreutils::suite()
        .iter()
        .flat_map(|u| {
            levels
                .iter()
                .map(|&l| SuiteJob::utility(u, l, bytes, cfg))
                .collect::<Vec<_>>()
        })
        .map(|j| (estimated_job_cost(&j), j))
        .collect();
    jobs.sort_by(|(ca, a), (cb, b)| {
        cb.cmp(ca)
            .then_with(|| a.name.cmp(&b.name))
            .then_with(|| a.opts.level.cmp(&b.opts.level))
    });
    jobs.into_iter().map(|(_, j)| j).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SymConfig {
        SymConfig {
            pass_len_arg: true,
            ..Default::default()
        }
    }

    #[test]
    fn suite_runs_jobs_and_preserves_order() {
        let u0 = overify_coreutils::utility("echo").unwrap();
        let u1 = overify_coreutils::utility("wc_words").unwrap();
        let jobs = vec![
            SuiteJob::utility(u0, OptLevel::Overify, &[2], &small_cfg()),
            SuiteJob::utility(u1, OptLevel::O0, &[2, 3], &small_cfg()),
        ];
        let report = verify_suite(jobs, 4);
        assert_eq!(report.jobs.len(), 2);
        assert_eq!(report.jobs[0].name, "echo");
        assert_eq!(report.jobs[1].name, "wc_words");
        assert_eq!(report.jobs[1].runs.len(), 2);
        assert!(report.jobs.iter().all(|j| j.exhausted()));
        assert!(report.jobs.iter().all(|j| j.max_path_multiplicity() <= 1));
        assert!(report.job("wc_words", OptLevel::O0).is_some());
        assert!(report.job("wc_words", OptLevel::O3).is_none());
    }

    #[test]
    fn suite_reports_build_errors_without_panicking() {
        let mut job = SuiteJob::utility(
            overify_coreutils::utility("echo").unwrap(),
            OptLevel::O0,
            &[2],
            &small_cfg(),
        );
        job.source = "int umain(unsigned char *in, int n) { syntax error }".into();
        let report = verify_suite(vec![job], 2);
        assert!(report.jobs[0].error.is_some());
        assert!(!report.jobs[0].exhausted());
        assert!(report.jobs[0].runs.is_empty());
    }

    #[test]
    fn store_round_trip_skips_and_reproduces_jobs() {
        let root = std::env::temp_dir().join(format!("overify_suite_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let jobs = || {
            vec![
                SuiteJob::utility(
                    overify_coreutils::utility("echo").unwrap(),
                    OptLevel::Overify,
                    &[2],
                    &small_cfg(),
                ),
                // A two-symbol branch condition cannot be decided by the
                // single-symbol enumeration layer, so it reaches the SAT
                // layer and publishes verdicts into the shared cache —
                // guaranteeing the log has something to persist.
                SuiteJob {
                    name: "twosym".into(),
                    source: "int umain(unsigned char *in, int n) { \
                             if (in[0] + in[1] == 100) return 1; return 0; }"
                        .into(),
                    entry: "umain".into(),
                    opts: BuildOptions::level(OptLevel::O0),
                    bytes: vec![2],
                    cfg: small_cfg(),
                    path_workers: 1,
                },
            ]
        };

        let cold_store = Store::open(StoreConfig::at(&root)).unwrap();
        let cold = verify_suite_stored(jobs(), 2, Some(&cold_store));
        assert_eq!(cold.store_hits(), 0);
        let stats = cold.store.expect("ran with a store");
        assert_eq!(stats.report_misses, 2);
        assert_eq!(stats.reports_saved, 2);
        assert!(stats.solver_entries_saved > 0, "verdicts persisted");

        // A fresh handle on the same directory: every job skips.
        let warm_store = Store::open(StoreConfig::at(&root)).unwrap();
        let warm = verify_suite_stored(jobs(), 2, Some(&warm_store));
        assert_eq!(warm.store_hits(), 2);
        assert!(warm.jobs.iter().all(|j| j.from_store));
        let wstats = warm.store.unwrap();
        assert_eq!(wstats.report_hits, 2);
        assert!(wstats.solver_entries_loaded > 0, "warm-started");
        for (a, b) in cold.jobs.iter().zip(&warm.jobs) {
            assert_eq!(a.runs, b.runs, "{}: stored reports verbatim", a.name);
        }

        // A different budget is a different content address: no hit.
        let mut bigger = jobs();
        bigger.truncate(1);
        bigger[0].bytes = vec![3];
        let other_store = Store::open(StoreConfig::at(&root)).unwrap();
        let other = verify_suite_stored(bigger, 1, Some(&other_store));
        assert_eq!(other.store_hits(), 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn slice_splice_answers_edits_outside_the_entry_slice() {
        let root =
            std::env::temp_dir().join(format!("overify_suite_splice_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let job_with = |tail: &str| SuiteJob {
            name: "spliced".into(),
            source: format!(
                "int umain(unsigned char *in, int n) {{ \
                 if (in[0] == 'x') return 1; return 0; }}\n{tail}"
            ),
            entry: "umain".into(),
            opts: BuildOptions::level(OptLevel::O0),
            bytes: vec![2],
            cfg: small_cfg(),
            path_workers: 1,
        };
        let before = job_with("int helper(unsigned char *in, int n) { return 7; }");
        let after = job_with("int helper(unsigned char *in, int n) { return 8; }");

        let store = Store::open(StoreConfig::at(&root)).unwrap();
        let cold = verify_suite_stored(vec![before.clone()], 1, Some(&store));
        assert!(!cold.jobs[0].from_store);
        assert_eq!(cold.store.as_ref().unwrap().slices_saved, 1);

        // The edit touched only the (uncalled) helper: the module
        // fingerprint moves, the entry's slice fingerprint does not.
        let pb = prepare_job(&before, true).unwrap();
        let pa = prepare_job(&after, true).unwrap();
        assert_ne!(pb.key.as_ref().unwrap(), pa.key.as_ref().unwrap());
        assert_eq!(
            pb.slice_key.as_ref().unwrap(),
            pa.slice_key.as_ref().unwrap()
        );

        // Warm sweep of the edited program: the module key misses, the
        // slice key splices, and the spliced report is byte-identical to
        // a cold full run of the edited program.
        let store2 = Store::open(StoreConfig::at(&root)).unwrap();
        let warm = verify_suite_stored(vec![after.clone()], 1, Some(&store2));
        assert!(warm.jobs[0].from_store);
        assert!(warm.jobs[0].from_slice);
        assert_eq!(warm.store_hits(), 1);
        assert_eq!(warm.splice_hits(), 1);
        let wstats = warm.store.as_ref().unwrap();
        assert_eq!(wstats.report_misses, 1);
        assert_eq!(wstats.splice_hits, 1);

        let fresh = verify_suite_stored(vec![after], 1, None);
        assert!(!fresh.jobs[0].from_store);
        for ((n_a, r_a), (n_b, r_b)) in warm.jobs[0].runs.iter().zip(&fresh.jobs[0].runs) {
            assert_eq!(n_a, n_b);
            assert_eq!(
                r_a.canonical_bytes(),
                r_b.canonical_bytes(),
                "spliced report must equal a cold full run byte-for-byte"
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_runs_are_never_persisted() {
        let root = std::env::temp_dir().join(format!(
            "overify_suite_store_truncated_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let job = || {
            // 5 symbolic bytes push the job past the budget-flush
            // interval, so the 50-instruction ceiling genuinely trips.
            let mut j = SuiteJob::utility(
                overify_coreutils::utility("wc_words").unwrap(),
                OptLevel::O0,
                &[5],
                &small_cfg(),
            );
            // An instruction budget far below what the job needs: the run
            // is truncated, so its report is not a pure function of the
            // content address and must never be stored.
            j.cfg.max_instructions = 50;
            j
        };
        let store = Store::open(StoreConfig::at(&root)).unwrap();
        let first = verify_suite_stored(vec![job()], 1, Some(&store));
        assert!(first.jobs[0].runs.iter().any(|(_, r)| r.timed_out));
        assert_eq!(first.store.unwrap().reports_saved, 0);

        let store2 = Store::open(StoreConfig::at(&root)).unwrap();
        let second = verify_suite_stored(vec![job()], 1, Some(&store2));
        assert!(!second.jobs[0].from_store, "truncated run must recompute");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn coreutils_jobs_emit_in_deterministic_cost_descending_order() {
        let levels = [OptLevel::O0, OptLevel::O3, OptLevel::Overify];
        let jobs = coreutils_jobs(&levels, &[2, 3], &small_cfg());
        assert_eq!(jobs.len(), overify_coreutils::suite().len() * levels.len());
        for pair in jobs.windows(2) {
            let (a, b) = (estimated_job_cost(&pair[0]), estimated_job_cost(&pair[1]));
            assert!(a >= b, "jobs out of cost order: {a} then {b}");
            if a == b {
                let ka = (&pair[0].name, pair[0].opts.level);
                let kb = (&pair[1].name, pair[1].opts.level);
                assert!(ka < kb, "tie not broken deterministically");
            }
        }
        // Same inputs, same order — byte-for-byte.
        let again = coreutils_jobs(&levels, &[2, 3], &small_cfg());
        let names = |v: &[SuiteJob]| -> Vec<(String, OptLevel)> {
            v.iter().map(|j| (j.name.clone(), j.opts.level)).collect()
        };
        assert_eq!(names(&jobs), names(&again));
        // The cost estimate orders levels the right way around: an -O0
        // build of a utility never sorts after its -OVERIFY build.
        let pos = |name: &str, l: OptLevel| {
            jobs.iter()
                .position(|j| j.name == name && j.opts.level == l)
                .unwrap()
        };
        assert!(pos("wc_words", OptLevel::O0) < pos("wc_words", OptLevel::Overify));
    }

    #[test]
    fn module_feature_estimate_prices_builds_sensibly() {
        // A loopy utility: the -O0 build carries more instructions, more
        // (un-unrolled) loops and zero annotations, so the module-feature
        // estimate must price it above the -OVERIFY build of the same
        // source — and the prepared job carries the estimate for free.
        let u = overify_coreutils::utility("wc_words").unwrap();
        let o0 = SuiteJob::utility(u, OptLevel::O0, &[3], &small_cfg());
        let ov = SuiteJob::utility(u, OptLevel::Overify, &[3], &small_cfg());
        let p0 = prepare_job(&o0, false).expect("builds");
        let pv = prepare_job(&ov, false).expect("builds");
        assert!(
            p0.static_cost > pv.static_cost,
            "O0 ({}) must be priced above OVERIFY ({})",
            p0.static_cost,
            pv.static_cost
        );
        assert_eq!(
            pv.static_cost,
            estimated_module_cost(&pv.module, &ov),
            "static_cost is the module-feature estimate"
        );
        // Deterministic: recompiling prices identically.
        assert_eq!(prepare_job(&o0, false).unwrap().static_cost, p0.static_cost);

        // Sweeping more symbolic bytes raises the price exponentially —
        // for both estimate classes.
        let wider = SuiteJob::utility(u, OptLevel::Overify, &[5], &small_cfg());
        assert!(prepare_job(&wider, false).unwrap().static_cost > pv.static_cost);
        assert!(estimated_job_cost(&wider) > estimated_job_cost(&ov));

        // The compile-free enumeration estimate orders levels the same
        // way without building anything.
        assert!(estimated_job_cost(&o0) > estimated_job_cost(&ov));
    }

    #[test]
    fn prepared_job_splits_lookup_from_execute_with_live_progress() {
        let root =
            std::env::temp_dir().join(format!("overify_suite_prepared_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = Store::open(StoreConfig::at(&root)).unwrap();
        let job = SuiteJob::utility(
            overify_coreutils::utility("wc_words").unwrap(),
            OptLevel::Overify,
            &[2, 3],
            &small_cfg(),
        );

        let prepared = prepare_job(&job, true).expect("builds");
        assert!(prepared.key.is_some());
        assert!(prepared.load_stored(&store).is_none(), "cold store");

        let progress = JobProgress::new();
        let result = prepared.execute(Some(&store), None, Some(&progress));
        assert!(!result.from_store);
        assert!(result.exhausted());

        // The final snapshot accounts for the whole job.
        let snap = progress.snapshot();
        assert_eq!(snap.runs_done, 2);
        assert_eq!(snap.runs_total, 2);
        let total_paths: u64 = result.runs.iter().map(|(_, r)| r.total_paths()).sum();
        assert_eq!(snap.paths, total_paths);
        assert!(snap.instructions > 0);

        // Observed cost was recorded, and the artifact now answers.
        let key = prepared.key.as_ref().unwrap();
        assert!(store.lookup_cost(key).is_some());
        let hit = prepared.load_stored(&store).expect("warm store");
        assert!(hit.from_store);
        assert_eq!(hit.runs, result.runs, "stored report verbatim");

        // A build failure comes back as the finished result.
        let mut broken = job.clone();
        broken.source = "int umain(unsigned char *in, int n) { nope }".into();
        let failed = prepare_job(&broken, true).unwrap_err();
        assert!(failed.error.is_some());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn progress_callback_sees_every_job() {
        let u = overify_coreutils::utility("cat_n").unwrap();
        let jobs: Vec<SuiteJob> = [OptLevel::O0, OptLevel::O3, OptLevel::Overify]
            .iter()
            .map(|&l| SuiteJob::utility(u, l, &[2], &small_cfg()))
            .collect();
        let seen = Mutex::new(Vec::new());
        let report = verify_suite_with(jobs, 2, |r, done, total| {
            seen.lock().unwrap().push((r.name.clone(), done, total));
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 3);
        assert!(seen.iter().all(|(_, _, t)| *t == 3));
        assert_eq!(report.threads, 2);
    }
}
