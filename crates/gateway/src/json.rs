//! A minimal JSON layer: strict recursive-descent parsing plus string
//! escaping for response building.
//!
//! The gateway's request bodies are small flat objects, so this stays
//! deliberately tiny: UTF-8 text in, a [`Json`] tree out, full
//! consumption required (trailing bytes are a parse error, same
//! discipline as the store codecs), bounded nesting depth so a
//! pathological body cannot blow the handler thread's stack. Any defect
//! is `None` — the caller answers 400, never panics.

/// One parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Strict parse of a complete document.
    pub fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        (pos == bytes.len()).then_some(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

const MAX_DEPTH: usize = 32;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(b: &[u8], pos: &mut usize, lit: &[u8]) -> Option<()> {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Some(())
    } else {
        None
    }
}

fn value(b: &[u8], pos: &mut usize, depth: usize) -> Option<Json> {
    if depth > MAX_DEPTH {
        return None;
    }
    skip_ws(b, pos);
    match b.get(*pos)? {
        b'n' => eat(b, pos, b"null").map(|_| Json::Null),
        b't' => eat(b, pos, b"true").map(|_| Json::Bool(true)),
        b'f' => eat(b, pos, b"false").map(|_| Json::Bool(false)),
        b'"' => string(b, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            loop {
                items.push(value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Json::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = string(b, pos)?;
                skip_ws(b, pos);
                eat(b, pos, b":")?;
                fields.push((key, value(b, pos, depth + 1)?));
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Json::Obj(fields));
                    }
                    _ => return None,
                }
            }
        }
        _ => number(b, pos),
    }
}

fn string(b: &[u8], pos: &mut usize) -> Option<String> {
    eat(b, pos, b"\"")?;
    let mut out = String::new();
    loop {
        match b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        // Surrogates are not worth the code here: the
                        // gateway's field values are identifiers and C
                        // source; reject rather than mis-decode.
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (bodies arrive as &str, so
                // boundaries are already valid).
                let rest = std::str::from_utf8(&b[*pos..]).ok()?;
                let c = rest.chars().next()?;
                if (c as u32) < 0x20 {
                    return None;
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn number(b: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    if *pos == start {
        return None;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .filter(|n| n.is_finite())
        .map(Json::Num)
}

/// Escapes `s` for embedding inside a JSON string literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_submit_shape() {
        let body = r#"{
            "name": "branchy",
            "source": "int f(unsigned char *p, int n) { return n; }",
            "entry": "f",
            "level": "overify",
            "bytes": [2, 3],
            "path_workers": 1,
            "pass_len_arg": true
        }"#;
        let v = Json::parse(body).expect("parses");
        assert_eq!(v.get("name").and_then(Json::as_str), Some("branchy"));
        assert_eq!(v.get("level").and_then(Json::as_str), Some("overify"));
        assert_eq!(v.get("path_workers").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("pass_len_arg").and_then(Json::as_bool), Some(true));
        let bytes: Vec<u64> = v
            .get("bytes")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|j| j.as_u64().unwrap())
            .collect();
        assert_eq!(bytes, vec![2, 3]);
    }

    #[test]
    fn escapes_round_trip_through_the_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}f/α";
        let doc = format!("{{\"k\":\"{}\"}}", esc(nasty));
        let v = Json::parse(&doc).expect("parses its own escaping");
        assert_eq!(v.get("k").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn defects_parse_to_none_not_panics() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "01x",
            "1 2",
            "{\"a\":1}trailing",
            "\"bad \\q escape\"",
            "nan",
            "inf",
        ] {
            assert_eq!(Json::parse(bad), None, "{bad:?}");
        }
        // Depth bomb: refused, not a stack overflow.
        let bomb = "[".repeat(10_000) + &"]".repeat(10_000);
        assert_eq!(Json::parse(&bomb), None);
        // Fractions are not indices.
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
    }
}
