//! `overify_gateway` — the public async verification gateway.
//!
//! The serve daemon made verification *resident*; this crate makes it
//! *public*. The daemon's binary socket protocol assumes a trusted,
//! version-matched client that holds its connection open for the whole
//! run — exactly wrong for untrusted callers on flaky links. The
//! gateway fronts one daemon with a plain HTTP/1.1 submit-then-poll
//! tier (hand-rolled on std TCP, dependency-free like everything else
//! in the workspace):
//!
//! ```text
//! POST /v1/verify      submit a spec  → 202 {"job_id": …}  (immediately)
//!                       quota drained → 429 + Retry-After
//!                       queue full    → 429 + Retry-After  (shed)
//! GET  /v1/jobs/<id>   poll job state → queued/running/done/failed
//! GET  /v1/registry    every stored verdict (module + slice grain)
//! GET  /metrics        the gateway's own registry, text format
//! GET  /healthz        liveness
//! ```
//!
//! **Durable job ids.** A job id is the FNV-128 of the submission's
//! canonical spec encoding — content addressing all the way out to the
//! public API. Submitting the same spec twice lands on the same id, and
//! every accepted submission is persisted as a store job record
//! (`jobs/<id>.bin`) *before* the 202 goes out, so `GET /v1/jobs/<id>`
//! keeps answering across gateway restarts and daemon restarts; a
//! rebooted gateway replays non-terminal records back into its queue.
//!
//! **Admission control.** Three gates, in order: a bearer-token tenant
//! map (optional — an empty map serves anonymously), a per-tenant
//! token-bucket quota ([`quota`]), and a bounded tenant-fair submission
//! queue (the serve scheduler). Past the gates a submission costs one
//! queue slot; at the bound the gateway *sheds* — an explicit 429 with
//! `Retry-After`, never an unbounded backlog, and the shed submission
//! leaves no record (it was refused, not accepted-and-lost).
//!
//! Dispatcher threads drain the queue into the daemon over the binary
//! protocol, retrying across daemon restarts and daemon-side sheds —
//! an *accepted* job reaches a terminal record eventually even when the
//! backend is rebooted mid-flood.

pub mod http;
pub mod json;
pub mod quota;

pub use quota::{QuotaConfig, QuotaTable};

use crate::http::{HttpError, HttpRequest, Response};
use crate::json::{esc, Json};
use overify::{JobRecord, JobState, Store, StoreConfig, SymConfig, VerdictPointer};
use overify_obs::metrics::{counter, Counter, DeltaTracker, LazyCounter, LazyGauge, LazyHistogram};
use overify_serve::protocol::encode_spec_bytes;
use overify_serve::scheduler::PushError;
use overify_serve::{Client, Event, JobSpec, Priority, Scheduler};
use overify_store::artifact::{level_from_tag, level_tag};
use overify_store::codec::fnv128;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

static HTTP_REQS: LazyCounter = LazyCounter::new("overify_gateway_http_requests_total");
static HTTP_NS: LazyHistogram = LazyHistogram::new("overify_gateway_request_latency_ns");
static ACCEPTED: LazyCounter = LazyCounter::new("overify_gateway_accepted_total");
static SHED: LazyCounter = LazyCounter::new("overify_gateway_shed_total");
static QUOTA_DENIED: LazyCounter = LazyCounter::new("overify_gateway_quota_denied_total");
static QUEUE_DEPTH: LazyGauge = LazyGauge::new("overify_gateway_queue_depth");
static JOBS_DONE: LazyCounter = LazyCounter::new("overify_gateway_jobs_done_total");
static JOBS_FAILED: LazyCounter = LazyCounter::new("overify_gateway_jobs_failed_total");
static DISPATCH_RETRIES: LazyCounter = LazyCounter::new("overify_gateway_dispatch_retries_total");

/// How a gateway is wired: the daemon it fronts, the store both share,
/// and the admission-control envelope.
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// TCP port on 127.0.0.1 (0 picks an ephemeral port).
    pub port: u16,
    /// The serve daemon this gateway drains into.
    pub daemon: SocketAddr,
    /// The store shared with the daemon — job records and the verdict
    /// registry live here.
    pub store: StoreConfig,
    /// Threads draining the submission queue into the daemon.
    pub dispatchers: usize,
    /// Bound on the submission queue; a submission past it is shed
    /// with 429.
    pub queue_capacity: usize,
    /// Per-tenant token-bucket shape.
    pub quota: QuotaConfig,
    /// Bearer-token → tenant map. Empty serves anonymously (every
    /// caller is tenant `"anon"`); non-empty makes a missing or unknown
    /// token a 401.
    pub tokens: Vec<(String, String)>,
    /// Attach to the daemon as a metrics worker and upstream this
    /// process's registry deltas, so the gateway tier shows up in the
    /// daemon's fleet scope (`serve_client --top`).
    pub upstream_metrics: bool,
}

impl GatewayConfig {
    /// A gateway at an ephemeral port with moderate defaults.
    pub fn at(daemon: SocketAddr, store: StoreConfig) -> GatewayConfig {
        GatewayConfig {
            port: 0,
            daemon,
            store,
            dispatchers: 2,
            queue_capacity: 256,
            quota: QuotaConfig::default(),
            tokens: Vec::new(),
            upstream_metrics: false,
        }
    }
}

/// One accepted submission waiting for a dispatcher.
struct QueuedSubmission {
    id: u128,
    tenant: String,
    spec: JobSpec,
}

struct GatewayState {
    daemon: SocketAddr,
    store: Store,
    sched: Scheduler<QueuedSubmission>,
    quota: QuotaTable,
    tokens: HashMap<String, String>,
    shutdown: AtomicBool,
    /// Leaked-name cache for per-tenant series: the registry needs
    /// `&'static str` names, tenants arrive at runtime, and the set is
    /// small (one entry per tenant × series), so leaking is the right
    /// trade. The cache makes the leak once-per-name, not per-request.
    tenant_series: Mutex<HashMap<String, &'static Counter>>,
}

impl GatewayState {
    fn tenant_counter(&self, base: &str, tenant: &str) -> &'static Counter {
        let safe: String = tenant
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let name = format!("{base}{{tenant=\"{safe}\"}}");
        let mut cache = self.tenant_series.lock().unwrap();
        if let Some(c) = cache.get(&name) {
            return c;
        }
        let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
        let c = counter(leaked);
        cache.insert(name, c);
        c
    }

    /// Persists `id`'s record in `state`, preserving the original
    /// submission timestamp across transitions. Store regression rules
    /// apply (a terminal record is never overwritten by a non-terminal
    /// one).
    fn stamp(
        &self,
        id: u128,
        tenant: &str,
        spec_bytes: Vec<u8>,
        state: JobState,
        verdict: Option<VerdictPointer>,
        error: Option<String>,
    ) -> io::Result<bool> {
        let created_us = self
            .store
            .load_job(id)
            .map(|r| r.created_us)
            .unwrap_or_else(now_us);
        self.store.save_job(&JobRecord {
            id,
            state,
            tenant: tenant.to_string(),
            created_us,
            updated_us: now_us(),
            spec: spec_bytes,
            verdict,
            error,
        })
    }
}

fn now_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// A running gateway.
pub struct GatewayHandle {
    addr: SocketAddr,
    state: Arc<GatewayState>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl GatewayHandle {
    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes the queue and joins every gateway
    /// thread. Whatever was still queued stays durably `queued` on
    /// disk — the next boot re-enqueues it.
    pub fn shutdown(self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.sched.close();
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Blocks until the gateway exits (it doesn't, absent `shutdown` —
    /// this is the run-until-killed daemon path).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Starts a gateway: opens the store, replays interrupted jobs into the
/// queue, spawns the dispatcher pool and the HTTP accept loop.
pub fn start(cfg: GatewayConfig) -> io::Result<GatewayHandle> {
    let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
    let addr = listener.local_addr()?;
    let store = Store::open(cfg.store.clone())?;
    let state = Arc::new(GatewayState {
        daemon: cfg.daemon,
        store,
        sched: Scheduler::bounded(cfg.queue_capacity),
        quota: QuotaTable::new(cfg.quota),
        tokens: cfg.tokens.into_iter().collect(),
        shutdown: AtomicBool::new(false),
        tenant_series: Mutex::new(HashMap::new()),
    });

    // Boot recovery: whatever a previous gateway accepted but did not
    // finish goes back in the queue. An undecodable or queue-overflow
    // leftover is closed out as failed — honestly terminal beats
    // silently stuck.
    for rec in state.store.list_jobs() {
        if rec.state.is_terminal() {
            continue;
        }
        match overify_serve::protocol::decode_spec_bytes(&rec.spec) {
            Some(spec) => {
                let sub = QueuedSubmission {
                    id: rec.id,
                    tenant: rec.tenant.clone(),
                    spec,
                };
                if state
                    .sched
                    .push_for(&rec.tenant, fifo_priority(), sub)
                    .is_err()
                {
                    let _ = state.stamp(
                        rec.id,
                        &rec.tenant,
                        rec.spec.clone(),
                        JobState::Failed,
                        None,
                        Some("dropped at gateway restart: recovery queue full".into()),
                    );
                }
            }
            None => {
                let _ = state.stamp(
                    rec.id,
                    &rec.tenant,
                    rec.spec.clone(),
                    JobState::Failed,
                    None,
                    Some("unreadable spec in job record".into()),
                );
            }
        }
    }
    QUEUE_DEPTH.get().set(state.sched.len() as i64);

    let mut threads = Vec::new();
    for _ in 0..cfg.dispatchers.max(1) {
        let state = Arc::clone(&state);
        threads.push(std::thread::spawn(move || dispatcher_loop(&state)));
    }
    if cfg.upstream_metrics {
        let state = Arc::clone(&state);
        threads.push(std::thread::spawn(move || upstream_loop(&state)));
    }
    {
        let state = Arc::clone(&state);
        threads.push(std::thread::spawn(move || accept_loop(&state, listener)));
    }
    Ok(GatewayHandle {
        addr,
        state,
        threads,
    })
}

/// Queue priority for gateway submissions: the gateway has no cost
/// model of its own, so every job is an equal "estimate" — within a
/// tenant that degrades to FIFO, and fairness comes from the
/// scheduler's tenant round-robin.
fn fifo_priority() -> Priority {
    Priority {
        estimated: true,
        cost: 0,
    }
}

fn accept_loop(state: &Arc<GatewayState>, listener: TcpListener) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = Arc::clone(state);
        std::thread::spawn(move || {
            let _ = handle_conn(&state, stream);
        });
    }
}

fn handle_conn(state: &GatewayState, stream: TcpStream) -> io::Result<()> {
    let started = Instant::now();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let resp = match http::read_request(&mut reader) {
        Ok(None) => return Ok(()),
        Ok(Some(req)) => route(state, &req),
        Err(HttpError::Io(e)) => return Err(e),
        Err(HttpError::Malformed(what)) => {
            Response::json(400, format!("{{\"error\":\"malformed request: {what}\"}}"))
        }
        Err(HttpError::TooLarge) => Response::json(413, "{\"error\":\"request too large\"}"),
    };
    HTTP_REQS.inc();
    HTTP_NS.observe_ns(started.elapsed());
    resp.write_to(&mut writer)
}

fn route(state: &GatewayState, req: &HttpRequest) -> Response {
    // Open endpoints first: liveness and scrape need no credentials.
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => return Response::text(200, "ok\n"),
        ("GET", "/metrics") => return Response::text(200, overify_obs::metrics::render()),
        _ => {}
    }
    // Everything under /v1/ is tenant-scoped.
    let tenant = if state.tokens.is_empty() {
        "anon".to_string()
    } else {
        match req.bearer_token().and_then(|t| state.tokens.get(t)) {
            Some(tenant) => tenant.clone(),
            None => return Response::json(401, "{\"error\":\"missing or unknown bearer token\"}"),
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/verify") => post_verify(state, &tenant, &req.body),
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            get_job(state, &path["/v1/jobs/".len()..])
        }
        ("GET", "/v1/registry") => get_registry(state),
        (_, "/v1/verify") | (_, "/v1/registry") => {
            Response::json(405, "{\"error\":\"method not allowed\"}")
        }
        _ => Response::json(404, "{\"error\":\"no such endpoint\"}"),
    }
}

fn post_verify(state: &GatewayState, tenant: &str, body: &[u8]) -> Response {
    // Gate 1: the tenant's token bucket.
    if let Err(wait) = state.quota.try_take(tenant, Instant::now()) {
        QUOTA_DENIED.inc();
        state
            .tenant_counter("overify_gateway_tenant_quota_denied_total", tenant)
            .inc();
        return Response::json(429, "{\"error\":\"quota exceeded\"}")
            .header("Retry-After", format!("{}", wait.as_secs().max(1)));
    }
    let spec = match parse_spec(body) {
        Ok(spec) => spec,
        Err(why) => return Response::json(400, format!("{{\"error\":\"{}\"}}", esc(&why))),
    };
    let spec_bytes = encode_spec_bytes(&spec);
    let id = fnv128(&spec_bytes);
    // Content addressing makes resubmission idempotent: a known id is
    // answered from its record without costing a queue slot.
    if let Some(rec) = state.store.load_job(id) {
        return Response::json(
            200,
            format!(
                "{{\"job_id\":\"{id:032x}\",\"state\":\"{}\",\"resubmitted\":true}}",
                rec.state.as_str()
            ),
        );
    }
    // Gate 2: the bounded queue. Push first, persist second — a shed
    // submission must leave no record behind (it was refused, and a
    // record would make restart recovery resurrect a job the client
    // was told to retry).
    let sub = QueuedSubmission {
        id,
        tenant: tenant.to_string(),
        spec,
    };
    match state.sched.push_for(tenant, fifo_priority(), sub) {
        Ok(depth) => {
            QUEUE_DEPTH.get().set(depth as i64);
        }
        Err(PushError::Full(_)) => {
            SHED.inc();
            state
                .tenant_counter("overify_gateway_tenant_shed_total", tenant)
                .inc();
            return Response::json(429, "{\"error\":\"submission queue full\"}")
                .header("Retry-After", "1");
        }
        Err(PushError::Closed(_)) => {
            return Response::json(503, "{\"error\":\"gateway shutting down\"}")
        }
    }
    if let Err(e) = state.stamp(id, tenant, spec_bytes, JobState::Queued, None, None) {
        // The job will still run (it is queued), but its record may be
        // missing until a dispatcher stamps it — surface the store
        // trouble to the submitter rather than promising durability we
        // did not get.
        return Response::json(
            503,
            format!(
                "{{\"error\":\"job accepted but record not persisted: {}\"}}",
                esc(&e.to_string())
            ),
        );
    }
    ACCEPTED.inc();
    state
        .tenant_counter("overify_gateway_tenant_accepted_total", tenant)
        .inc();
    Response::json(
        202,
        format!("{{\"job_id\":\"{id:032x}\",\"state\":\"queued\"}}"),
    )
}

fn get_job(state: &GatewayState, id_hex: &str) -> Response {
    let id = match (id_hex.len(), u128::from_str_radix(id_hex, 16)) {
        (32, Ok(id)) => id,
        _ => return Response::json(400, "{\"error\":\"job id must be 32 hex digits\"}"),
    };
    match state.store.load_job(id) {
        None => Response::json(404, "{\"error\":\"unknown job\"}"),
        Some(rec) => Response::json(200, render_job(&rec)),
    }
}

fn get_registry(state: &GatewayState) -> Response {
    let rows = state.store.list_verdicts();
    let mut out = String::from("{\"verdicts\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"grain\":\"{}\",\"fingerprint\":\"{:032x}\",\"level\":\"{}\",\"budget_sig\":\"{:032x}\"}}",
            if row.slice { "slice" } else { "module" },
            row.fp,
            row.level.name(),
            row.budget_sig,
        ));
    }
    out.push_str(&format!("],\"count\":{}}}", rows.len()));
    Response::json(200, out)
}

fn render_job(rec: &JobRecord) -> String {
    let verdict = match &rec.verdict {
        None => "null".to_string(),
        Some(v) => format!(
            "{{\"grain\":\"{}\",\"fingerprint\":\"{:032x}\",\"level\":\"{}\",\"budget_sig\":\"{:032x}\"}}",
            if v.slice { "slice" } else { "module" },
            v.fp,
            level_from_tag(v.level_tag).map(|l| l.name().to_string()).unwrap_or_else(|| format!("tag{}", v.level_tag)),
            v.budget_sig,
        ),
    };
    let error = match &rec.error {
        None => "null".to_string(),
        Some(e) => format!("\"{}\"", esc(e)),
    };
    format!(
        "{{\"job_id\":\"{:032x}\",\"state\":\"{}\",\"tenant\":\"{}\",\"created_us\":{},\"updated_us\":{},\"verdict\":{},\"error\":{}}}",
        rec.id,
        rec.state.as_str(),
        esc(&rec.tenant),
        rec.created_us,
        rec.updated_us,
        verdict,
        error,
    )
}

/// Decodes a `POST /v1/verify` body into a [`JobSpec`].
fn parse_spec(body: &[u8]) -> Result<JobSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let v = Json::parse(text).ok_or("body is not valid JSON")?;
    let field = |k: &str| {
        v.get(k)
            .and_then(Json::as_str)
            .ok_or(format!("missing string field '{k}'"))
    };
    let name = field("name")?.to_string();
    let source = field("source")?.to_string();
    let entry = field("entry")?.to_string();
    let level = match field("level")?.to_ascii_lowercase().as_str() {
        "o0" | "-o0" => overify::OptLevel::O0,
        "o1" | "-o1" => overify::OptLevel::O1,
        "o2" | "-o2" => overify::OptLevel::O2,
        "o3" | "-o3" => overify::OptLevel::O3,
        "overify" | "-overify" => overify::OptLevel::Overify,
        other => return Err(format!("unknown level '{other}' (O0..O3, overify)")),
    };
    let bytes: Vec<usize> = v
        .get("bytes")
        .and_then(Json::as_arr)
        .ok_or("missing array field 'bytes'")?
        .iter()
        .map(|j| j.as_u64().map(|n| n as usize))
        .collect::<Option<_>>()
        .ok_or("'bytes' must be non-negative integers")?;
    if bytes.is_empty() || bytes.iter().any(|&b| b == 0 || b > 64) {
        return Err("'bytes' must name 1..=64-byte symbolic input sizes".to_string());
    }
    let path_workers = match v.get("path_workers") {
        None => 1,
        Some(j) => j
            .as_u64()
            .filter(|&n| (1..=64).contains(&n))
            .ok_or("'path_workers' must be 1..=64")? as usize,
    };
    let cfg = SymConfig {
        pass_len_arg: match v.get("pass_len_arg") {
            None => true,
            Some(j) => j.as_bool().ok_or("'pass_len_arg' must be a boolean")?,
        },
        collect_tests: match v.get("collect_tests") {
            None => false,
            Some(j) => j.as_bool().ok_or("'collect_tests' must be a boolean")?,
        },
        ..SymConfig::default()
    };
    Ok(JobSpec {
        name,
        source,
        entry,
        level,
        bytes,
        path_workers,
        cfg,
    })
}

/// One dispatcher: pops accepted submissions and walks each to a
/// terminal record, reconnecting across daemon restarts and backing off
/// on daemon-side sheds. A verification re-run after a mid-flight
/// daemon death is safe — results are content-addressed, so the retry
/// is answered from the store if the first attempt got far enough to
/// persist.
fn dispatcher_loop(state: &Arc<GatewayState>) {
    let mut client: Option<Client> = None;
    while let Some(sub) = state.sched.pop() {
        QUEUE_DEPTH.get().set(state.sched.len() as i64);
        let spec_bytes = encode_spec_bytes(&sub.spec);
        let _ = state.stamp(
            sub.id,
            &sub.tenant,
            spec_bytes.clone(),
            JobState::Running,
            None,
            None,
        );
        loop {
            if state.shutdown.load(Ordering::SeqCst) {
                // Leave the record non-terminal; the next boot replays it.
                return;
            }
            if client.is_none() {
                match Client::connect(state.daemon) {
                    Ok(c) => client = Some(c),
                    Err(_) => {
                        // Daemon down or at its connection cap: wait it out.
                        DISPATCH_RETRIES.inc();
                        std::thread::sleep(Duration::from_millis(50));
                        continue;
                    }
                }
            }
            let conn = client.as_mut().unwrap();
            let mut verdict_key = None;
            match conn.submit_with_tenant(&sub.spec, &sub.tenant, |ev| {
                if let Event::Report { outcome, .. } = ev {
                    verdict_key = outcome.verdict_key;
                }
            }) {
                Ok(result) => {
                    if let Some(err) = &result.error {
                        if err.contains("shutting down") {
                            // The daemon drained for a restart before the
                            // job ran. Drop the connection too: a draining
                            // daemon's handler may keep answering aborts
                            // on the old socket after a replacement is
                            // already up.
                            client = None;
                            DISPATCH_RETRIES.inc();
                            std::thread::sleep(Duration::from_millis(100));
                            continue;
                        }
                        if err.starts_with("shed:") {
                            // The daemon's own queue is full; the job is
                            // ours to retry, not the client's.
                            DISPATCH_RETRIES.inc();
                            std::thread::sleep(Duration::from_millis(100));
                            continue;
                        }
                        JOBS_FAILED.inc();
                        let _ = state.stamp(
                            sub.id,
                            &sub.tenant,
                            spec_bytes.clone(),
                            JobState::Failed,
                            None,
                            Some(err.clone()),
                        );
                    } else {
                        JOBS_DONE.inc();
                        let verdict = verdict_key.map(|k| VerdictPointer {
                            slice: k.slice,
                            fp: k.fp,
                            level_tag: level_tag(sub.spec.level),
                            budget_sig: k.budget_sig,
                        });
                        let _ = state.stamp(
                            sub.id,
                            &sub.tenant,
                            spec_bytes.clone(),
                            JobState::Done,
                            verdict,
                            None,
                        );
                    }
                    break;
                }
                Err(_) => {
                    // Connection died mid-run (daemon restart): drop the
                    // connection and resubmit from scratch.
                    client = None;
                    DISPATCH_RETRIES.inc();
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }
}

/// Attaches to the daemon as a metrics worker and upstreams this
/// process's registry deltas, so the gateway rides the same fleet
/// telemetry plane as remote verification workers.
fn upstream_loop(state: &Arc<GatewayState>) {
    let name = format!("gateway-{}", std::process::id());
    let mut tracker = DeltaTracker::new();
    let tick = Duration::from_millis(250);
    'reconnect: while !state.shutdown.load(Ordering::SeqCst) {
        let mut conn = match Client::connect(state.daemon) {
            Ok(c) => c,
            Err(_) => {
                sleep_checking(state, tick);
                continue;
            }
        };
        if conn.attach_worker(&name).is_err() {
            sleep_checking(state, tick);
            continue;
        }
        while !state.shutdown.load(Ordering::SeqCst) {
            let text = tracker.delta();
            if !text.is_empty() && conn.push_metrics(text, Vec::new()).is_err() {
                continue 'reconnect;
            }
            sleep_checking(state, tick);
        }
    }
}

fn sleep_checking(state: &GatewayState, total: Duration) {
    let step = Duration::from_millis(25);
    let mut slept = Duration::ZERO;
    while slept < total && !state.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(step);
        slept += step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_is_strict_and_canonical() {
        let body = br#"{
            "name": "t", "source": "int f(unsigned char *p, int n){return 0;}",
            "entry": "f", "level": "overify", "bytes": [2]
        }"#;
        let spec = parse_spec(body).expect("parses");
        assert_eq!(spec.name, "t");
        assert_eq!(spec.level, overify::OptLevel::Overify);
        assert_eq!(spec.bytes, vec![2]);
        assert_eq!(spec.path_workers, 1);
        assert!(spec.cfg.pass_len_arg, "defaults on");
        // Identical bodies → identical job ids (content addressing),
        // and field changes move the id.
        let id = |b: &[u8]| fnv128(&encode_spec_bytes(&parse_spec(b).unwrap()));
        assert_eq!(id(body), id(body));
        let other = br#"{
            "name": "t", "source": "int f(unsigned char *p, int n){return 0;}",
            "entry": "f", "level": "O0", "bytes": [2]
        }"#;
        assert_ne!(id(body), id(other));

        for bad in [
            &b"not json"[..],
            br#"{"name":"t"}"#,
            br#"{"name":"t","source":"s","entry":"f","level":"O9","bytes":[2]}"#,
            br#"{"name":"t","source":"s","entry":"f","level":"O0","bytes":[]}"#,
            br#"{"name":"t","source":"s","entry":"f","level":"O0","bytes":[0]}"#,
            br#"{"name":"t","source":"s","entry":"f","level":"O0","bytes":[2],"path_workers":0}"#,
        ] {
            assert!(
                parse_spec(bad).is_err(),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn job_rendering_is_valid_json() {
        let rec = JobRecord {
            id: 7,
            state: JobState::Done,
            tenant: "a\"b".into(),
            created_us: 1,
            updated_us: 2,
            spec: vec![],
            verdict: Some(VerdictPointer {
                slice: true,
                fp: 9,
                level_tag: 4,
                budget_sig: 3,
            }),
            error: None,
        };
        let text = render_job(&rec);
        let v = Json::parse(&text).expect("renders valid JSON");
        assert_eq!(v.get("state").and_then(Json::as_str), Some("done"));
        assert_eq!(v.get("tenant").and_then(Json::as_str), Some("a\"b"));
        assert_eq!(
            v.get("verdict")
                .and_then(|d| d.get("grain"))
                .and_then(Json::as_str),
            Some("slice")
        );
        assert_eq!(v.get("error"), Some(&Json::Null));
    }
}
