//! A deliberately minimal HTTP/1.1 layer on std TCP.
//!
//! The gateway speaks just enough HTTP for a submit-then-poll API:
//! request line, headers, an optional `Content-Length` body, and
//! fixed-length responses closed after every exchange
//! (`Connection: close` — one request per connection keeps the accept
//! loop trivial and makes overload behavior obvious: a shed *response*
//! is always delivered before the socket drops). No chunked encoding,
//! no pipelining, no TLS — this is a localhost/behind-a-proxy tier,
//! hand-rolled so the workspace stays dependency-free.
//!
//! Parsing is defensive the same way the store codecs are: everything
//! is bounded ([`MAX_HEAD_BYTES`], [`MAX_BODY_BYTES`]) and every defect
//! maps to a typed error the caller renders as a 4xx, never to a hang
//! or a panic.

use std::io::{self, BufRead, Write};

/// Cap on the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Cap on a request body (`Content-Length` beyond this is refused).
pub const MAX_BODY_BYTES: usize = 4 << 20;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Transport failure mid-request.
    Io(io::Error),
    /// Syntactically broken request (caller answers 400).
    Malformed(&'static str),
    /// Head or declared body over the cap (caller answers 413).
    TooLarge,
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct HttpRequest {
    pub method: String,
    /// Path + query exactly as sent (the gateway routes on the path).
    pub path: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Case-insensitive header lookup (first occurrence).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The `Authorization: Bearer <token>` credential, if present.
    pub fn bearer_token(&self) -> Option<&str> {
        let auth = self.header("authorization")?;
        let rest = auth
            .strip_prefix("Bearer ")
            .or(auth.strip_prefix("bearer "))?;
        let token = rest.trim();
        (!token.is_empty()).then_some(token)
    }
}

fn read_line(r: &mut impl BufRead, budget: &mut usize) -> Result<String, HttpError> {
    let mut raw = Vec::new();
    // Bound the read *before* parsing: take() caps how much one line may
    // consume, so a peer streaming garbage without a newline cannot grow
    // memory past the head budget.
    let mut limited = io::Read::take(&mut *r, *budget as u64 + 1);
    limited.read_until(b'\n', &mut raw)?;
    if raw.len() > *budget {
        return Err(HttpError::TooLarge);
    }
    *budget -= raw.len();
    if !raw.ends_with(b"\n") {
        return Err(HttpError::Malformed("truncated line"));
    }
    raw.pop();
    if raw.ends_with(b"\r") {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| HttpError::Malformed("non-UTF-8 header bytes"))
}

/// Reads one request. `Ok(None)` is a clean pre-request EOF (the client
/// connected and went away — not an error, not a 400).
pub fn read_request(r: &mut impl BufRead) -> Result<Option<HttpRequest>, HttpError> {
    // Peek for EOF before demanding a request line.
    if r.fill_buf()?.is_empty() {
        return Ok(None);
    }
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_line(r, &mut budget)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(HttpError::Malformed("bad request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    loop {
        let line = read_line(r, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header without a colon"));
        };
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    let req = HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    let len = match req.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed("bad Content-Length"))?,
    };
    if len > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; len];
    io::Read::read_exact(r, &mut body)?;
    Ok(Some(HttpRequest { body, ..req }))
}

/// One response, written with an explicit `Content-Length` and
/// `Connection: close`.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response (metrics, health).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "text/plain; charset=utf-8".into())],
            body: body.into().into_bytes(),
        }
    }

    /// Adds one header (builder style).
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serializes status line, headers and body onto `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status))?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "Content-Length: {}\r\n", self.body.len())?;
        write!(w, "Connection: close\r\n\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_request_with_body_and_headers() {
        let raw = b"POST /v1/verify HTTP/1.1\r\nHost: x\r\nAuthorization: Bearer tok-1\r\n\
                    Content-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut Cursor::new(&raw[..]))
            .expect("parses")
            .expect("present");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/verify");
        assert_eq!(req.header("AUTHORIZATION"), Some("Bearer tok-1"));
        assert_eq!(req.bearer_token(), Some("tok-1"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn clean_eof_is_none_and_defects_are_typed() {
        assert!(read_request(&mut Cursor::new(b"")).unwrap().is_none());
        let malformed: &[&[u8]] = &[
            b"GARBAGE\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET / SPDY/9\r\n\r\n",
            b"GET / HTTP/1.1\r\nbroken header\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: pony\r\n\r\n",
        ];
        for raw in malformed {
            assert!(
                matches!(
                    read_request(&mut Cursor::new(*raw)),
                    Err(HttpError::Malformed(_))
                ),
                "{:?}",
                String::from_utf8_lossy(raw)
            );
        }
        // A declared body over the cap is refused without reading it.
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 5 << 20);
        assert!(matches!(
            read_request(&mut Cursor::new(huge.as_bytes())),
            Err(HttpError::TooLarge)
        ));
        // An endless header line cannot exhaust memory.
        let mut big = b"GET / HTTP/1.1\r\nX: ".to_vec();
        big.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES * 2));
        assert!(matches!(
            read_request(&mut Cursor::new(&big[..])),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn responses_carry_length_close_and_extra_headers() {
        let mut out = Vec::new();
        Response::json(429, "{\"error\":\"queue full\"}")
            .header("Retry-After", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 22\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));
    }
}
