//! Per-tenant token-bucket admission quotas.
//!
//! Every authenticated submission drains one token from its tenant's
//! bucket; buckets refill continuously at a configured rate up to a
//! burst cap. A drained bucket answers with *when to come back*
//! (`Retry-After`), so well-behaved clients back off instead of
//! hammering — and because buckets are per tenant, one tenant's flood
//! never starves another's steady trickle (the queue behind the quota
//! is tenant-fair too, see the serve scheduler).
//!
//! Time is passed in by the caller, which keeps the arithmetic
//! deterministic under test and leaves the table free of clock reads.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Bucket shape shared by every tenant.
#[derive(Clone, Copy, Debug)]
pub struct QuotaConfig {
    /// Bucket capacity: submissions a tenant may burst before rate
    /// limiting engages.
    pub burst: f64,
    /// Continuous refill rate, tokens per second.
    pub per_sec: f64,
}

impl Default for QuotaConfig {
    fn default() -> QuotaConfig {
        QuotaConfig {
            burst: 64.0,
            per_sec: 32.0,
        }
    }
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// The per-tenant bucket table. Cheap to share behind an `Arc`.
pub struct QuotaTable {
    cfg: QuotaConfig,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl QuotaTable {
    pub fn new(cfg: QuotaConfig) -> QuotaTable {
        QuotaTable {
            cfg,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Takes one token from `tenant`'s bucket at time `now`, or says how
    /// long until one will be available.
    pub fn try_take(&self, tenant: &str, now: Instant) -> Result<(), Duration> {
        let mut buckets = self.buckets.lock().unwrap();
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: self.cfg.burst,
            last: now,
        });
        // `saturating_duration_since` tolerates caller clocks that are
        // not monotone across threads.
        let elapsed = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.cfg.per_sec).min(self.cfg.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else if self.cfg.per_sec > 0.0 {
            Err(Duration::from_secs_f64(
                (1.0 - bucket.tokens) / self.cfg.per_sec,
            ))
        } else {
            // No refill configured: effectively a hard per-boot cap.
            Err(Duration::from_secs(3600))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursts_then_limits_then_refills() {
        let q = QuotaTable::new(QuotaConfig {
            burst: 3.0,
            per_sec: 2.0,
        });
        let t0 = Instant::now();
        for _ in 0..3 {
            assert!(q.try_take("a", t0).is_ok(), "burst capacity");
        }
        let wait = q.try_take("a", t0).expect_err("bucket drained");
        // One token refills in half a second at 2/s.
        assert!(wait <= Duration::from_millis(500), "{wait:?}");
        assert!(wait > Duration::ZERO);
        // After the advertised wait, a token is back.
        assert!(q
            .try_take("a", t0 + wait + Duration::from_millis(1))
            .is_ok());
        // ...but only the one.
        assert!(q
            .try_take("a", t0 + wait + Duration::from_millis(1))
            .is_err());
    }

    #[test]
    fn tenants_have_independent_buckets() {
        let q = QuotaTable::new(QuotaConfig {
            burst: 1.0,
            per_sec: 0.5,
        });
        let t0 = Instant::now();
        assert!(q.try_take("hog", t0).is_ok());
        assert!(q.try_take("hog", t0).is_err(), "hog drained its bucket");
        assert!(q.try_take("meek", t0).is_ok(), "meek is unaffected");
        // Refill never exceeds the burst cap no matter how long idle.
        assert!(q.try_take("hog", t0 + Duration::from_secs(3600)).is_ok());
        assert!(q.try_take("hog", t0 + Duration::from_secs(3600)).is_err());
    }

    #[test]
    fn zero_refill_is_a_hard_cap() {
        let q = QuotaTable::new(QuotaConfig {
            burst: 2.0,
            per_sec: 0.0,
        });
        let t0 = Instant::now();
        assert!(q.try_take("t", t0).is_ok());
        assert!(q.try_take("t", t0).is_ok());
        let wait = q
            .try_take("t", t0 + Duration::from_secs(600))
            .expect_err("capped");
        assert!(wait >= Duration::from_secs(3600));
    }
}
