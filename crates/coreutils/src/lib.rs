//! `overify-coreutils`: the workload suite.
//!
//! The paper evaluates `-OSYMBEX` by repeating KLEE's Coreutils 6.10 case
//! study: 93 UNIX utilities, each explored with 2–10 bytes of symbolic
//! input under a one-hour timeout (Figure 4), and compiled at `-O0`, `-O3`
//! and `-OSYMBEX` to count transformations (Table 3).
//!
//! This crate provides 35 Coreutils-style utilities written in MiniC. They
//! are *structurally* faithful stand-ins: input-dependent scanning loops,
//! ctype-heavy classification, option-like flags, fixed-trip inner loops,
//! table lookups, nested loops and integer arithmetic — the control-flow
//! diversity that produces the paper's distribution of speedups.
//!
//! Every utility has the entry point:
//!
//! ```c
//! int umain(unsigned char *in, int n);
//! ```
//!
//! where `in` holds `n` input bytes followed by a terminating NUL (the
//! symbolic-input convention of the evaluation harness), writes its result
//! through `putchar`, and returns a small status value.

use overify_ir::Module;
use overify_libc::LibcVariant;

mod sources;

/// One utility: name, MiniC source, and what it models.
#[derive(Clone, Copy, Debug)]
pub struct Utility {
    pub name: &'static str,
    /// The real coreutil (or classic tool) this models.
    pub models: &'static str,
    pub source: &'static str,
}

/// The full suite, in a stable order.
pub fn suite() -> &'static [Utility] {
    sources::SUITE
}

/// Looks up a utility by name.
pub fn utility(name: &str) -> Option<&'static Utility> {
    sources::SUITE.iter().find(|u| u.name == name)
}

/// Compiles a utility and links the chosen libc. The result is unoptimized
/// (`-O0`); callers run the `overify-opt` pipeline for other levels.
pub fn compile_utility(
    u: &Utility,
    libc: LibcVariant,
) -> Result<Module, Box<dyn std::error::Error>> {
    overify_libc::compile_and_link(u.source, libc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_interp::{run_with_buffer, ExecConfig, Outcome};

    #[test]
    fn all_utilities_compile_and_link_under_both_libcs() {
        for u in suite() {
            for v in [LibcVariant::Native, LibcVariant::Verify] {
                let m = compile_utility(u, v).unwrap_or_else(|e| panic!("{} ({v:?}): {e}", u.name));
                overify_ir::verify_module(&m).unwrap_or_else(|e| panic!("{} ({v:?}): {e}", u.name));
                assert!(m.function("umain").is_some(), "{}", u.name);
                assert!(m.unresolved().is_empty(), "{}: unresolved externs", u.name);
            }
        }
    }

    #[test]
    fn suite_is_reasonably_sized_and_unique() {
        let s = suite();
        assert!(s.len() >= 28, "suite has {} utilities", s.len());
        let mut names: Vec<_> = s.iter().map(|u| u.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), s.len(), "duplicate utility names");
    }

    #[test]
    fn utilities_run_concretely_on_sample_inputs() {
        let cfg = ExecConfig::default();
        let samples: [&[u8]; 4] = [b"hello world\0", b"a,b,c\n\0", b"12x\0", b"\0"];
        for u in suite() {
            let m = compile_utility(u, LibcVariant::Native).unwrap();
            for s in samples {
                let r = run_with_buffer(&m, "umain", s, &[(s.len() - 1) as u64], &cfg);
                assert!(
                    matches!(r.outcome, Outcome::Ok),
                    "{} on {:?}: {:?}",
                    u.name,
                    s,
                    r.outcome
                );
            }
        }
    }

    #[test]
    fn libc_variants_agree_observably() {
        // The two libraries must be behaviourally identical from the
        // program's point of view (paper §2.3's equivalence concern).
        let cfg = ExecConfig::default();
        let samples: [&[u8]; 3] = [b"The quick. Brown fox!\0", b"  \t 42\n\0", b"zzz\0"];
        for u in suite() {
            let mn = compile_utility(u, LibcVariant::Native).unwrap();
            let mv = compile_utility(u, LibcVariant::Verify).unwrap();
            for s in samples {
                let n = (s.len() - 1) as u64;
                let rn = run_with_buffer(&mn, "umain", s, &[n], &cfg);
                let rv = run_with_buffer(&mv, "umain", s, &[n], &cfg);
                assert_eq!(rn.ret, rv.ret, "{} ret on {:?}", u.name, s);
                assert_eq!(rn.output, rv.output, "{} output on {:?}", u.name, s);
            }
        }
    }

    #[test]
    fn wc_matches_paper_semantics() {
        // The flagship utility is Listing 1 verbatim; sanity-check counts.
        let u = utility("wc_words").unwrap();
        let m = compile_utility(u, LibcVariant::Native).unwrap();
        let cfg = ExecConfig::default();
        let cases: [(&[u8], u64); 4] = [
            (b"hello world\0", 2),
            (b"  a  b  \0", 2),
            (b"\0", 0),
            (b"one\0", 1),
        ];
        for (s, expect) in cases {
            let r = run_with_buffer(&m, "umain", s, &[(s.len() - 1) as u64], &cfg);
            assert_eq!(r.ret, Some(expect), "input {:?}", s);
        }
    }
}
