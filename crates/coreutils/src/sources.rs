//! MiniC sources of the utility suite.
//!
//! Conventions: entry `int umain(unsigned char *in, int n)`; `in` holds `n`
//! bytes plus a terminating NUL; output goes through `putchar`; the return
//! value is a small summary (count, checksum, status).

use super::Utility;

/// The suite, in stable order (Figure 4's x-axis indexes this).
pub const SUITE: &[Utility] = &[
    Utility {
        name: "echo",
        models: "echo/cat",
        source: r#"
int umain(unsigned char *in, int n) {
    int i = 0;
    while (in[i]) {
        putchar(in[i]);
        i++;
    }
    return i;
}
"#,
    },
    Utility {
        name: "cat_n",
        models: "cat -n / nl",
        source: r#"
int umain(unsigned char *in, int n) {
    int number_lines = n & 1;  // cat -n vs plain cat: invariant flag.
    int line = 1;
    int at_start = 1;
    int i = 0;
    while (in[i]) {
        if (at_start) {
            if (number_lines) {
                putchar('0' + line % 10);
                putchar(':');
            }
            at_start = 0;
        }
        putchar(in[i]);
        if (in[i] == '\n') {
            line++;
            at_start = 1;
        }
        i++;
    }
    return line;
}
"#,
    },
    Utility {
        name: "wc_words",
        models: "wc -w (paper Listing 1)",
        source: r#"
int wc(unsigned char *str, int any) {
    int res = 0;
    int new_word = 1;
    for (unsigned char *p = str; *p; ++p) {
        if (isspace(*p) || (any && !isalpha(*p))) {
            new_word = 1;
        } else {
            if (new_word) {
                ++res;
                new_word = 0;
            }
        }
    }
    return res;
}
int umain(unsigned char *in, int n) {
    // `any` plays the role of a command-line flag: loop-invariant but not
    // a compile-time constant, exactly the unswitching opportunity of
    // paper section 1.
    return wc(in, n & 1);
}
"#,
    },
    Utility {
        name: "wc_lines",
        models: "wc -l",
        source: r#"
int umain(unsigned char *in, int n) {
    int lines = 0;
    for (int i = 0; in[i]; i++) {
        if (in[i] == '\n') lines++;
    }
    return lines;
}
"#,
    },
    Utility {
        name: "wc_bytes",
        models: "wc -c",
        source: r#"
int umain(unsigned char *in, int n) {
    return (int)strlen((char*)in);
}
"#,
    },
    Utility {
        name: "tr_upper",
        models: "tr a-z A-Z",
        source: r#"
int umain(unsigned char *in, int n) {
    int only_alpha = n & 1;   // Invariant option flag.
    int changed = 0;
    for (int i = 0; in[i]; i++) {
        if (only_alpha) {
            if (isalpha(in[i])) {
                int c = toupper(in[i]);
                if (c != in[i]) changed++;
                putchar(c);
            } else {
                putchar(in[i]);
            }
        } else {
            int c = toupper(in[i]);
            if (c != in[i]) changed++;
            putchar(c);
        }
    }
    return changed;
}
"#,
    },
    Utility {
        name: "tr_lower",
        models: "tr A-Z a-z",
        source: r#"
int umain(unsigned char *in, int n) {
    int changed = 0;
    for (int i = 0; in[i]; i++) {
        int c = tolower(in[i]);
        if (c != in[i]) changed++;
        putchar(c);
    }
    return changed;
}
"#,
    },
    Utility {
        name: "rot13",
        models: "tr (rot13)",
        source: r#"
int umain(unsigned char *in, int n) {
    for (int i = 0; in[i]; i++) {
        int c = in[i];
        if (c >= 'a' && c <= 'z') {
            c = 'a' + (c - 'a' + 13) % 26;
        } else if (c >= 'A' && c <= 'Z') {
            c = 'A' + (c - 'A' + 13) % 26;
        }
        putchar(c);
    }
    return 0;
}
"#,
    },
    Utility {
        name: "tr_squeeze",
        models: "tr -s",
        source: r#"
int umain(unsigned char *in, int n) {
    int squeeze_blanks_only = n & 1;  // tr -s ' ' vs tr -s (all).
    int prev = -1;
    int kept = 0;
    for (int i = 0; in[i]; i++) {
        if (squeeze_blanks_only) {
            if (in[i] == prev && in[i] == ' ') {
            } else {
                putchar(in[i]);
                kept++;
            }
        } else {
            if (in[i] != prev) {
                putchar(in[i]);
                kept++;
            }
        }
        prev = in[i];
    }
    return kept;
}
"#,
    },
    Utility {
        name: "cut_f1",
        models: "cut -d: -f1",
        source: r#"
int umain(unsigned char *in, int n) {
    int i = 0;
    while (in[i] && in[i] != ':' && in[i] != ',') {
        putchar(in[i]);
        i++;
    }
    return i;
}
"#,
    },
    Utility {
        name: "expand",
        models: "expand (tabs to spaces)",
        source: r#"
int umain(unsigned char *in, int n) {
    int tabstop = 4;
    if (n & 1) tabstop = 8;   // expand -t8: invariant configuration.
    int col = 0;
    for (int i = 0; in[i]; i++) {
        if (in[i] == '\t') {
            int pad = tabstop - col % tabstop;
            for (int k = 0; k < pad; k++) putchar(' ');
            col += pad;
        } else {
            putchar(in[i]);
            if (in[i] == '\n') col = 0;
            else col++;
        }
    }
    return col;
}
"#,
    },
    Utility {
        name: "fold_w4",
        models: "fold -w4",
        source: r#"
int umain(unsigned char *in, int n) {
    int spaces_only = n & 1;  // fold -s: break at blanks only.
    int col = 0;
    int breaks = 0;
    for (int i = 0; in[i]; i++) {
        putchar(in[i]);
        col++;
        if (in[i] == '\n') col = 0;
        if (col == 4) {
            if (spaces_only) {
                if (in[i] == ' ') {
                    putchar('\n');
                    col = 0;
                    breaks++;
                }
            } else {
                putchar('\n');
                col = 0;
                breaks++;
            }
        }
    }
    return breaks;
}
"#,
    },
    Utility {
        name: "head_c4",
        models: "head -c4",
        source: r#"
int umain(unsigned char *in, int n) {
    int i = 0;
    while (in[i] && i < 4) {
        putchar(in[i]);
        i++;
    }
    return i;
}
"#,
    },
    Utility {
        name: "tail_c4",
        models: "tail -c4",
        source: r#"
int umain(unsigned char *in, int n) {
    long len = strlen((char*)in);
    long start = 0;
    if (len > 4) start = len - 4;
    for (long i = start; i < len; i++) putchar(in[i]);
    return (int)(len - start);
}
"#,
    },
    Utility {
        name: "grep_ab",
        models: "grep (fixed pattern)",
        source: r#"
int umain(unsigned char *in, int n) {
    int hits = 0;
    for (int i = 0; in[i]; i++) {
        if (in[i] == 'a' && in[i + 1] == 'b') hits++;
    }
    return hits;
}
"#,
    },
    Utility {
        name: "uniq_runs",
        models: "uniq -c",
        source: r#"
int umain(unsigned char *in, int n) {
    if (!in[0]) return 0;
    int runs = 1;
    int longest = 1;
    int cur = 1;
    for (int i = 1; in[i]; i++) {
        if (in[i] == in[i - 1]) {
            cur++;
            if (cur > longest) longest = cur;
        } else {
            runs++;
            cur = 1;
        }
    }
    return runs * 100 + longest;
}
"#,
    },
    Utility {
        name: "base64_enc",
        models: "base64",
        source: r#"
const char b64tab[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
int umain(unsigned char *in, int n) {
    int i = 0;
    int out = 0;
    while (i + 2 < n) {
        int v = (in[i] << 16) | (in[i + 1] << 8) | in[i + 2];
        putchar(b64tab[(v >> 18) & 63]);
        putchar(b64tab[(v >> 12) & 63]);
        putchar(b64tab[(v >> 6) & 63]);
        putchar(b64tab[v & 63]);
        i += 3;
        out += 4;
    }
    if (i < n) {
        int v = in[i] << 16;
        if (i + 1 < n) v |= in[i + 1] << 8;
        putchar(b64tab[(v >> 18) & 63]);
        putchar(b64tab[(v >> 12) & 63]);
        if (i + 1 < n) putchar(b64tab[(v >> 6) & 63]);
        else putchar('=');
        putchar('=');
        out += 4;
    }
    return out;
}
"#,
    },
    Utility {
        name: "cksum_x",
        models: "cksum (CRC-flavoured)",
        source: r#"
int umain(unsigned char *in, int n) {
    unsigned int crc = 0;
    for (int i = 0; in[i]; i++) {
        crc = (crc << 3) ^ (crc >> 5) ^ in[i];
    }
    return (int)(crc & 0x7fffffff);
}
"#,
    },
    Utility {
        name: "sum_bsd",
        models: "sum (BSD rotating checksum)",
        source: r#"
int umain(unsigned char *in, int n) {
    unsigned int s = 0;
    for (int i = 0; in[i]; i++) {
        s = (s >> 1) + ((s & 1) << 15);
        s += in[i];
        s &= 0xffff;
    }
    return (int)(s % 255);
}
"#,
    },
    Utility {
        name: "od_hex",
        models: "od -x",
        source: r#"
const char hexdig[] = "0123456789abcdef";
int umain(unsigned char *in, int n) {
    for (int i = 0; i < n; i++) {
        putchar(hexdig[(in[i] >> 4) & 15]);
        putchar(hexdig[in[i] & 15]);
        if (i + 1 < n) putchar(' ');
    }
    return n * 3;
}
"#,
    },
    Utility {
        name: "basename_x",
        models: "basename",
        source: r#"
int umain(unsigned char *in, int n) {
    int last = 0;
    for (int i = 0; in[i]; i++) {
        if (in[i] == '/') last = i + 1;
    }
    int count = 0;
    for (int i = last; in[i]; i++) {
        putchar(in[i]);
        count++;
    }
    return count;
}
"#,
    },
    Utility {
        name: "dirname_x",
        models: "dirname",
        source: r#"
int umain(unsigned char *in, int n) {
    int last = -1;
    for (int i = 0; in[i]; i++) {
        if (in[i] == '/') last = i;
    }
    if (last < 0) {
        putchar('.');
        return 1;
    }
    if (last == 0) last = 1;
    for (int i = 0; i < last; i++) putchar(in[i]);
    return last;
}
"#,
    },
    Utility {
        name: "rev_x",
        models: "rev",
        source: r#"
int umain(unsigned char *in, int n) {
    long len = strlen((char*)in);
    for (long i = len - 1; i >= 0; i--) putchar(in[i]);
    return (int)len;
}
"#,
    },
    Utility {
        name: "yes_8",
        models: "yes | head -8",
        source: r#"
int umain(unsigned char *in, int n) {
    int c = 'y';
    if (in[0]) c = in[0];
    for (int i = 0; i < 8; i++) {
        putchar(c);
        putchar('\n');
    }
    return 16;
}
"#,
    },
    Utility {
        name: "seq_stars",
        models: "seq (bounded)",
        source: r#"
int umain(unsigned char *in, int n) {
    int v = atoi((char*)in);
    if (v < 0) v = 0;
    if (v > 9) v = 9;
    for (int i = 0; i < v; i++) putchar('*');
    return v;
}
"#,
    },
    Utility {
        name: "factor_byte",
        models: "factor (first byte)",
        source: r#"
int umain(unsigned char *in, int n) {
    int v = in[0];
    if (v < 2) return 0;
    int found = 0;
    for (int d = 2; d < 10; d++) {
        while (v % d == 0) {
            putchar('0' + d);
            v = v / d;
            found++;
        }
    }
    return found * 256 + v;
}
"#,
    },
    Utility {
        name: "cmp_halves",
        models: "cmp (split input)",
        source: r#"
int umain(unsigned char *in, int n) {
    int half = n / 2;
    int r = memcmp((char*)in, (char*)in + half, half);
    if (r == 0) return 0;
    if (r < 0) return 1;
    return 2;
}
"#,
    },
    Utility {
        name: "vowel_count",
        models: "tr -cd aeiou | wc -c",
        source: r#"
int umain(unsigned char *in, int n) {
    int v = 0;
    for (int i = 0; in[i]; i++) {
        int c = tolower(in[i]);
        if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') v++;
    }
    return v;
}
"#,
    },
    Utility {
        name: "csv_fields",
        models: "csv field counter (quote-aware)",
        source: r#"
int umain(unsigned char *in, int n) {
    int fields = 1;
    int quoted = 0;
    for (int i = 0; in[i]; i++) {
        if (in[i] == '"') {
            quoted = !quoted;
        } else if (in[i] == ',' && !quoted) {
            fields++;
        }
    }
    if (!in[0]) return 0;
    return fields;
}
"#,
    },
    Utility {
        name: "unesc",
        models: "echo -e (escape processing)",
        source: r#"
int umain(unsigned char *in, int n) {
    int i = 0;
    int out = 0;
    while (in[i]) {
        if (in[i] == '\\' && in[i + 1]) {
            i++;
            if (in[i] == 'n') putchar('\n');
            else if (in[i] == 't') putchar('\t');
            else putchar(in[i]);
        } else {
            putchar(in[i]);
        }
        out++;
        i++;
    }
    return out;
}
"#,
    },
    Utility {
        name: "sort_4",
        models: "sort (first 4 bytes)",
        source: r#"
int umain(unsigned char *in, int n) {
    char buf[4];
    int len = 0;
    while (len < 4 && in[len]) {
        buf[len] = in[len];
        len++;
    }
    for (int i = 1; i < len; i++) {
        char key = buf[i];
        int j = i - 1;
        while (j >= 0 && buf[j] > key) {
            buf[j + 1] = buf[j];
            j--;
        }
        buf[j + 1] = key;
    }
    for (int i = 0; i < len; i++) putchar(buf[i]);
    return len;
}
"#,
    },
    Utility {
        name: "pr_fmt",
        models: "pr (three option flags)",
        source: r#"
int umain(unsigned char *in, int n) {
    int number_lines = n & 1;     // pr -n
    int to_upper = n & 2;         // pr --upper (invented)
    int squeeze = n & 4;          // pr -s
    int line = 1;
    int at_start = 1;
    int prev = -1;
    int out = 0;
    for (int i = 0; in[i]; i++) {
        int c = in[i];
        if (at_start) {
            if (number_lines) {
                putchar('0' + line % 10);
                putchar('|');
                out += 2;
            }
            at_start = 0;
        }
        if (to_upper) {
            c = toupper(c);
        }
        if (squeeze) {
            if (c == ' ' && prev == ' ') {
                prev = c;
                continue;
            }
        }
        putchar(c);
        out++;
        prev = c;
        if (c == '\n') {
            line++;
            at_start = 1;
        }
    }
    return out * 10 + line;
}
"#,
    },
    Utility {
        name: "hash_alnum",
        models: "cksum (polynomial hash, conditional arm is multiply-heavy)",
        source: r#"
int umain(unsigned char *in, int n) {
    unsigned int h = 5381;
    for (int i = 0; in[i]; i++) {
        if (isalnum(in[i])) {
            h = h * 31 * 31 + in[i] * 7;
        }
    }
    return (int)(h & 0x7fffffff);
}
"#,
    },
    Utility {
        name: "score_mix",
        models: "expr-style scoring (cubic arm: too costly for CPU speculation)",
        source: r#"
int umain(unsigned char *in, int n) {
    int acc = 0;
    for (int i = 0; in[i]; i++) {
        int c = in[i];
        if (c > 'm') {
            acc += c * c * c;
        } else if (c > 'a') {
            acc += c * c;
        }
    }
    return acc;
}
"#,
    },
    Utility {
        name: "paste_2",
        models: "paste (interleave halves)",
        source: r#"
int umain(unsigned char *in, int n) {
    int half = n / 2;
    for (int i = 0; i < half; i++) {
        putchar(in[i]);
        putchar(in[half + i]);
    }
    return half * 2;
}
"#,
    },
];
