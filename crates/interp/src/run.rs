//! The concrete execution engine.

use crate::cost::CpuCostModel;
use crate::memory::{MemFault, Memory};
use overify_ir::{
    fold, AbortKind, BlockId, Callee, InstKind, Intrinsic, Module, Operand, Terminator, ValueId,
};
use std::collections::HashMap;

/// Execution limits and environment.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Maximum executed instructions before giving up.
    pub max_steps: u64,
    /// CPU cost model used to accumulate `cycles`.
    pub cost: CpuCostModel,
    /// Bytes delivered by the `sym_input` intrinsic when run concretely.
    pub sym_input: Vec<u8>,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            max_steps: 50_000_000,
            cost: CpuCostModel::default(),
            sym_input: Vec::new(),
        }
    }
}

/// How a concrete run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The entry function returned normally.
    Ok,
    /// The program crashed (the single failure channel).
    Abort(AbortKind),
    /// An `assume` was violated; the run is vacuous, not buggy.
    AssumeViolated,
    /// `max_steps` exhausted.
    OutOfFuel,
    /// Malformed IR or a missing function — an engine-level error.
    Error(String),
}

/// The result of a concrete run.
#[derive(Clone, Debug)]
pub struct ExecResult {
    pub outcome: Outcome,
    /// Return value of the entry function (when `outcome` is `Ok`).
    pub ret: Option<u64>,
    /// Bytes written through `putchar`.
    pub output: Vec<u8>,
    /// Instructions executed.
    pub steps: u64,
    /// Accumulated CPU-model cycles (the paper's `t_run` analogue).
    pub cycles: u64,
    /// Conditional branches executed.
    pub branches: u64,
}

struct Frame {
    func: usize,
    block: BlockId,
    inst_idx: usize,
    regs: Vec<u64>,
    allocas: Vec<u64>,
    /// Where to deposit the callee's return value on return.
    result: Option<ValueId>,
}

struct Interp<'a> {
    m: &'a Module,
    fn_index: HashMap<&'a str, usize>,
    mem: Memory,
    stack: Vec<Frame>,
    cfg: &'a ExecConfig,
    sym_off: usize,
    out: ExecResult,
}

/// Runs `entry(args...)` concretely. Pointer-typed arguments must already be
/// valid encoded pointers (see [`run_with_buffer`] for the common case).
pub fn run_module(m: &Module, entry: &str, args: &[u64], cfg: &ExecConfig) -> ExecResult {
    let mut it = Interp {
        m,
        fn_index: m
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i))
            .collect(),
        mem: Memory::with_globals(m),
        stack: Vec::new(),
        cfg,
        sym_off: 0,
        out: ExecResult {
            outcome: Outcome::Ok,
            ret: None,
            output: Vec::new(),
            steps: 0,
            cycles: 0,
            branches: 0,
        },
    };
    it.out.outcome = it.run(entry, args);
    it.out
}

/// Runs `entry(buffer_ptr, extra...)` with `buffer` materialized in memory.
pub fn run_with_buffer(
    m: &Module,
    entry: &str,
    buffer: &[u8],
    extra_args: &[u64],
    cfg: &ExecConfig,
) -> ExecResult {
    let mut it = Interp {
        m,
        fn_index: m
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i))
            .collect(),
        mem: Memory::with_globals(m),
        stack: Vec::new(),
        cfg,
        sym_off: 0,
        out: ExecResult {
            outcome: Outcome::Ok,
            ret: None,
            output: Vec::new(),
            steps: 0,
            cycles: 0,
            branches: 0,
        },
    };
    let ptr = it.mem.allocate(buffer.len().max(1) as u64, "input");
    if it.mem.write_bytes(ptr, buffer).is_err() {
        it.out.outcome = Outcome::Error("failed to set up input buffer".into());
        return it.out;
    }
    let mut args = vec![ptr];
    args.extend_from_slice(extra_args);
    it.out.outcome = it.run(entry, &args);
    it.out
}

/// Control transferred out of the instruction loop.
enum Flow {
    Continue,
    Stop(Outcome),
}

impl<'a> Interp<'a> {
    fn run(&mut self, entry: &str, args: &[u64]) -> Outcome {
        match self.push_call(entry, args, None) {
            Ok(()) => {}
            Err(o) => return o,
        }
        loop {
            if self.out.steps >= self.cfg.max_steps {
                return Outcome::OutOfFuel;
            }
            match self.step() {
                Ok(Flow::Continue) => {}
                Ok(Flow::Stop(o)) => return o,
                Err(o) => return o,
            }
        }
    }

    fn func_of(&self, idx: usize) -> &'a overify_ir::Function {
        &self.m.functions[idx]
    }

    fn push_call(
        &mut self,
        name: &str,
        args: &[u64],
        result: Option<ValueId>,
    ) -> Result<(), Outcome> {
        let idx = *self
            .fn_index
            .get(name)
            .ok_or_else(|| Outcome::Error(format!("unknown function @{name}")))?;
        let f = self.func_of(idx);
        if f.is_declaration {
            return Err(Outcome::Error(format!("call to undefined @{name}")));
        }
        if args.len() != f.params.len() {
            return Err(Outcome::Error(format!("bad arity calling @{name}")));
        }
        let mut regs = vec![0u64; f.values.len()];
        for (i, &a) in args.iter().enumerate() {
            regs[f.params[i].index()] = a & f.value_ty(f.params[i]).mask();
        }
        self.stack.push(Frame {
            func: idx,
            block: f.entry(),
            inst_idx: 0,
            regs,
            allocas: Vec::new(),
            result,
        });
        Ok(())
    }

    fn eval(&self, op: Operand) -> u64 {
        match op {
            Operand::Const(c) => c.bits,
            Operand::Value(v) => self.stack.last().unwrap().regs[v.index()],
        }
    }

    fn set(&mut self, v: Option<ValueId>, val: u64) {
        if let Some(v) = v {
            let f = self.func_of(self.stack.last().unwrap().func);
            let masked = val & f.value_ty(v).mask();
            self.stack.last_mut().unwrap().regs[v.index()] = masked;
        }
    }

    /// Transfers control to `target`, evaluating its phi nodes in parallel.
    fn enter_block(&mut self, target: BlockId) {
        let frame = self.stack.last().unwrap();
        let f = self.func_of(frame.func);
        let from = frame.block;
        // Evaluate all phis with pre-transfer register values.
        let mut updates: Vec<(ValueId, u64)> = Vec::new();
        let mut phi_count = 0;
        for &id in &f.block(target).insts {
            match &f.inst(id).kind {
                InstKind::Phi { incomings, .. } => {
                    phi_count += 1;
                    if let Some(result) = f.inst(id).result {
                        let op = incomings
                            .iter()
                            .find(|(p, _)| *p == from)
                            .map(|(_, op)| *op)
                            .unwrap_or(Operand::Const(overify_ir::Const::zero(f.value_ty(result))));
                        updates.push((result, self.eval(op)));
                    }
                }
                InstKind::Nop => phi_count += 1,
                _ => break,
            }
        }
        let frame = self.stack.last_mut().unwrap();
        for (v, val) in updates {
            frame.regs[v.index()] = val;
        }
        frame.block = target;
        frame.inst_idx = phi_count;
    }

    fn mem_fault(&self, e: MemFault) -> Outcome {
        match e {
            MemFault::BadObject | MemFault::OutOfBounds | MemFault::ReadOnly => {
                Outcome::Abort(AbortKind::OutOfBounds)
            }
        }
    }

    /// Executes one instruction or terminator.
    fn step(&mut self) -> Result<Flow, Outcome> {
        let frame = self.stack.last().unwrap();
        let f = self.func_of(frame.func);
        let block = f.block(frame.block);

        // Terminator?
        if frame.inst_idx >= block.insts.len() {
            self.out.steps += 1;
            return self.exec_terminator(&block.term.clone());
        }

        let inst_id = block.insts[frame.inst_idx];
        let inst = f.inst(inst_id);
        let kind = inst.kind.clone();
        let result = inst.result;
        self.out.steps += 1;
        self.out.cycles += self.cfg.cost.inst_cost(&kind);
        self.stack.last_mut().unwrap().inst_idx += 1;

        match kind {
            InstKind::Nop => {}
            InstKind::Bin { op, ty, lhs, rhs } => {
                let (a, b) = (self.eval(lhs), self.eval(rhs));
                match fold::eval_bin(op, ty, a, b) {
                    Some(v) => self.set(result, v),
                    None => return Ok(Flow::Stop(Outcome::Abort(AbortKind::DivByZero))),
                }
            }
            InstKind::Cmp { pred, ty, lhs, rhs } => {
                let (a, b) = (self.eval(lhs), self.eval(rhs));
                self.set(result, fold::eval_cmp(pred, ty, a, b) as u64);
            }
            InstKind::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                let c = self.eval(cond);
                let v = if c != 0 {
                    self.eval(on_true)
                } else {
                    self.eval(on_false)
                };
                self.set(result, v);
            }
            InstKind::Cast { op, to, value } => {
                let frame = self.stack.last().unwrap();
                let f = self.func_of(frame.func);
                let from = f.operand_ty(value);
                let v = self.eval(value);
                self.set(result, fold::eval_cast(op, from, to, v));
            }
            InstKind::Alloca { size } => {
                let p = self.mem.allocate(size, "alloca");
                self.stack.last_mut().unwrap().allocas.push(p);
                self.set(result, p);
            }
            InstKind::Load { ty, addr } => {
                let p = self.eval(addr);
                match self.mem.read(p, ty.bytes()) {
                    Ok(v) => self.set(result, v & ty.mask()),
                    Err(e) => return Ok(Flow::Stop(self.mem_fault(e))),
                }
            }
            InstKind::Store { ty, value, addr } => {
                let p = self.eval(addr);
                let v = self.eval(value);
                if let Err(e) = self.mem.write(p, ty.bytes(), v) {
                    return Ok(Flow::Stop(self.mem_fault(e)));
                }
            }
            InstKind::PtrAdd { base, offset } => {
                let b = self.eval(base);
                let o = self.eval(offset);
                self.set(result, b.wrapping_add(o));
            }
            InstKind::GlobalAddr { global } => {
                let p = self.mem.global_ptr(global.0);
                self.set(result, p);
            }
            InstKind::Call { callee, args } => {
                let vals: Vec<u64> = args.iter().map(|a| self.eval(*a)).collect();
                match callee {
                    Callee::Intrinsic(i) => {
                        if let Some(stop) = self.exec_intrinsic(i, &vals, result)? {
                            return Ok(Flow::Stop(stop));
                        }
                    }
                    Callee::Func(name) => {
                        self.push_call(&name, &vals, result)?;
                    }
                }
            }
            InstKind::Phi { .. } => {
                // Phis are consumed by enter_block; reaching one here means
                // fall-through into a block head, which cannot happen.
                return Err(Outcome::Error("phi executed outside block entry".into()));
            }
        }
        Ok(Flow::Continue)
    }

    fn exec_intrinsic(
        &mut self,
        i: Intrinsic,
        args: &[u64],
        result: Option<ValueId>,
    ) -> Result<Option<Outcome>, Outcome> {
        match i {
            Intrinsic::SymInput => {
                let (ptr, len) = (args[0], args[1]);
                for k in 0..len {
                    let byte = self.cfg.sym_input.get(self.sym_off).copied().unwrap_or(0);
                    self.sym_off += 1;
                    if let Err(e) = self.mem.write(ptr + k, 1, byte as u64) {
                        return Ok(Some(self.mem_fault(e)));
                    }
                }
                Ok(None)
            }
            Intrinsic::Assume => {
                if args[0] == 0 {
                    Ok(Some(Outcome::AssumeViolated))
                } else {
                    Ok(None)
                }
            }
            Intrinsic::Assert => {
                if args[0] == 0 {
                    Ok(Some(Outcome::Abort(AbortKind::AssertFail)))
                } else {
                    Ok(None)
                }
            }
            Intrinsic::PutChar => {
                self.out.output.push(args[0] as u8);
                self.set(result, args[0] & 0xff);
                Ok(None)
            }
            Intrinsic::Malloc => {
                let p = self.mem.allocate(args[0].max(1), "malloc");
                self.set(result, p);
                Ok(None)
            }
            Intrinsic::Abort => Ok(Some(Outcome::Abort(AbortKind::Explicit))),
        }
    }

    fn exec_terminator(&mut self, t: &Terminator) -> Result<Flow, Outcome> {
        match t {
            Terminator::Br { target } => {
                self.enter_block(*target);
                Ok(Flow::Continue)
            }
            Terminator::CondBr {
                cond,
                on_true,
                on_false,
            } => {
                self.out.branches += 1;
                self.out.cycles += self.cfg.cost.branch;
                let c = self.eval(*cond);
                let target = if c != 0 { *on_true } else { *on_false };
                self.enter_block(target);
                Ok(Flow::Continue)
            }
            Terminator::Ret { value } => {
                self.out.cycles += self.cfg.cost.call;
                let v = value.map(|op| self.eval(op));
                let frame = self.stack.pop().unwrap();
                for a in frame.allocas {
                    self.mem.kill(a);
                }
                match self.stack.last_mut() {
                    None => {
                        self.out.ret = v;
                        Ok(Flow::Stop(Outcome::Ok))
                    }
                    Some(_) => {
                        if let (Some(dest), Some(v)) = (frame.result, v) {
                            self.set(Some(dest), v);
                        }
                        Ok(Flow::Continue)
                    }
                }
            }
            Terminator::Abort { kind } => Ok(Flow::Stop(Outcome::Abort(*kind))),
            Terminator::Unreachable => {
                Ok(Flow::Stop(Outcome::Abort(AbortKind::UnreachableReached)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Module {
        // The interp crate's dev-dependency on the front-end keeps these
        // tests readable.
        overify_lang_compile(src)
    }

    // Small indirection so the dev-dependency is referenced in one place.
    fn overify_lang_compile(src: &str) -> Module {
        overify_lang::compile(src).expect("test source must compile")
    }

    #[test]
    fn returns_value() {
        let m = compile("int f(int a, int b) { return a * b + 1; }");
        let r = run_module(&m, "f", &[6, 7], &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Ok);
        assert_eq!(r.ret, Some(43));
    }

    #[test]
    fn loops_and_locals() {
        let m =
            compile("int sum(int n) { int s = 0; for (int i = 1; i <= n; i++) s += i; return s; }");
        let r = run_module(&m, "sum", &[100], &ExecConfig::default());
        assert_eq!(r.ret, Some(5050));
        assert!(r.branches >= 100);
    }

    #[test]
    fn signed_arithmetic_wraps_and_compares() {
        let m = compile("int f(int a) { return a / -2; }");
        let r = run_module(
            &m,
            "f",
            &[(-10i64 as u64) & 0xffff_ffff],
            &ExecConfig::default(),
        );
        assert_eq!(r.ret, Some(5));
    }

    #[test]
    fn division_by_zero_aborts() {
        let m = compile("int f(int a, int b) { return a / b; }");
        let r = run_module(&m, "f", &[1, 0], &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Abort(AbortKind::DivByZero));
    }

    #[test]
    fn out_of_bounds_aborts() {
        let m = compile("int f(int i) { char buf[4]; return buf[i]; }");
        let r = run_module(&m, "f", &[10], &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Abort(AbortKind::OutOfBounds));
        let ok = run_module(&m, "f", &[3], &ExecConfig::default());
        assert_eq!(ok.outcome, Outcome::Ok);
    }

    #[test]
    fn null_deref_aborts() {
        let m = compile("int f() { int *p = 0; return *p; }");
        let r = run_module(&m, "f", &[], &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Abort(AbortKind::OutOfBounds));
    }

    #[test]
    fn calls_and_recursion() {
        let m = compile("int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }");
        let r = run_module(&m, "fib", &[12], &ExecConfig::default());
        assert_eq!(r.ret, Some(144));
    }

    #[test]
    fn putchar_collects_output() {
        let m = compile(r#"int f() { putchar('h'); putchar('i'); putchar('\n'); return 0; }"#);
        let r = run_module(&m, "f", &[], &ExecConfig::default());
        assert_eq!(r.output, b"hi\n");
    }

    #[test]
    fn buffer_argument_and_string_scan() {
        let m = compile(
            r#"
            int count_x(unsigned char *s, int n) {
                int c = 0;
                for (int i = 0; i < n; i++) if (s[i] == 'x') c++;
                return c;
            }
            "#,
        );
        let r = run_with_buffer(&m, "count_x", b"axbxcx", &[6], &ExecConfig::default());
        assert_eq!(r.ret, Some(3));
    }

    #[test]
    fn sym_input_feeds_bytes() {
        let m = compile(
            r#"
            int f() {
                char b[3];
                __sym_input(b, 3);
                return b[0] + b[1] + b[2];
            }
            "#,
        );
        let cfg = ExecConfig {
            sym_input: vec![1, 2, 3],
            ..Default::default()
        };
        let r = run_module(&m, "f", &[], &cfg);
        assert_eq!(r.ret, Some(6));
    }

    #[test]
    fn assert_and_assume() {
        let m = compile("int f(int x) { __assert(x != 5); return x; }");
        assert_eq!(
            run_module(&m, "f", &[5], &ExecConfig::default()).outcome,
            Outcome::Abort(AbortKind::AssertFail)
        );
        assert_eq!(
            run_module(&m, "f", &[4], &ExecConfig::default()).outcome,
            Outcome::Ok
        );
        let m2 = compile("int g(int x) { __assume(x > 0); return x; }");
        assert_eq!(
            run_module(&m2, "g", &[0], &ExecConfig::default()).outcome,
            Outcome::AssumeViolated
        );
    }

    #[test]
    fn fuel_limit() {
        let m = compile("int f() { while (1) {} return 0; }");
        let cfg = ExecConfig {
            max_steps: 1000,
            ..Default::default()
        };
        assert_eq!(run_module(&m, "f", &[], &cfg).outcome, Outcome::OutOfFuel);
    }

    #[test]
    fn dangling_stack_pointer_faults() {
        let m = compile(
            r#"
            int *leak() { int x = 1; return &x; }
            int f() { int *p = leak(); return *p; }
            "#,
        );
        let r = run_module(&m, "f", &[], &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Abort(AbortKind::OutOfBounds));
    }

    #[test]
    fn globals_read_write() {
        let m = compile(
            r#"
            int counter = 10;
            const char tab[3] = {5, 6, 7};
            int f() { counter += tab[2]; return counter; }
            "#,
        );
        let r = run_module(&m, "f", &[], &ExecConfig::default());
        assert_eq!(r.ret, Some(17));
    }

    #[test]
    fn cycles_accumulate_with_cost_model() {
        let m = compile("int f(int a, int b) { return a / b + a * b; }");
        let r = run_module(&m, "f", &[8, 2], &ExecConfig::default());
        assert_eq!(r.ret, Some(20));
        // div (20) + mul (3) at minimum.
        assert!(r.cycles >= 23, "cycles = {}", r.cycles);
    }
}
