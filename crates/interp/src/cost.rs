//! CPU cost model.
//!
//! The numbers are stylized x86-ish latencies. Their purpose is not cycle
//! accuracy but preserving the *ordering* the paper reports: branchy code is
//! cheap to execute (branches are nearly free on a CPU) while straight-line
//! speculative code pays for every instruction it executes. This is the
//! "conflicting requirements of fast execution and fast verification"
//! (paper §1).

use overify_ir::{BinOp, InstKind};

/// Per-operation cycle costs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuCostModel {
    /// Default cost of a simple ALU operation.
    pub alu: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide / remainder.
    pub div: u64,
    /// Memory access (load or store), assuming cache hit.
    pub mem: u64,
    /// Taken or not, a well-predicted branch.
    pub branch: u64,
    /// Call/return overhead.
    pub call: u64,
    /// Conditional select (cmov).
    pub select: u64,
}

impl Default for CpuCostModel {
    fn default() -> CpuCostModel {
        CpuCostModel {
            alu: 1,
            mul: 3,
            div: 20,
            mem: 4,
            branch: 2,
            call: 6,
            select: 2,
        }
    }
}

impl CpuCostModel {
    /// Cost of one (non-terminator) instruction.
    pub fn inst_cost(&self, kind: &InstKind) -> u64 {
        match kind {
            InstKind::Bin { op, .. } => match op {
                BinOp::Mul => self.mul,
                BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem => self.div,
                _ => self.alu,
            },
            InstKind::Cmp { .. } | InstKind::Cast { .. } | InstKind::PtrAdd { .. } => self.alu,
            InstKind::Select { .. } => self.select,
            InstKind::Load { .. } | InstKind::Store { .. } => self.mem,
            InstKind::Alloca { .. } | InstKind::GlobalAddr { .. } => self.alu,
            InstKind::Call { .. } => self.call,
            InstKind::Phi { .. } | InstKind::Nop => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_ir::{Operand, Ty, ValueId};

    #[test]
    fn relative_costs_are_sane() {
        let m = CpuCostModel::default();
        let add = InstKind::Bin {
            op: BinOp::Add,
            ty: Ty::I32,
            lhs: Operand::Value(ValueId(0)),
            rhs: Operand::Value(ValueId(1)),
        };
        let div = InstKind::Bin {
            op: BinOp::UDiv,
            ty: Ty::I32,
            lhs: Operand::Value(ValueId(0)),
            rhs: Operand::Value(ValueId(1)),
        };
        assert!(m.inst_cost(&div) > m.inst_cost(&add));
        assert!(m.branch < m.div);
        let phi = InstKind::Phi {
            ty: Ty::I32,
            incomings: vec![],
        };
        assert_eq!(m.inst_cost(&phi), 0);
    }
}
