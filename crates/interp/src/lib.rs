//! `overify-interp`: a concrete interpreter for overify IR.
//!
//! Two jobs:
//!
//! 1. **Measure `t_run`.** Table 1 of the paper shows that verification-
//!    optimized code *executes slower* on a CPU (the branch-free `wc` loop
//!    runs ~2.5× longer than the `-O3` version). The interpreter charges
//!    each instruction according to a simple CPU cost model so this
//!    crossover is reproducible deterministically.
//! 2. **Differential testing.** Every optimization level must preserve
//!    program behaviour; the test suites run the same inputs through
//!    modules compiled at different levels and compare outputs, return
//!    values and outcomes.
//!
//! Pointers are encoded as `(object_id << 32) | offset`, making pointer
//! arithmetic plain integer arithmetic, exactly as in the symbolic engine.

pub mod cost;
pub mod memory;
pub mod run;

pub use cost::CpuCostModel;
pub use memory::{decode_ptr, encode_ptr, MemObject, Memory};
pub use run::{run_module, run_with_buffer, ExecConfig, ExecResult, Outcome};
