//! Object-based concrete memory.
//!
//! Every allocation (global, alloca, malloc) is an independent object; a
//! pointer is `(object_id << 32) | offset`. Out-of-bounds offsets survive
//! pointer arithmetic (as in C) but fault on access, which is exactly the
//! failure the runtime-checks pass and the verification engines look for.

use overify_ir::Module;

/// Number of low bits holding the intra-object offset.
pub const OFFSET_BITS: u32 = 32;

/// Builds a pointer value from an object id and a byte offset.
pub fn encode_ptr(obj: u32, offset: u32) -> u64 {
    ((obj as u64) << OFFSET_BITS) | offset as u64
}

/// Splits a pointer value into `(object_id, offset)`.
pub fn decode_ptr(ptr: u64) -> (u32, u32) {
    ((ptr >> OFFSET_BITS) as u32, ptr as u32)
}

/// One allocation.
#[derive(Clone, Debug)]
pub struct MemObject {
    pub data: Vec<u8>,
    /// Constant globals are read-only.
    pub writable: bool,
    /// Stack objects die when their frame returns; access then faults.
    pub alive: bool,
    /// Debug name (global name, or "alloca"/"malloc").
    pub name: String,
}

/// The object table. Object 0 is reserved so that the null pointer (0)
/// never resolves.
#[derive(Clone, Debug)]
pub struct Memory {
    objects: Vec<MemObject>,
}

/// A memory access fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemFault {
    /// Null, dangling or never-allocated object.
    BadObject,
    /// Offset + width exceeds the object size.
    OutOfBounds,
    /// Write to a read-only object.
    ReadOnly,
}

impl Memory {
    /// Creates a memory image with all of the module's globals materialized
    /// as objects `1..=n` in order.
    pub fn with_globals(m: &Module) -> Memory {
        let mut objects = vec![MemObject {
            data: Vec::new(),
            writable: false,
            alive: false,
            name: "<null>".into(),
        }];
        for g in &m.globals {
            let mut data = g.init.clone();
            data.resize(g.size as usize, 0);
            objects.push(MemObject {
                data,
                writable: !g.is_const,
                alive: true,
                name: g.name.clone(),
            });
        }
        Memory { objects }
    }

    /// Pointer to global `index` (the module's global ordering).
    pub fn global_ptr(&self, index: u32) -> u64 {
        encode_ptr(index + 1, 0)
    }

    /// Allocates a fresh object, returning its pointer.
    pub fn allocate(&mut self, size: u64, name: &str) -> u64 {
        let id = self.objects.len() as u32;
        self.objects.push(MemObject {
            data: vec![0; size as usize],
            writable: true,
            alive: true,
            name: name.into(),
        });
        encode_ptr(id, 0)
    }

    /// Marks an object dead (stack frame unwound).
    pub fn kill(&mut self, ptr: u64) {
        let (obj, _) = decode_ptr(ptr);
        if let Some(o) = self.objects.get_mut(obj as usize) {
            o.alive = false;
        }
    }

    /// Object lookup with liveness check.
    fn object(&self, id: u32) -> Result<&MemObject, MemFault> {
        match self.objects.get(id as usize) {
            Some(o) if o.alive => Ok(o),
            _ => Err(MemFault::BadObject),
        }
    }

    /// Reads `width` bytes at `ptr`, little-endian.
    pub fn read(&self, ptr: u64, width: u64) -> Result<u64, MemFault> {
        let (id, off) = decode_ptr(ptr);
        let o = self.object(id)?;
        let off = off as usize;
        let w = width as usize;
        if off + w > o.data.len() {
            return Err(MemFault::OutOfBounds);
        }
        let mut buf = [0u8; 8];
        buf[..w].copy_from_slice(&o.data[off..off + w]);
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes `width` bytes of `value` at `ptr`, little-endian.
    pub fn write(&mut self, ptr: u64, width: u64, value: u64) -> Result<(), MemFault> {
        let (id, off) = decode_ptr(ptr);
        // Inline the checks to appease the borrow checker.
        let o = match self.objects.get_mut(id as usize) {
            Some(o) if o.alive => o,
            _ => return Err(MemFault::BadObject),
        };
        if !o.writable {
            return Err(MemFault::ReadOnly);
        }
        let off = off as usize;
        let w = width as usize;
        if off + w > o.data.len() {
            return Err(MemFault::OutOfBounds);
        }
        o.data[off..off + w].copy_from_slice(&value.to_le_bytes()[..w]);
        Ok(())
    }

    /// Copies a byte slice into an object (used to set up input buffers).
    pub fn write_bytes(&mut self, ptr: u64, bytes: &[u8]) -> Result<(), MemFault> {
        for (i, &b) in bytes.iter().enumerate() {
            self.write(ptr + i as u64, 1, b as u64)?;
        }
        Ok(())
    }

    /// Size of the object `ptr` points into.
    pub fn object_size(&self, ptr: u64) -> Result<u64, MemFault> {
        let (id, _) = decode_ptr(ptr);
        Ok(self.object(id)?.data.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let p = encode_ptr(7, 123);
        assert_eq!(decode_ptr(p), (7, 123));
        assert_eq!(decode_ptr(0), (0, 0));
    }

    #[test]
    fn alloc_read_write() {
        let m = Module::new();
        let mut mem = Memory::with_globals(&m);
        let p = mem.allocate(8, "buf");
        mem.write(p, 4, 0xdeadbeef).unwrap();
        assert_eq!(mem.read(p, 4).unwrap(), 0xdeadbeef);
        assert_eq!(mem.read(p, 1).unwrap(), 0xef);
        // Little-endian layout.
        assert_eq!(mem.read(p + 3, 1).unwrap(), 0xde);
    }

    #[test]
    fn faults() {
        let m = Module::new();
        let mut mem = Memory::with_globals(&m);
        let p = mem.allocate(4, "buf");
        assert_eq!(mem.read(p, 8), Err(MemFault::OutOfBounds));
        assert_eq!(mem.read(p + 4, 1), Err(MemFault::OutOfBounds));
        assert_eq!(mem.read(0, 1), Err(MemFault::BadObject));
        mem.kill(p);
        assert_eq!(mem.read(p, 1), Err(MemFault::BadObject));
    }

    #[test]
    fn globals_are_materialized() {
        let mut m = Module::new();
        m.add_global(overify_ir::Global {
            name: "tab".into(),
            size: 4,
            init: vec![9, 8],
            is_const: true,
        });
        let mut mem = Memory::with_globals(&m);
        let p = mem.global_ptr(0);
        assert_eq!(mem.read(p, 1).unwrap(), 9);
        assert_eq!(mem.read(p + 2, 1).unwrap(), 0); // Zero-filled tail.
        assert_eq!(mem.write(p, 1, 1), Err(MemFault::ReadOnly));
    }
}
