//! The wire protocol: length-prefixed binary frames over a local TCP
//! stream, in the style of `overify_store::codec` — no serde, no external
//! dependencies, every read tolerant of truncation.
//!
//! Framing:
//!
//! ```text
//! frame:  len u32 (LE) | payload (len bytes)
//! ```
//!
//! The first frame on every connection is the server's [`Event::Hello`]
//! (magic + protocol version), so a client talking to the wrong port or
//! the wrong build fails the handshake instead of mis-decoding. After
//! that, the client sends [`Request`] frames and the server streams
//! [`Event`] frames; submissions are pipelined and events carry the job id
//! they belong to, so one connection can have many jobs in flight.
//!
//! Verification reports travel in the *report-artifact* encoding
//! ([`overify_store::artifact::encode_report`]): a report round-trips
//! bit-identically whether it comes from the store or over the wire —
//! which is what lets the warm-resubmit tests compare them byte for byte.

use overify::{
    DonationPolicy, OptLevel, SearchStrategy, StoreStats, SuiteJob, SuiteJobResult, SymArg,
    SymConfig,
};
use overify_store::artifact::{decode_report, encode_report, level_from_tag, level_tag};
use overify_store::codec::{Reader, Writer};
use std::io::{self, Read, Write};
use std::time::Duration;

/// Handshake magic: the first bytes of every connection's `Hello` frame.
pub const MAGIC: &[u8; 8] = b"OVFYSRV\0";
/// Protocol version; both sides must match exactly.
pub const VERSION: u32 = 1;
/// Upper bound on one frame (a full report sweep with collected tests fits
/// comfortably; anything bigger is a framing error, not a payload).
pub const MAX_FRAME: u32 = 1 << 26;

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME as usize);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn decode_error(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed {what} frame"),
    )
}

/// One verification job as submitted over the wire: a [`SuiteJob`] with
/// the build reduced to its optimization level (wire jobs always use the
/// level's default libc and linking — the suite convention).
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    pub name: String,
    pub source: String,
    pub entry: String,
    pub level: OptLevel,
    pub bytes: Vec<usize>,
    pub path_workers: usize,
    pub cfg: SymConfig,
}

impl JobSpec {
    /// A spec from a suite job (custom build overrides — cost models,
    /// forced libcs — are not wire-expressible and are dropped).
    pub fn from_suite_job(job: &SuiteJob) -> JobSpec {
        JobSpec {
            name: job.name.clone(),
            source: job.source.clone(),
            entry: job.entry.clone(),
            level: job.opts.level,
            bytes: job.bytes.clone(),
            path_workers: job.path_workers,
            cfg: job.cfg.clone(),
        }
    }

    /// The suite job this spec describes.
    pub fn to_suite_job(&self) -> SuiteJob {
        SuiteJob {
            name: self.name.clone(),
            source: self.source.clone(),
            entry: self.entry.clone(),
            opts: overify::BuildOptions::level(self.level),
            bytes: self.bytes.clone(),
            cfg: self.cfg.clone(),
            path_workers: self.path_workers,
        }
    }
}

/// Client → server messages.
// (The size skew between Submit and the flag variants is fine: requests
// are built once per submission, never stored in bulk.)
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit a job; the server responds with a stream of events for it.
    Submit(JobSpec),
    /// Ask for a server statistics snapshot.
    Stats,
    /// Ask the server to drain and exit.
    Shutdown,
}

/// A server statistics snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStatsSnapshot {
    /// Jobs received over all connections.
    pub submitted: u64,
    /// Jobs answered immediately from the report store.
    pub answered_from_store: u64,
    /// Jobs handed to the executor pool.
    pub executed: u64,
    /// Jobs waiting in the scheduler right now.
    pub queued: u64,
    /// Jobs running right now.
    pub active: u64,
    /// Persistent-store counters (zeroes when the server runs storeless).
    pub store: StoreStats,
}

/// The outcome of one job, as it travels the wire. Field-for-field a
/// [`SuiteJobResult`] (compile time in nanoseconds).
#[derive(Clone, Debug, PartialEq)]
pub struct JobOutcome {
    pub name: String,
    pub level: OptLevel,
    pub compile_nanos: u64,
    pub from_store: bool,
    pub error: Option<String>,
    pub runs: Vec<(usize, overify::VerificationReport)>,
}

impl JobOutcome {
    /// Wraps a finished suite result.
    pub fn from_result(r: &SuiteJobResult) -> JobOutcome {
        JobOutcome {
            name: r.name.clone(),
            level: r.level,
            compile_nanos: r.compile_time.as_nanos().min(u64::MAX as u128) as u64,
            from_store: r.from_store,
            error: r.error.clone(),
            runs: r.runs.clone(),
        }
    }

    /// Unwraps into the suite result type.
    pub fn into_result(self) -> SuiteJobResult {
        SuiteJobResult {
            name: self.name,
            level: self.level,
            compile_time: Duration::from_nanos(self.compile_nanos),
            runs: self.runs,
            error: self.error,
            from_store: self.from_store,
        }
    }
}

/// Server → client messages. Every job-scoped event carries its job id;
/// ids are assigned by the server and echoed in submission order per
/// connection, so a pipelining client can demultiplex.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// Connection handshake (always the first frame).
    Hello { version: u32 },
    /// The job missed the store and entered the scheduler.
    Queued {
        job: u64,
        /// Jobs ahead of it (including running ones) at enqueue time.
        position: u64,
        /// The scheduler's cost estimate (observed nanoseconds when the
        /// store has history for the key, a static estimate otherwise).
        predicted_cost: u128,
    },
    /// An executor picked the job up.
    Scheduled { job: u64 },
    /// Live counters of a running job (sampled; monotone per job).
    Progress {
        job: u64,
        runs_done: u32,
        runs_total: u32,
        paths: u64,
        bugs: u64,
        instructions: u64,
    },
    /// The job's final outcome (always the job's last event).
    Report { job: u64, outcome: JobOutcome },
    /// Answer to [`Request::Stats`].
    Stats(ServeStatsSnapshot),
    /// Answer to [`Request::Shutdown`]: the server is draining.
    ShuttingDown,
}

fn encode_sym_config(w: &mut Writer, cfg: &SymConfig) {
    w.u64(cfg.input_bytes as u64);
    w.u32(cfg.extra_args.len() as u32);
    for a in &cfg.extra_args {
        match a {
            SymArg::Concrete(v) => {
                w.u8(0);
                w.u64(*v);
            }
            SymArg::Symbolic => w.u8(1),
        }
    }
    w.u8(cfg.pass_len_arg as u8);
    w.u64(cfg.max_paths);
    w.u64(cfg.max_instructions);
    w.u64(cfg.timeout.as_nanos().min(u64::MAX as u128) as u64);
    w.u8(cfg.collect_tests as u8);
    w.u8(cfg.use_annotations as u8);
    w.u8(cfg.solver.use_intervals as u8);
    w.u8(cfg.solver.use_cex_cache as u8);
    w.u8(cfg.solver.use_query_cache as u8);
    w.u8(cfg.solver.use_shared_cache as u8);
    w.u8(cfg.solver.use_enumeration as u8);
    match cfg.search {
        SearchStrategy::Dfs => w.u8(0),
        SearchStrategy::Bfs => w.u8(1),
        SearchStrategy::RandomState(seed) => {
            w.u8(2);
            w.u64(seed);
        }
    }
    match cfg.donation {
        DonationPolicy::OldestState => w.u8(0),
        DonationPolicy::StealHalf => w.u8(1),
    }
    w.u64(cfg.max_ite_span);
}

fn decode_sym_config(r: &mut Reader) -> Option<SymConfig> {
    let mut cfg = SymConfig {
        input_bytes: r.u64()? as usize,
        ..Default::default()
    };
    for _ in 0..r.u32()? {
        cfg.extra_args.push(match r.u8()? {
            0 => SymArg::Concrete(r.u64()?),
            1 => SymArg::Symbolic,
            _ => return None,
        });
    }
    cfg.pass_len_arg = r.u8()? != 0;
    cfg.max_paths = r.u64()?;
    cfg.max_instructions = r.u64()?;
    cfg.timeout = Duration::from_nanos(r.u64()?);
    cfg.collect_tests = r.u8()? != 0;
    cfg.use_annotations = r.u8()? != 0;
    cfg.solver.use_intervals = r.u8()? != 0;
    cfg.solver.use_cex_cache = r.u8()? != 0;
    cfg.solver.use_query_cache = r.u8()? != 0;
    cfg.solver.use_shared_cache = r.u8()? != 0;
    cfg.solver.use_enumeration = r.u8()? != 0;
    cfg.search = match r.u8()? {
        0 => SearchStrategy::Dfs,
        1 => SearchStrategy::Bfs,
        2 => SearchStrategy::RandomState(r.u64()?),
        _ => return None,
    };
    cfg.donation = match r.u8()? {
        0 => DonationPolicy::OldestState,
        1 => DonationPolicy::StealHalf,
        _ => return None,
    };
    cfg.max_ite_span = r.u64()?;
    Some(cfg)
}

fn encode_spec(w: &mut Writer, spec: &JobSpec) {
    w.str(&spec.name);
    w.str(&spec.source);
    w.str(&spec.entry);
    w.u8(level_tag(spec.level));
    w.u32(spec.bytes.len() as u32);
    for &b in &spec.bytes {
        w.u64(b as u64);
    }
    w.u64(spec.path_workers as u64);
    encode_sym_config(w, &spec.cfg);
}

fn decode_spec(r: &mut Reader) -> Option<JobSpec> {
    let name = r.str()?;
    let source = r.str()?;
    let entry = r.str()?;
    let level = level_from_tag(r.u8()?)?;
    let n = r.u32()?;
    let mut bytes = Vec::with_capacity(n as usize);
    for _ in 0..n {
        bytes.push(r.u64()? as usize);
    }
    Some(JobSpec {
        name,
        source,
        entry,
        level,
        bytes,
        path_workers: r.u64()? as usize,
        cfg: decode_sym_config(r)?,
    })
}

/// Serializes a request frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = Writer::default();
    match req {
        Request::Submit(spec) => {
            w.u8(0);
            encode_spec(&mut w, spec);
        }
        Request::Stats => w.u8(1),
        Request::Shutdown => w.u8(2),
    }
    w.buf
}

/// Deserializes a request frame payload.
pub fn decode_request(bytes: &[u8]) -> io::Result<Request> {
    let mut r = Reader::new(bytes);
    let req = match r.u8() {
        Some(0) => decode_spec(&mut r).map(Request::Submit),
        Some(1) => Some(Request::Stats),
        Some(2) => Some(Request::Shutdown),
        _ => None,
    };
    match req {
        Some(req) if r.remaining() == 0 => Ok(req),
        _ => Err(decode_error("request")),
    }
}

fn encode_outcome(w: &mut Writer, o: &JobOutcome) {
    w.str(&o.name);
    w.u8(level_tag(o.level));
    w.u64(o.compile_nanos);
    w.u8(o.from_store as u8);
    match &o.error {
        None => w.u8(0),
        Some(e) => {
            w.u8(1);
            w.str(e);
        }
    }
    w.u32(o.runs.len() as u32);
    for (bytes, report) in &o.runs {
        w.u64(*bytes as u64);
        encode_report(w, report);
    }
}

fn decode_outcome(r: &mut Reader) -> Option<JobOutcome> {
    let name = r.str()?;
    let level = level_from_tag(r.u8()?)?;
    let compile_nanos = r.u64()?;
    let from_store = r.u8()? != 0;
    let error = match r.u8()? {
        0 => None,
        1 => Some(r.str()?),
        _ => return None,
    };
    let n = r.u32()?;
    let mut runs = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let bytes = r.u64()? as usize;
        runs.push((bytes, decode_report(r)?));
    }
    Some(JobOutcome {
        name,
        level,
        compile_nanos,
        from_store,
        error,
        runs,
    })
}

fn encode_stats(w: &mut Writer, s: &ServeStatsSnapshot) {
    for v in [
        s.submitted,
        s.answered_from_store,
        s.executed,
        s.queued,
        s.active,
        s.store.report_hits,
        s.store.report_misses,
        s.store.reports_saved,
        s.store.solver_entries_loaded,
        s.store.solver_entries_saved,
        s.store.log_bytes_dropped,
    ] {
        w.u64(v);
    }
}

fn decode_stats(r: &mut Reader) -> Option<ServeStatsSnapshot> {
    Some(ServeStatsSnapshot {
        submitted: r.u64()?,
        answered_from_store: r.u64()?,
        executed: r.u64()?,
        queued: r.u64()?,
        active: r.u64()?,
        store: StoreStats {
            report_hits: r.u64()?,
            report_misses: r.u64()?,
            reports_saved: r.u64()?,
            solver_entries_loaded: r.u64()?,
            solver_entries_saved: r.u64()?,
            log_bytes_dropped: r.u64()?,
        },
    })
}

/// Serializes an event frame payload.
pub fn encode_event(ev: &Event) -> Vec<u8> {
    let mut w = Writer::default();
    match ev {
        Event::Hello { version } => {
            w.u8(0);
            w.buf.extend_from_slice(MAGIC);
            w.u32(*version);
        }
        Event::Queued {
            job,
            position,
            predicted_cost,
        } => {
            w.u8(1);
            w.u64(*job);
            w.u64(*position);
            w.u128(*predicted_cost);
        }
        Event::Scheduled { job } => {
            w.u8(2);
            w.u64(*job);
        }
        Event::Progress {
            job,
            runs_done,
            runs_total,
            paths,
            bugs,
            instructions,
        } => {
            w.u8(3);
            w.u64(*job);
            w.u32(*runs_done);
            w.u32(*runs_total);
            w.u64(*paths);
            w.u64(*bugs);
            w.u64(*instructions);
        }
        Event::Report { job, outcome } => {
            w.u8(4);
            w.u64(*job);
            encode_outcome(&mut w, outcome);
        }
        Event::Stats(s) => {
            w.u8(5);
            encode_stats(&mut w, s);
        }
        Event::ShuttingDown => w.u8(6),
    }
    w.buf
}

/// Deserializes an event frame payload.
pub fn decode_event(bytes: &[u8]) -> io::Result<Event> {
    let mut r = Reader::new(bytes);
    let ev = match r.u8() {
        Some(0) => {
            let magic = r.bytes_exact(MAGIC.len());
            if magic != Some(&MAGIC[..]) {
                None
            } else {
                r.u32().map(|version| Event::Hello { version })
            }
        }
        Some(1) => (|| {
            Some(Event::Queued {
                job: r.u64()?,
                position: r.u64()?,
                predicted_cost: r.u128()?,
            })
        })(),
        Some(2) => r.u64().map(|job| Event::Scheduled { job }),
        Some(3) => (|| {
            Some(Event::Progress {
                job: r.u64()?,
                runs_done: r.u32()?,
                runs_total: r.u32()?,
                paths: r.u64()?,
                bugs: r.u64()?,
                instructions: r.u64()?,
            })
        })(),
        Some(4) => (|| {
            Some(Event::Report {
                job: r.u64()?,
                outcome: decode_outcome(&mut r)?,
            })
        })(),
        Some(5) => decode_stats(&mut r).map(Event::Stats),
        Some(6) => Some(Event::ShuttingDown),
        _ => None,
    };
    match ev {
        Some(ev) if r.remaining() == 0 => Ok(ev),
        _ => Err(decode_error("event")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify::{Bug, BugKind, SolverStats, VerificationReport};

    fn sample_spec() -> JobSpec {
        JobSpec {
            name: "wc_words".into(),
            source: "int umain(unsigned char *in, int n) { return in[0]; }".into(),
            entry: "umain".into(),
            level: OptLevel::Overify,
            bytes: vec![2, 3],
            path_workers: 4,
            cfg: SymConfig {
                input_bytes: 3,
                pass_len_arg: true,
                collect_tests: true,
                extra_args: vec![SymArg::Concrete(7), SymArg::Symbolic],
                search: SearchStrategy::RandomState(42),
                donation: DonationPolicy::StealHalf,
                ..Default::default()
            },
        }
    }

    fn sample_outcome() -> JobOutcome {
        JobOutcome {
            name: "wc_words".into(),
            level: OptLevel::O3,
            compile_nanos: 123_456,
            from_store: true,
            error: None,
            runs: vec![(
                2,
                VerificationReport {
                    paths_completed: 9,
                    bugs: vec![Bug {
                        kind: BugKind::OutOfBounds,
                        location: "umain/b2".into(),
                        input: vec![1, 2],
                    }],
                    solver: SolverStats {
                        queries: 40,
                        ..Default::default()
                    },
                    exhausted: true,
                    ..Default::default()
                },
            )],
        }
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Submit(sample_spec()),
            Request::Stats,
            Request::Shutdown,
        ] {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn events_round_trip() {
        let events = [
            Event::Hello { version: VERSION },
            Event::Queued {
                job: 3,
                position: 2,
                predicted_cost: 1 << 80,
            },
            Event::Scheduled { job: 3 },
            Event::Progress {
                job: 3,
                runs_done: 1,
                runs_total: 2,
                paths: 100,
                bugs: 2,
                instructions: 1 << 40,
            },
            Event::Report {
                job: 3,
                outcome: sample_outcome(),
            },
            Event::Stats(ServeStatsSnapshot {
                submitted: 10,
                answered_from_store: 4,
                executed: 6,
                queued: 1,
                active: 2,
                store: StoreStats {
                    report_hits: 4,
                    ..Default::default()
                },
            }),
            Event::ShuttingDown,
        ];
        for ev in events {
            let bytes = encode_event(&ev);
            assert_eq!(decode_event(&bytes).unwrap(), ev, "{ev:?}");
        }
    }

    #[test]
    fn truncated_or_trailing_bytes_are_rejected() {
        let good = encode_event(&Event::Report {
            job: 1,
            outcome: sample_outcome(),
        });
        for cut in [0, 1, good.len() / 2, good.len() - 1] {
            assert!(decode_event(&good[..cut]).is_err(), "cut={cut}");
        }
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_event(&padded).is_err(), "trailing byte");
        assert!(decode_request(&encode_event(&Event::ShuttingDown)[..0]).is_err());
    }

    #[test]
    fn spec_round_trips_through_suite_job() {
        let spec = sample_spec();
        let again = JobSpec::from_suite_job(&spec.to_suite_job());
        assert_eq!(again, spec);
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(read_frame(&mut r).is_err(), "EOF");
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(read_frame(&mut &oversized[..]).is_err());
    }
}
