//! The wire protocol: length-prefixed binary frames over a local TCP
//! stream, in the style of `overify_store::codec` — no serde, no external
//! dependencies, every read tolerant of truncation.
//!
//! Framing:
//!
//! ```text
//! frame:  len u32 (LE) | payload (len bytes)
//! ```
//!
//! The first frame on every connection is the server's [`Event::Hello`]
//! (magic + protocol version), so a client talking to the wrong port or
//! the wrong build fails the handshake instead of mis-decoding. After
//! that, the client sends [`Request`] frames and the server streams
//! [`Event`] frames; submissions are pipelined and events carry the job id
//! they belong to, so one connection can have many jobs in flight.
//!
//! **Version 2** adds the worker side of the protocol: a remote worker
//! process attaches with [`Request::AttachWorker`], long-polls
//! [`Request::StealJobs`] for leases of path-level subtree jobs (a
//! [`JobSpec`] plus a replayable branch-decision trace), sheds frontier
//! states back mid-subtree with [`Request::OfferStates`], and completes a
//! lease with [`Request::JobDone`] carrying its partial
//! [`overify::VerificationReport`]. Decision traces are bit-packed by
//! [`encode_trace`] / [`decode_trace`].
//!
//! **Version 3** makes content addressing function-grained: outcomes
//! carry [`JobOutcome::from_slice`] (the answer was spliced from a stored
//! function-slice verdict after the whole-module key missed), and stats
//! snapshots carry the daemon's splice counter plus the store's
//! slice-grain counters.
//!
//! **Version 4** turns the fleet into a cache-learning fabric:
//! [`Request::JobDone`] piggybacks the worker's solver-cache delta (the
//! verdicts it derived while exploring its subtree), so a daemon folds
//! remote SAT work into its warm cache and persists it for every future
//! run. Stats snapshots grow the fabric counters — reaped leases, stale
//! frames from reaped leases, upstreamed verdicts, and the store's
//! live-tailed entry count.
//!
//! **Version 6** is the fleet telemetry plane: workers periodically
//! upstream delta-encoded metrics snapshots with [`Request::MetricsPush`]
//! (answered [`Event::MetricsAck`]), the daemon folds them into
//! per-worker tables plus a fleet rollup, and [`Request::Metrics`] gains
//! a [`MetricsScope`] selecting the daemon's own registry, one worker's
//! table, or the whole-fleet view. Outcomes carry the run's resource
//! ledger ([`JobOutcome::ledger`]) and metrics answers carry the slow-
//! query log, so a scrape sees where every run's time went.
//!
//! **Version 7** is admission control for the public gateway tier:
//! submissions carry a tenant key ([`Request::Submit`]'s `tenant`) that
//! feeds the scheduler's per-tenant fairness, a daemon at its connection
//! cap answers the handshake with [`Event::Busy`] instead of `Hello`, a
//! full bounded queue sheds a submission with [`Event::Shed`] (both carry
//! an explicit retry hint), and outcomes carry the store key of the
//! verdict that answered them ([`JobOutcome::verdict_key`]) so a front
//! end can point at the artifact without recomputing content addresses.
//!
//! Every decode failure is a typed [`ProtocolError`] — oversized frames,
//! unknown tags, truncated payloads and trailing garbage are distinct,
//! diagnosable conditions, never a blind read.
//!
//! Verification reports travel in the *report-artifact* encoding
//! ([`overify_store::artifact::encode_report`]): a report round-trips
//! bit-identically whether it comes from the store or over the wire —
//! which is what lets the warm-resubmit tests compare them byte for byte.

use overify::{
    DonationPolicy, OptLevel, SearchStrategy, StoreStats, SuiteJob, SuiteJobResult, SymArg,
    SymConfig, VerificationReport,
};
use overify_store::artifact::{decode_report, encode_report, level_from_tag, level_tag};
use overify_store::codec::{Reader, Writer};
use overify_symex::{CachedVerdict, Model};
use std::io::{self, Read, Write};
use std::time::Duration;

/// Handshake magic: the first bytes of every connection's `Hello` frame.
pub const MAGIC: &[u8; 8] = b"OVFYSRV\0";
/// Protocol version; both sides must match exactly. v2 added the
/// worker-attachment frames (frontier sharding across processes); v3 the
/// function-slice splice fields in outcomes and stats; v4 the solver-cache
/// delta on `JobDone` and the fabric stats fields; v5 the `Metrics`
/// introspection frames and the trace correlation ids on
/// `Submit`/`LeasedJob`/`JobDone`, so daemon and worker flight-recorder
/// spans stitch into one distributed timeline; v6 the fleet telemetry
/// plane — `MetricsPush` upstreaming, scoped `Metrics`, per-run ledgers
/// on outcomes and the slow-query log on metrics answers; v7 the
/// admission-control frames — tenant keys on `Submit`, `Busy` at the
/// connection cap, `Shed` from the bounded queue, and verdict store keys
/// on outcomes.
pub const VERSION: u32 = 7;
/// Upper bound on one frame (a full report sweep with collected tests fits
/// comfortably; anything bigger is a framing error, not a payload).
pub const MAX_FRAME: u32 = 1 << 26;

/// Everything that can go wrong turning wire bytes into protocol values.
/// Typed so peers (and tests) can tell an oversized frame from a
/// truncated payload from an unknown tag instead of pattern-matching
/// error strings.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying transport failed (includes EOF mid-frame).
    Io(io::Error),
    /// A frame length prefix exceeded [`MAX_FRAME`].
    Oversized { len: u32 },
    /// A payload ended before its frame was fully decoded, or carried a
    /// structurally invalid value.
    Malformed { what: &'static str },
    /// A frame led with a tag this build does not know.
    UnknownTag { what: &'static str, tag: u8 },
    /// A frame decoded completely but left unconsumed bytes.
    TrailingBytes {
        what: &'static str,
        remaining: usize,
    },
    /// A `Hello` frame without the handshake magic: not an overify-serve
    /// peer at all.
    BadMagic,
    /// The peer speaks a different protocol version.
    VersionSkew { peer: u32, ours: u32 },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "transport error: {e}"),
            ProtocolError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            ProtocolError::Malformed { what } => write!(f, "malformed {what} frame"),
            ProtocolError::UnknownTag { what, tag } => {
                write!(f, "unknown {what} tag {tag}")
            }
            ProtocolError::TrailingBytes { what, remaining } => {
                write!(f, "{what} frame has {remaining} trailing byte(s)")
            }
            ProtocolError::BadMagic => write!(f, "handshake magic mismatch"),
            ProtocolError::VersionSkew { peer, ours } => {
                write!(f, "peer speaks protocol v{peer}, this build v{ours}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> ProtocolError {
        ProtocolError::Io(e)
    }
}

impl From<ProtocolError> for io::Error {
    fn from(e: ProtocolError) -> io::Error {
        match e {
            ProtocolError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Writes one length-prefixed frame. An oversized payload is rejected
/// before anything touches the wire (a half-written frame would desync
/// the stream).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtocolError> {
    if payload.len() > MAX_FRAME as usize {
        return Err(ProtocolError::Oversized {
            len: payload.len().min(u32::MAX as usize) as u32,
        });
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame, rejecting oversized lengths before
/// allocating.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ProtocolError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(ProtocolError::Oversized { len });
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Bit-packs a branch-decision trace: u32 length followed by the
/// decisions eight per byte, LSB first. The canonical wire form of a
/// path-level subtree job.
pub fn encode_trace(w: &mut Writer, trace: &[bool]) {
    w.u32(trace.len() as u32);
    for chunk in trace.chunks(8) {
        let mut b = 0u8;
        for (i, &d) in chunk.iter().enumerate() {
            b |= (d as u8) << i;
        }
        w.u8(b);
    }
}

/// Inverse of [`encode_trace`]. Strict: padding bits in the final byte
/// must be zero, so every trace has exactly one encoding (`None`
/// otherwise, or on truncation).
pub fn decode_trace(r: &mut Reader) -> Option<Vec<bool>> {
    let n = r.u32()? as usize;
    // A hostile length prefix must not allocate ahead of the bytes that
    // are actually present.
    if n.div_ceil(8) > r.remaining() {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for chunk_start in (0..n).step_by(8) {
        let byte = r.u8()?;
        let bits = (n - chunk_start).min(8);
        if bits < 8 && byte >> bits != 0 {
            return None; // nonzero padding: not a canonical encoding
        }
        for i in 0..bits {
            out.push((byte >> i) & 1 == 1);
        }
    }
    Some(out)
}

/// One verification job as submitted over the wire: a [`SuiteJob`] with
/// the build reduced to its optimization level (wire jobs always use the
/// level's default libc and linking — the suite convention).
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    pub name: String,
    pub source: String,
    pub entry: String,
    pub level: OptLevel,
    pub bytes: Vec<usize>,
    pub path_workers: usize,
    pub cfg: SymConfig,
}

impl JobSpec {
    /// A spec from a suite job (custom build overrides — cost models,
    /// forced libcs — are not wire-expressible and are dropped).
    pub fn from_suite_job(job: &SuiteJob) -> JobSpec {
        JobSpec {
            name: job.name.clone(),
            source: job.source.clone(),
            entry: job.entry.clone(),
            level: job.opts.level,
            bytes: job.bytes.clone(),
            path_workers: job.path_workers,
            cfg: job.cfg.clone(),
        }
    }

    /// The suite job this spec describes.
    pub fn to_suite_job(&self) -> SuiteJob {
        SuiteJob {
            name: self.name.clone(),
            source: self.source.clone(),
            entry: self.entry.clone(),
            opts: overify::BuildOptions::level(self.level),
            bytes: self.bytes.clone(),
            cfg: self.cfg.clone(),
            path_workers: self.path_workers,
        }
    }
}

/// Which metrics table a [`Request::Metrics`] asks for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricsScope {
    /// The daemon's own registry (plus its stats snapshot) — exactly what
    /// pre-v6 `Metrics` returned.
    Daemon,
    /// The whole-fleet view: the daemon's registry, a rollup of every
    /// worker's folded table, per-worker labeled series, ring-derived
    /// rates/quantiles and the health summary gauges.
    Fleet,
    /// One attached worker's folded table, by its `AttachWorker` name.
    Worker(String),
}

/// Client → server messages.
// (The size skew between Submit and the flag variants is fine: requests
// are built once per submission, never stored in bulk.)
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit a job; the server responds with a stream of events for it.
    /// `trace` is the client's correlation id for the whole run (its run
    /// fingerprint); the daemon tags the job's spans with it and forwards
    /// it on every lease cut from the job. `tenant` is the admission-
    /// control key: jobs compete cost-first *within* a tenant, and the
    /// scheduler round-robins across tenants (empty = the shared tenant,
    /// what every pre-gateway client sends).
    Submit {
        spec: JobSpec,
        trace: u64,
        tenant: String,
    },
    /// Ask for a server statistics snapshot.
    Stats,
    /// Ask for a metrics snapshot in the text exposition format, at the
    /// requested [`MetricsScope`]. Answered with [`Event::Metrics`].
    Metrics { scope: MetricsScope },
    /// Ask the server to drain and exit.
    Shutdown,
    /// Switch this connection into worker mode: the peer is a remote
    /// verification worker offering its cores to the dispatcher. Answered
    /// with [`Event::WorkerAttached`].
    AttachWorker {
        /// Display name for logs/diagnostics (hostname, pid, …).
        name: String,
    },
    /// Ask for up to `max` subtree-job leases. The server long-polls —
    /// the request registers as *hunger*, making busy path workers donate
    /// frontier states — and answers [`Event::Leases`] (possibly empty
    /// after a bounded wait; the worker simply asks again).
    StealJobs { max: u32 },
    /// Shed frontier states from a leased subtree back to the dispatcher,
    /// as decision traces. Each accepted state becomes a fresh live job
    /// other workers (local or remote) can pick up. Answered with
    /// [`Event::StatesAccepted`].
    OfferStates {
        lease: u64,
        prefixes: Vec<Vec<bool>>,
    },
    /// Complete a lease: the partial report of the explored subtree
    /// (minus anything shed back) enters the run's deterministic merge.
    /// `cache_delta` piggybacks the solver verdicts the worker derived
    /// while exploring — the daemon folds them into its warm cache and
    /// persists them, so one worker's SAT work warms the whole fleet.
    /// Deltas are absorbed even when the lease itself is stale (a verdict
    /// is sound regardless of lease bookkeeping). Answered with
    /// [`Event::JobAck`].
    JobDone {
        lease: u64,
        /// The correlation id the lease carried ([`LeasedJob::trace`]),
        /// echoed back so the daemon's completion span joins the same
        /// timeline as the worker's `execute` span.
        trace: u64,
        report: VerificationReport,
        cache_delta: Vec<(u128, CachedVerdict)>,
    },
    /// Upstream this worker's metrics since its last push: a delta-encoded
    /// registry snapshot in the text exposition format (counters and
    /// histogram buckets as increments, gauges absolute — the
    /// `overify_obs::metrics::DeltaTracker` encoding) plus its slow-query
    /// log `(fingerprint, nanoseconds)` entries. The daemon folds the text
    /// into the worker's table and the fleet rollup. Answered with
    /// [`Event::MetricsAck`].
    MetricsPush {
        text: String,
        slow: Vec<(u128, u64)>,
    },
}

/// One subtree job leased to a remote worker: everything needed to
/// reproduce the exact run — the spec (source, level, entry, per-run
/// config with `input_bytes` already set) plus the branch-decision prefix
/// to replay. `shed` is the dispatcher's hint for how many frontier
/// states the worker should offer back while exploring, so one stolen
/// subtree cannot serialize the fleet.
#[derive(Clone, Debug, PartialEq)]
pub struct LeasedJob {
    pub lease: u64,
    /// Correlation id propagated from the originating submission
    /// ([`Request::Submit`]'s `trace`): the worker tags its `execute`
    /// span with it, so one run's spans line up across processes.
    pub trace: u64,
    pub spec: JobSpec,
    pub prefix: Vec<bool>,
    pub shed: u32,
}

/// A server statistics snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStatsSnapshot {
    /// Jobs received over all connections.
    pub submitted: u64,
    /// Jobs answered immediately from the report store (either grain).
    pub answered_from_store: u64,
    /// The subset of `answered_from_store` answered by splicing a stored
    /// **function-slice** verdict: the whole-module key missed but the
    /// entry's dependency slice was unchanged.
    pub answered_spliced: u64,
    /// Jobs handed to the executor pool.
    pub executed: u64,
    /// Jobs waiting in the scheduler right now.
    pub queued: u64,
    /// Jobs running right now.
    pub active: u64,
    /// Remote worker connections currently attached.
    pub workers: u64,
    /// Subtree jobs leased to remote workers over the server's lifetime.
    pub remote_leases: u64,
    /// Frontier states remote workers shed back mid-subtree.
    pub remote_states: u64,
    /// Leases restored to their frontier after a worker vanished.
    pub leases_recovered: u64,
    /// Leases whose deadline expired and whose subtree was restored to
    /// the frontier while the worker was still (nominally) connected.
    pub leases_reaped: u64,
    /// Frames that arrived for a lease already reaped or completed and
    /// were ignored.
    pub stale_frames: u64,
    /// Solver verdicts workers piggybacked on `JobDone` that were new to
    /// the daemon's warm cache.
    pub verdicts_upstreamed: u64,
    /// Persistent-store counters (zeroes when the server runs storeless).
    pub store: StoreStats,
}

impl std::fmt::Display for ServeStatsSnapshot {
    /// Renders in the same text exposition format as the metrics
    /// endpoint: `# TYPE` lines plus `name value` samples, stable order.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let samples: [(&str, u64); 23] = [
            ("overify_serve_active", self.active),
            (
                "overify_serve_answered_from_store",
                self.answered_from_store,
            ),
            ("overify_serve_answered_spliced", self.answered_spliced),
            ("overify_serve_executed", self.executed),
            ("overify_serve_leases_reaped", self.leases_reaped),
            ("overify_serve_leases_recovered", self.leases_recovered),
            ("overify_serve_queued", self.queued),
            ("overify_serve_remote_leases", self.remote_leases),
            ("overify_serve_remote_states", self.remote_states),
            ("overify_serve_stale_frames", self.stale_frames),
            ("overify_serve_submitted", self.submitted),
            (
                "overify_serve_verdicts_upstreamed",
                self.verdicts_upstreamed,
            ),
            ("overify_serve_workers", self.workers),
            (
                "overify_store_log_bytes_dropped",
                self.store.log_bytes_dropped,
            ),
            ("overify_store_report_hits", self.store.report_hits),
            ("overify_store_report_misses", self.store.report_misses),
            ("overify_store_reports_saved", self.store.reports_saved),
            ("overify_store_slices_saved", self.store.slices_saved),
            (
                "overify_store_solver_entries_loaded",
                self.store.solver_entries_loaded,
            ),
            (
                "overify_store_solver_entries_saved",
                self.store.solver_entries_saved,
            ),
            (
                "overify_store_solver_entries_tailed",
                self.store.solver_entries_tailed,
            ),
            ("overify_store_splice_hits", self.store.splice_hits),
            ("overify_store_splice_misses", self.store.splice_misses),
        ];
        for (name, value) in samples {
            // Live levels are gauges; lifetime totals are counters.
            let kind = match name {
                "overify_serve_active" | "overify_serve_queued" | "overify_serve_workers" => {
                    "gauge"
                }
                _ => "counter",
            };
            writeln!(f, "# TYPE {name} {kind}")?;
            writeln!(f, "{name} {value}")?;
        }
        Ok(())
    }
}

/// The store address of the verdict that answered a job: which artifact
/// class it lives in, the content fingerprint and the budget signature.
/// Together with the outcome's level this names exactly one artifact
/// file, so a front end (the gateway's registry, a job record's verdict
/// pointer) can reference the stored proof without recompiling anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerdictKey {
    /// True when the verdict is a function-slice artifact (`slices/`),
    /// false for a whole-module report (`reports/`).
    pub slice: bool,
    /// Module or slice content fingerprint.
    pub fp: u128,
    /// Byte-budget signature the verdict was computed under.
    pub budget_sig: u128,
}

/// The outcome of one job, as it travels the wire. Field-for-field a
/// [`SuiteJobResult`] (compile time in nanoseconds).
#[derive(Clone, Debug, PartialEq)]
pub struct JobOutcome {
    pub name: String,
    pub level: OptLevel,
    pub compile_nanos: u64,
    pub from_store: bool,
    pub from_slice: bool,
    pub error: Option<String>,
    pub runs: Vec<(usize, overify::VerificationReport)>,
    /// The run's resource ledger ([`overify::RunLedger`]): where its
    /// verification effort went, including which remote workers
    /// contributed. `None` on build failure.
    pub ledger: Option<overify::RunLedger>,
    /// Where the answering verdict lives in the store (`None` on build
    /// failure, or when the daemon runs storeless).
    pub verdict_key: Option<VerdictKey>,
}

impl JobOutcome {
    /// Wraps a finished suite result.
    pub fn from_result(r: &SuiteJobResult) -> JobOutcome {
        JobOutcome {
            name: r.name.clone(),
            level: r.level,
            compile_nanos: r.compile_time.as_nanos().min(u64::MAX as u128) as u64,
            from_store: r.from_store,
            from_slice: r.from_slice,
            error: r.error.clone(),
            runs: r.runs.clone(),
            ledger: r.ledger.clone(),
            // Suite results carry no store address; the daemon stamps the
            // key on after it knows which artifact answered the job.
            verdict_key: None,
        }
    }

    /// Unwraps into the suite result type.
    pub fn into_result(self) -> SuiteJobResult {
        SuiteJobResult {
            name: self.name,
            level: self.level,
            compile_time: Duration::from_nanos(self.compile_nanos),
            runs: self.runs,
            error: self.error,
            from_store: self.from_store,
            from_slice: self.from_slice,
            ledger: self.ledger,
        }
    }
}

/// Server → client messages. Every job-scoped event carries its job id;
/// ids are assigned by the server and echoed in submission order per
/// connection, so a pipelining client can demultiplex.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// Connection handshake (always the first frame).
    Hello { version: u32 },
    /// The job missed the store and entered the scheduler.
    Queued {
        job: u64,
        /// Jobs ahead of it (including running ones) at enqueue time.
        position: u64,
        /// The scheduler's cost estimate (observed nanoseconds when the
        /// store has history for the key, a static estimate otherwise).
        predicted_cost: u128,
    },
    /// An executor picked the job up.
    Scheduled { job: u64 },
    /// Live counters of a running job (sampled; monotone per job).
    Progress {
        job: u64,
        runs_done: u32,
        runs_total: u32,
        paths: u64,
        bugs: u64,
        instructions: u64,
    },
    /// The job's final outcome (always the job's last event).
    Report { job: u64, outcome: JobOutcome },
    /// Answer to [`Request::Stats`].
    Stats(ServeStatsSnapshot),
    /// Answer to [`Request::Shutdown`]: the server is draining.
    ShuttingDown,
    /// Answer to [`Request::AttachWorker`]: the connection is now a
    /// worker, identified by `worker` in the dispatcher's lease table.
    WorkerAttached { worker: u64 },
    /// Answer to [`Request::StealJobs`]: zero or more subtree-job leases.
    Leases { leases: Vec<LeasedJob> },
    /// Answer to [`Request::OfferStates`]: how many of the shed states
    /// the dispatcher accepted (0 when the lease is gone — the worker
    /// keeps exploring what it still holds).
    StatesAccepted { accepted: u32 },
    /// Answer to [`Request::JobDone`]: the lease is retired.
    JobAck { lease: u64 },
    /// Answer to [`Request::Metrics`]: a metrics snapshot in the text
    /// exposition format (`overify_obs::metrics`) at the requested scope,
    /// plus the daemon's bounded slow-query log — the K worst SAT solves
    /// seen anywhere in the fleet, as `(fingerprint, nanoseconds)`.
    Metrics {
        text: String,
        slow: Vec<(u128, u64)>,
    },
    /// Answer to [`Request::MetricsPush`]: the delta was folded.
    MetricsAck,
    /// Sent *instead of* [`Event::Hello`] when the daemon is at its
    /// connection cap; the server closes the connection right after.
    /// `retry_after_ms` is the server's backoff hint.
    Busy { retry_after_ms: u64 },
    /// The submission was refused by the bounded scheduler (queue full).
    /// This is the job's final event — no `Report` follows. The client
    /// should retry the whole submission after `retry_after_ms`.
    Shed { job: u64, retry_after_ms: u64 },
}

fn encode_sym_config(w: &mut Writer, cfg: &SymConfig) {
    w.u64(cfg.input_bytes as u64);
    w.u32(cfg.extra_args.len() as u32);
    for a in &cfg.extra_args {
        match a {
            SymArg::Concrete(v) => {
                w.u8(0);
                w.u64(*v);
            }
            SymArg::Symbolic => w.u8(1),
        }
    }
    w.u8(cfg.pass_len_arg as u8);
    w.u64(cfg.max_paths);
    w.u64(cfg.max_instructions);
    w.u64(cfg.timeout.as_nanos().min(u64::MAX as u128) as u64);
    w.u8(cfg.collect_tests as u8);
    w.u8(cfg.use_annotations as u8);
    w.u8(cfg.solver.use_intervals as u8);
    w.u8(cfg.solver.use_cex_cache as u8);
    w.u8(cfg.solver.use_query_cache as u8);
    w.u8(cfg.solver.use_shared_cache as u8);
    w.u8(cfg.solver.use_enumeration as u8);
    match cfg.search {
        SearchStrategy::Dfs => w.u8(0),
        SearchStrategy::Bfs => w.u8(1),
        SearchStrategy::RandomState(seed) => {
            w.u8(2);
            w.u64(seed);
        }
    }
    match cfg.donation {
        DonationPolicy::OldestState => w.u8(0),
        DonationPolicy::StealHalf => w.u8(1),
    }
    w.u64(cfg.max_ite_span);
}

fn decode_sym_config(r: &mut Reader) -> Option<SymConfig> {
    let mut cfg = SymConfig {
        input_bytes: r.u64()? as usize,
        ..Default::default()
    };
    for _ in 0..r.u32()? {
        cfg.extra_args.push(match r.u8()? {
            0 => SymArg::Concrete(r.u64()?),
            1 => SymArg::Symbolic,
            _ => return None,
        });
    }
    cfg.pass_len_arg = r.u8()? != 0;
    cfg.max_paths = r.u64()?;
    cfg.max_instructions = r.u64()?;
    cfg.timeout = Duration::from_nanos(r.u64()?);
    cfg.collect_tests = r.u8()? != 0;
    cfg.use_annotations = r.u8()? != 0;
    cfg.solver.use_intervals = r.u8()? != 0;
    cfg.solver.use_cex_cache = r.u8()? != 0;
    cfg.solver.use_query_cache = r.u8()? != 0;
    cfg.solver.use_shared_cache = r.u8()? != 0;
    cfg.solver.use_enumeration = r.u8()? != 0;
    cfg.search = match r.u8()? {
        0 => SearchStrategy::Dfs,
        1 => SearchStrategy::Bfs,
        2 => SearchStrategy::RandomState(r.u64()?),
        _ => return None,
    };
    cfg.donation = match r.u8()? {
        0 => DonationPolicy::OldestState,
        1 => DonationPolicy::StealHalf,
        _ => return None,
    };
    cfg.max_ite_span = r.u64()?;
    Some(cfg)
}

/// Serializes a solver-cache delta: the same `(fingerprint, verdict)`
/// shape the store's solver log persists, with SAT models sorted so a
/// delta has exactly one wire form across `HashMap` iteration orders.
fn encode_verdicts(w: &mut Writer, entries: &[(u128, CachedVerdict)]) {
    w.u32(entries.len() as u32);
    for (fp, verdict) in entries {
        w.u128(*fp);
        match verdict {
            None => w.u8(0),
            Some(m) => {
                w.u8(1);
                let mut values: Vec<(u32, u64)> = m.values.iter().map(|(&k, &v)| (k, v)).collect();
                values.sort_unstable();
                w.u32(values.len() as u32);
                for (id, v) in values {
                    w.u32(id);
                    w.u64(v);
                }
            }
        }
    }
}

/// Inverse of [`encode_verdicts`].
fn decode_verdicts(r: &mut Reader) -> Option<Vec<(u128, CachedVerdict)>> {
    let n = r.u32()? as usize;
    // Each entry is at least fp + tag; a hostile count must not allocate
    // ahead of the bytes actually present.
    if n * 17 > r.remaining() {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let fp = r.u128()?;
        let verdict = match r.u8()? {
            0 => None,
            1 => {
                let count = r.u32()? as usize;
                if count * 12 > r.remaining() {
                    return None;
                }
                let mut m = Model::default();
                for _ in 0..count {
                    let id = r.u32()?;
                    let v = r.u64()?;
                    m.values.insert(id, v);
                }
                Some(m)
            }
            _ => return None,
        };
        out.push((fp, verdict));
    }
    Some(out)
}

/// Serializes a slow-query log: `(fingerprint, nanoseconds)` pairs.
fn encode_slow(w: &mut Writer, slow: &[(u128, u64)]) {
    w.u32(slow.len() as u32);
    for &(fp, ns) in slow {
        w.u128(fp);
        w.u64(ns);
    }
}

/// Inverse of [`encode_slow`].
fn decode_slow(r: &mut Reader) -> Option<Vec<(u128, u64)>> {
    let n = r.u32()? as usize;
    // Each entry is exactly fp + ns; a hostile count must not allocate
    // ahead of the bytes actually present.
    if n * 24 > r.remaining() {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((r.u128()?, r.u64()?));
    }
    Some(out)
}

fn encode_scope(w: &mut Writer, scope: &MetricsScope) {
    match scope {
        MetricsScope::Daemon => w.u8(0),
        MetricsScope::Fleet => w.u8(1),
        MetricsScope::Worker(name) => {
            w.u8(2);
            w.str(name);
        }
    }
}

fn decode_scope(r: &mut Reader) -> Option<MetricsScope> {
    match r.u8()? {
        0 => Some(MetricsScope::Daemon),
        1 => Some(MetricsScope::Fleet),
        2 => Some(MetricsScope::Worker(r.str()?)),
        _ => None,
    }
}

fn encode_spec(w: &mut Writer, spec: &JobSpec) {
    w.str(&spec.name);
    w.str(&spec.source);
    w.str(&spec.entry);
    w.u8(level_tag(spec.level));
    w.u32(spec.bytes.len() as u32);
    for &b in &spec.bytes {
        w.u64(b as u64);
    }
    w.u64(spec.path_workers as u64);
    encode_sym_config(w, &spec.cfg);
}

/// Serializes a [`JobSpec`] to its canonical wire bytes. Public because
/// the gateway content-addresses submissions by hashing exactly these
/// bytes and persists them opaquely inside durable job records.
pub fn encode_spec_bytes(spec: &JobSpec) -> Vec<u8> {
    let mut w = Writer::default();
    encode_spec(&mut w, spec);
    w.buf
}

/// Inverse of [`encode_spec_bytes`]; strict — every byte must be
/// consumed.
pub fn decode_spec_bytes(bytes: &[u8]) -> Option<JobSpec> {
    let mut r = Reader::new(bytes);
    let spec = decode_spec(&mut r)?;
    if r.remaining() != 0 {
        return None;
    }
    Some(spec)
}

fn decode_spec(r: &mut Reader) -> Option<JobSpec> {
    let name = r.str()?;
    let source = r.str()?;
    let entry = r.str()?;
    let level = level_from_tag(r.u8()?)?;
    let n = r.u32()?;
    let mut bytes = Vec::with_capacity(n as usize);
    for _ in 0..n {
        bytes.push(r.u64()? as usize);
    }
    Some(JobSpec {
        name,
        source,
        entry,
        level,
        bytes,
        path_workers: r.u64()? as usize,
        cfg: decode_sym_config(r)?,
    })
}

/// Serializes a request frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = Writer::default();
    match req {
        Request::Submit {
            spec,
            trace,
            tenant,
        } => {
            w.u8(0);
            w.u64(*trace);
            w.str(tenant);
            encode_spec(&mut w, spec);
        }
        Request::Stats => w.u8(1),
        Request::Shutdown => w.u8(2),
        Request::AttachWorker { name } => {
            w.u8(3);
            w.str(name);
        }
        Request::StealJobs { max } => {
            w.u8(4);
            w.u32(*max);
        }
        Request::OfferStates { lease, prefixes } => {
            w.u8(5);
            w.u64(*lease);
            w.u32(prefixes.len() as u32);
            for p in prefixes {
                encode_trace(&mut w, p);
            }
        }
        Request::JobDone {
            lease,
            trace,
            report,
            cache_delta,
        } => {
            w.u8(6);
            w.u64(*lease);
            w.u64(*trace);
            encode_report(&mut w, report);
            encode_verdicts(&mut w, cache_delta);
        }
        Request::Metrics { scope } => {
            w.u8(7);
            encode_scope(&mut w, scope);
        }
        Request::MetricsPush { text, slow } => {
            w.u8(8);
            w.str(text);
            encode_slow(&mut w, slow);
        }
    }
    w.buf
}

/// Finishes a frame decode: the value must exist and consume every byte.
fn seal_decode<T>(what: &'static str, value: Option<T>, r: &Reader) -> Result<T, ProtocolError> {
    match value {
        Some(v) if r.remaining() == 0 => Ok(v),
        Some(_) => Err(ProtocolError::TrailingBytes {
            what,
            remaining: r.remaining(),
        }),
        None => Err(ProtocolError::Malformed { what }),
    }
}

/// Deserializes a request frame payload.
pub fn decode_request(bytes: &[u8]) -> Result<Request, ProtocolError> {
    let mut r = Reader::new(bytes);
    let Some(tag) = r.u8() else {
        return Err(ProtocolError::Malformed { what: "request" });
    };
    let req = match tag {
        0 => (|| {
            let trace = r.u64()?;
            let tenant = r.str()?;
            Some(Request::Submit {
                spec: decode_spec(&mut r)?,
                trace,
                tenant,
            })
        })(),
        1 => Some(Request::Stats),
        2 => Some(Request::Shutdown),
        3 => r.str().map(|name| Request::AttachWorker { name }),
        4 => r.u32().map(|max| Request::StealJobs { max }),
        5 => (|| {
            let lease = r.u64()?;
            let n = r.u32()? as usize;
            if n * 4 > r.remaining() {
                return None; // each trace is at least a length prefix
            }
            let mut prefixes = Vec::with_capacity(n);
            for _ in 0..n {
                prefixes.push(decode_trace(&mut r)?);
            }
            Some(Request::OfferStates { lease, prefixes })
        })(),
        6 => (|| {
            Some(Request::JobDone {
                lease: r.u64()?,
                trace: r.u64()?,
                report: decode_report(&mut r)?,
                cache_delta: decode_verdicts(&mut r)?,
            })
        })(),
        7 => decode_scope(&mut r).map(|scope| Request::Metrics { scope }),
        8 => (|| {
            Some(Request::MetricsPush {
                text: r.str()?,
                slow: decode_slow(&mut r)?,
            })
        })(),
        tag => {
            return Err(ProtocolError::UnknownTag {
                what: "request",
                tag,
            })
        }
    };
    seal_decode("request", req, &r)
}

fn encode_outcome(w: &mut Writer, o: &JobOutcome) {
    w.str(&o.name);
    w.u8(level_tag(o.level));
    w.u64(o.compile_nanos);
    w.u8(o.from_store as u8);
    w.u8(o.from_slice as u8);
    match &o.error {
        None => w.u8(0),
        Some(e) => {
            w.u8(1);
            w.str(e);
        }
    }
    w.u32(o.runs.len() as u32);
    for (bytes, report) in &o.runs {
        w.u64(*bytes as u64);
        encode_report(w, report);
    }
    match &o.ledger {
        None => w.u8(0),
        Some(l) => {
            w.u8(1);
            overify_store::ledger::encode_ledger(w, l);
        }
    }
    match &o.verdict_key {
        None => w.u8(0),
        Some(k) => {
            w.u8(1);
            w.u8(k.slice as u8);
            w.u128(k.fp);
            w.u128(k.budget_sig);
        }
    }
}

fn decode_outcome(r: &mut Reader) -> Option<JobOutcome> {
    let name = r.str()?;
    let level = level_from_tag(r.u8()?)?;
    let compile_nanos = r.u64()?;
    let from_store = r.u8()? != 0;
    let from_slice = r.u8()? != 0;
    let error = match r.u8()? {
        0 => None,
        1 => Some(r.str()?),
        _ => return None,
    };
    let n = r.u32()?;
    let mut runs = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let bytes = r.u64()? as usize;
        runs.push((bytes, decode_report(r)?));
    }
    let ledger = match r.u8()? {
        0 => None,
        1 => Some(overify_store::ledger::decode_ledger(r)?),
        _ => return None,
    };
    let verdict_key = match r.u8()? {
        0 => None,
        1 => {
            let slice = match r.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            Some(VerdictKey {
                slice,
                fp: r.u128()?,
                budget_sig: r.u128()?,
            })
        }
        _ => return None,
    };
    Some(JobOutcome {
        name,
        level,
        compile_nanos,
        from_store,
        from_slice,
        error,
        runs,
        ledger,
        verdict_key,
    })
}

fn encode_stats(w: &mut Writer, s: &ServeStatsSnapshot) {
    for v in [
        s.submitted,
        s.answered_from_store,
        s.answered_spliced,
        s.executed,
        s.queued,
        s.active,
        s.workers,
        s.remote_leases,
        s.remote_states,
        s.leases_recovered,
        s.leases_reaped,
        s.stale_frames,
        s.verdicts_upstreamed,
        s.store.report_hits,
        s.store.report_misses,
        s.store.reports_saved,
        s.store.splice_hits,
        s.store.splice_misses,
        s.store.slices_saved,
        s.store.solver_entries_loaded,
        s.store.solver_entries_saved,
        s.store.solver_entries_tailed,
        s.store.log_bytes_dropped,
    ] {
        w.u64(v);
    }
}

fn decode_stats(r: &mut Reader) -> Option<ServeStatsSnapshot> {
    Some(ServeStatsSnapshot {
        submitted: r.u64()?,
        answered_from_store: r.u64()?,
        answered_spliced: r.u64()?,
        executed: r.u64()?,
        queued: r.u64()?,
        active: r.u64()?,
        workers: r.u64()?,
        remote_leases: r.u64()?,
        remote_states: r.u64()?,
        leases_recovered: r.u64()?,
        leases_reaped: r.u64()?,
        stale_frames: r.u64()?,
        verdicts_upstreamed: r.u64()?,
        store: StoreStats {
            report_hits: r.u64()?,
            report_misses: r.u64()?,
            reports_saved: r.u64()?,
            splice_hits: r.u64()?,
            splice_misses: r.u64()?,
            slices_saved: r.u64()?,
            solver_entries_loaded: r.u64()?,
            solver_entries_saved: r.u64()?,
            solver_entries_tailed: r.u64()?,
            log_bytes_dropped: r.u64()?,
        },
    })
}

/// Serializes an event frame payload.
pub fn encode_event(ev: &Event) -> Vec<u8> {
    let mut w = Writer::default();
    match ev {
        Event::Hello { version } => {
            w.u8(0);
            w.buf.extend_from_slice(MAGIC);
            w.u32(*version);
        }
        Event::Queued {
            job,
            position,
            predicted_cost,
        } => {
            w.u8(1);
            w.u64(*job);
            w.u64(*position);
            w.u128(*predicted_cost);
        }
        Event::Scheduled { job } => {
            w.u8(2);
            w.u64(*job);
        }
        Event::Progress {
            job,
            runs_done,
            runs_total,
            paths,
            bugs,
            instructions,
        } => {
            w.u8(3);
            w.u64(*job);
            w.u32(*runs_done);
            w.u32(*runs_total);
            w.u64(*paths);
            w.u64(*bugs);
            w.u64(*instructions);
        }
        Event::Report { job, outcome } => {
            w.u8(4);
            w.u64(*job);
            encode_outcome(&mut w, outcome);
        }
        Event::Stats(s) => {
            w.u8(5);
            encode_stats(&mut w, s);
        }
        Event::ShuttingDown => w.u8(6),
        Event::WorkerAttached { worker } => {
            w.u8(7);
            w.u64(*worker);
        }
        Event::Leases { leases } => {
            w.u8(8);
            w.u32(leases.len() as u32);
            for l in leases {
                w.u64(l.lease);
                w.u64(l.trace);
                encode_spec(&mut w, &l.spec);
                encode_trace(&mut w, &l.prefix);
                w.u32(l.shed);
            }
        }
        Event::StatesAccepted { accepted } => {
            w.u8(9);
            w.u32(*accepted);
        }
        Event::JobAck { lease } => {
            w.u8(10);
            w.u64(*lease);
        }
        Event::Metrics { text, slow } => {
            w.u8(11);
            w.str(text);
            encode_slow(&mut w, slow);
        }
        Event::MetricsAck => w.u8(12),
        Event::Busy { retry_after_ms } => {
            w.u8(13);
            w.u64(*retry_after_ms);
        }
        Event::Shed {
            job,
            retry_after_ms,
        } => {
            w.u8(14);
            w.u64(*job);
            w.u64(*retry_after_ms);
        }
    }
    w.buf
}

/// Deserializes an event frame payload.
pub fn decode_event(bytes: &[u8]) -> Result<Event, ProtocolError> {
    let mut r = Reader::new(bytes);
    let Some(tag) = r.u8() else {
        return Err(ProtocolError::Malformed { what: "event" });
    };
    let ev = match tag {
        0 => {
            let magic = r.bytes_exact(MAGIC.len());
            match magic {
                Some(m) if m == &MAGIC[..] => r.u32().map(|version| Event::Hello { version }),
                Some(_) => return Err(ProtocolError::BadMagic),
                None => None,
            }
        }
        1 => (|| {
            Some(Event::Queued {
                job: r.u64()?,
                position: r.u64()?,
                predicted_cost: r.u128()?,
            })
        })(),
        2 => r.u64().map(|job| Event::Scheduled { job }),
        3 => (|| {
            Some(Event::Progress {
                job: r.u64()?,
                runs_done: r.u32()?,
                runs_total: r.u32()?,
                paths: r.u64()?,
                bugs: r.u64()?,
                instructions: r.u64()?,
            })
        })(),
        4 => (|| {
            Some(Event::Report {
                job: r.u64()?,
                outcome: decode_outcome(&mut r)?,
            })
        })(),
        5 => decode_stats(&mut r).map(Event::Stats),
        6 => Some(Event::ShuttingDown),
        7 => r.u64().map(|worker| Event::WorkerAttached { worker }),
        8 => (|| {
            let n = r.u32()? as usize;
            if n * 8 > r.remaining() {
                return None; // each lease is far bigger than its id alone
            }
            let mut leases = Vec::with_capacity(n);
            for _ in 0..n {
                leases.push(LeasedJob {
                    lease: r.u64()?,
                    trace: r.u64()?,
                    spec: decode_spec(&mut r)?,
                    prefix: decode_trace(&mut r)?,
                    shed: r.u32()?,
                });
            }
            Some(Event::Leases { leases })
        })(),
        9 => r.u32().map(|accepted| Event::StatesAccepted { accepted }),
        10 => r.u64().map(|lease| Event::JobAck { lease }),
        11 => (|| {
            Some(Event::Metrics {
                text: r.str()?,
                slow: decode_slow(&mut r)?,
            })
        })(),
        12 => Some(Event::MetricsAck),
        13 => r.u64().map(|retry_after_ms| Event::Busy { retry_after_ms }),
        14 => (|| {
            Some(Event::Shed {
                job: r.u64()?,
                retry_after_ms: r.u64()?,
            })
        })(),
        tag => return Err(ProtocolError::UnknownTag { what: "event", tag }),
    };
    seal_decode("event", ev, &r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify::{Bug, BugKind, SolverStats, VerificationReport};

    fn sample_spec() -> JobSpec {
        JobSpec {
            name: "wc_words".into(),
            source: "int umain(unsigned char *in, int n) { return in[0]; }".into(),
            entry: "umain".into(),
            level: OptLevel::Overify,
            bytes: vec![2, 3],
            path_workers: 4,
            cfg: SymConfig {
                input_bytes: 3,
                pass_len_arg: true,
                collect_tests: true,
                extra_args: vec![SymArg::Concrete(7), SymArg::Symbolic],
                search: SearchStrategy::RandomState(42),
                donation: DonationPolicy::StealHalf,
                ..Default::default()
            },
        }
    }

    fn sample_outcome() -> JobOutcome {
        JobOutcome {
            name: "wc_words".into(),
            level: OptLevel::O3,
            compile_nanos: 123_456,
            from_store: true,
            from_slice: true,
            error: None,
            runs: vec![(
                2,
                VerificationReport {
                    paths_completed: 9,
                    bugs: vec![Bug {
                        kind: BugKind::OutOfBounds,
                        location: "umain/b2".into(),
                        input: vec![1, 2],
                    }],
                    solver: SolverStats {
                        queries: 40,
                        ..Default::default()
                    },
                    exhausted: true,
                    ..Default::default()
                },
            )],
            ledger: Some(overify::RunLedger {
                name: "wc_words".into(),
                verify_ns: 1_000_000,
                solver_ns: 700_000,
                solver_queries: 40,
                sat_solves: 3,
                paths: 9,
                instructions: 800,
                runs: 1,
                bytes_moved: 96,
                from_store: false,
                from_slice: false,
                workers: vec!["worker-a".into(), "worker-b".into()],
            }),
            verdict_key: Some(VerdictKey {
                slice: true,
                fp: 0xABCD << 64,
                budget_sig: 77 << 96,
            }),
        }
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Submit {
                spec: sample_spec(),
                trace: 0xFEED_F00D,
                tenant: String::new(),
            },
            Request::Submit {
                spec: sample_spec(),
                trace: 1,
                tenant: "alice".into(),
            },
            Request::Stats,
            Request::Metrics {
                scope: MetricsScope::Daemon,
            },
            Request::Metrics {
                scope: MetricsScope::Fleet,
            },
            Request::Metrics {
                scope: MetricsScope::Worker("worker-7".into()),
            },
            Request::MetricsPush {
                text: "# TYPE overify_worker_stolen_total counter\n\
                       overify_worker_stolen_total 3\n"
                    .into(),
                slow: vec![(5 << 90, 2_000_000), (7, 900_000)],
            },
            Request::MetricsPush {
                text: String::new(),
                slow: Vec::new(),
            },
            Request::Shutdown,
            Request::AttachWorker {
                name: "worker-7".into(),
            },
            Request::StealJobs { max: 4 },
            Request::OfferStates {
                lease: 9,
                prefixes: vec![vec![], vec![true], vec![true, false, true, true]],
            },
            Request::JobDone {
                lease: 9,
                trace: 0xFEED_F00D,
                report: VerificationReport {
                    paths_completed: 17,
                    exhausted: true,
                    ..Default::default()
                },
                cache_delta: vec![
                    (7, None),
                    (9 << 100, {
                        let mut m = Model::default();
                        m.values.insert(3, 0xDEAD);
                        m.values.insert(1, 42);
                        Some(m)
                    }),
                ],
            },
            Request::JobDone {
                lease: 10,
                trace: 0,
                report: VerificationReport::default(),
                cache_delta: Vec::new(),
            },
        ] {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn events_round_trip() {
        let events = [
            Event::Hello { version: VERSION },
            Event::Queued {
                job: 3,
                position: 2,
                predicted_cost: 1 << 80,
            },
            Event::Scheduled { job: 3 },
            Event::Progress {
                job: 3,
                runs_done: 1,
                runs_total: 2,
                paths: 100,
                bugs: 2,
                instructions: 1 << 40,
            },
            Event::Report {
                job: 3,
                outcome: sample_outcome(),
            },
            Event::Stats(ServeStatsSnapshot {
                submitted: 10,
                answered_from_store: 4,
                answered_spliced: 2,
                executed: 6,
                queued: 1,
                active: 2,
                workers: 3,
                remote_leases: 12,
                remote_states: 5,
                leases_recovered: 1,
                leases_reaped: 2,
                stale_frames: 3,
                verdicts_upstreamed: 40,
                store: StoreStats {
                    report_hits: 4,
                    solver_entries_tailed: 6,
                    ..Default::default()
                },
            }),
            Event::ShuttingDown,
            Event::WorkerAttached { worker: 3 },
            Event::Leases {
                leases: vec![LeasedJob {
                    lease: 11,
                    trace: 0xFEED_F00D,
                    spec: sample_spec(),
                    prefix: vec![true, true, false, true, false, false, true, true, true],
                    shed: 4,
                }],
            },
            Event::Leases { leases: Vec::new() },
            Event::StatesAccepted { accepted: 2 },
            Event::JobAck { lease: 11 },
            Event::Metrics {
                text: "# TYPE overify_solver_queries_total counter\n\
                       overify_solver_queries_total 7\n"
                    .into(),
                slow: vec![(3 << 100, 4_000_000)],
            },
            Event::MetricsAck,
            Event::Busy {
                retry_after_ms: 250,
            },
            Event::Shed {
                job: 3,
                retry_after_ms: 1_000,
            },
        ];
        for ev in events {
            let bytes = encode_event(&ev);
            assert_eq!(decode_event(&bytes).unwrap(), ev, "{ev:?}");
        }
    }

    #[test]
    fn stats_snapshot_displays_in_exposition_format() {
        let snap = ServeStatsSnapshot {
            submitted: 10,
            answered_from_store: 4,
            queued: 1,
            store: StoreStats {
                report_hits: 4,
                splice_misses: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let text = snap.to_string();
        assert!(
            text.contains("# TYPE overify_serve_submitted counter\noverify_serve_submitted 10\n")
        );
        assert!(text.contains("# TYPE overify_serve_queued gauge\noverify_serve_queued 1\n"));
        assert!(text.contains("overify_store_report_hits 4"));
        assert!(text.contains("overify_store_splice_misses 2"));
        // Every line parses like the metrics endpoint's exposition text.
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE ") || line.split_whitespace().count() == 2,
                "unparseable line: {line:?}"
            );
        }
        // Stable order: names sorted within each family.
        let names: Vec<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .map(|l| l.split(' ').next().unwrap())
            .collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn truncated_or_trailing_bytes_are_rejected_with_typed_errors() {
        let good = encode_event(&Event::Report {
            job: 1,
            outcome: sample_outcome(),
        });
        for cut in [1, good.len() / 2, good.len() - 1] {
            assert!(
                matches!(
                    decode_event(&good[..cut]),
                    Err(ProtocolError::Malformed { what: "event" })
                ),
                "cut={cut}"
            );
        }
        assert!(
            matches!(
                decode_event(&good[..0]),
                Err(ProtocolError::Malformed { what: "event" })
            ),
            "empty payload"
        );
        let mut padded = good.clone();
        padded.push(0);
        assert!(
            matches!(
                decode_event(&padded),
                Err(ProtocolError::TrailingBytes {
                    what: "event",
                    remaining: 1
                })
            ),
            "trailing byte"
        );
        assert!(decode_request(&encode_event(&Event::ShuttingDown)[..0]).is_err());
    }

    #[test]
    fn garbage_frames_get_typed_errors() {
        // Unknown tags.
        assert!(matches!(
            decode_request(&[0xEE]),
            Err(ProtocolError::UnknownTag {
                what: "request",
                tag: 0xEE
            })
        ));
        assert!(matches!(
            decode_event(&[0xEE]),
            Err(ProtocolError::UnknownTag {
                what: "event",
                tag: 0xEE
            })
        ));
        // A Hello frame with the wrong magic is a different condition
        // than a truncated one.
        let mut hello = encode_event(&Event::Hello { version: VERSION });
        hello[1] ^= 0xFF;
        assert!(matches!(decode_event(&hello), Err(ProtocolError::BadMagic)));
        // Pure line noise after a known tag is malformed, not a panic.
        let noise: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(37)).collect();
        let mut framed = vec![0u8]; // Submit tag
        framed.extend_from_slice(&noise);
        assert!(matches!(
            decode_request(&framed),
            Err(ProtocolError::Malformed { what: "request" })
        ));
        // A non-canonical trace (nonzero padding bits) is rejected.
        let mut w = Writer::default();
        w.u8(5); // OfferStates
        w.u64(1);
        w.u32(1);
        w.u32(3); // 3-bit trace...
        w.u8(0b1111_1000); // ...with padding bits set
        assert!(matches!(
            decode_request(&w.buf),
            Err(ProtocolError::Malformed { what: "request" })
        ));
    }

    #[test]
    fn oversized_frames_are_rejected_on_both_ends() {
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut &oversized[..]),
            Err(ProtocolError::Oversized { len }) if len == MAX_FRAME + 1
        ));
        let huge = vec![0u8; MAX_FRAME as usize + 1];
        let mut sink = Vec::new();
        assert!(matches!(
            write_frame(&mut sink, &huge),
            Err(ProtocolError::Oversized { .. })
        ));
        assert!(sink.is_empty(), "nothing hit the wire");
    }

    #[test]
    fn traces_round_trip_bit_packed() {
        for trace in [
            vec![],
            vec![true],
            vec![false; 8],
            vec![true; 9],
            vec![
                true, false, true, true, false, false, false, true, true, false,
            ],
        ] {
            let mut w = Writer::default();
            encode_trace(&mut w, &trace);
            let mut r = Reader::new(&w.buf);
            assert_eq!(decode_trace(&mut r).as_ref(), Some(&trace), "{trace:?}");
            assert_eq!(r.remaining(), 0);
            // Packing: 4 bytes length + one byte per 8 decisions.
            assert_eq!(w.buf.len(), 4 + trace.len().div_ceil(8));
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(256))]
        #[test]
        fn trace_roundtrip_property(
            bits in proptest::collection::vec(proptest::arbitrary::any::<bool>(), 0..200)
        ) {
            let mut w = Writer::default();
            encode_trace(&mut w, &bits);
            let mut r = Reader::new(&w.buf);
            proptest::prop_assert_eq!(decode_trace(&mut r), Some(bits));
            proptest::prop_assert_eq!(r.remaining(), 0);
            // Truncating anywhere must fail cleanly, never panic.
            for cut in 0..w.buf.len() {
                let mut r = Reader::new(&w.buf[..cut]);
                proptest::prop_assert_eq!(decode_trace(&mut r), None);
            }
        }
    }

    #[test]
    fn spec_bytes_round_trip_and_are_canonical() {
        let spec = sample_spec();
        let bytes = encode_spec_bytes(&spec);
        assert_eq!(decode_spec_bytes(&bytes), Some(spec.clone()));
        // Identical specs encode identically — the property the gateway's
        // content-addressed job ids rest on.
        assert_eq!(bytes, encode_spec_bytes(&spec.clone()));
        // Trailing bytes are rejected (one spec, one encoding).
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(decode_spec_bytes(&padded), None);
        for cut in 0..bytes.len() {
            assert_eq!(decode_spec_bytes(&bytes[..cut]), None, "cut={cut}");
        }
    }

    #[test]
    fn spec_round_trips_through_suite_job() {
        let spec = sample_spec();
        let again = JobSpec::from_suite_job(&spec.to_suite_job());
        assert_eq!(again, spec);
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(read_frame(&mut r).is_err(), "EOF");
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(read_frame(&mut &oversized[..]).is_err());
    }
}
