//! `overify_serve` — verification served as infrastructure.
//!
//! The -OVERIFY premise is that verification is a build-mode cost paid
//! over and over; PR 3's content-addressed store made repeated runs cache
//! hits, and this crate makes the cache *resident*: a long-running server
//! owns one persistent [`overify::Store`] and one warm solver cache, and
//! any number of clients submit suite jobs over a localhost TCP socket
//! speaking a hand-rolled length-prefixed binary protocol (no external
//! dependencies, same codec discipline as the store's on-disk formats).
//!
//! The job lifecycle:
//!
//! ```text
//! Submit ── compile + content-address (connection thread)
//!    │
//!    ├─ store hit ──────────────────────────► Report {from_store}
//!    │                                            (immediate)
//!    └─ miss ─► Queued ─► cost-first scheduler ─► Scheduled
//!                         (observed cost from the store, or a static
//!                          size/byte-budget estimate — unknowns first)
//!                              │
//!                              ▼
//!                    executor pool (work-stealing verification,
//!                    shared warm solver cache, live counters)
//!                              │  Progress… Progress…
//!                              ▼
//!                           Report
//!                    (+ report artifact, observed-cost record and
//!                     solver-cache delta persisted to the store)
//! ```
//!
//! See [`server::start`] / [`client::Client`] for the two ends, and the
//! `serve_daemon` / `serve_client` examples for runnable binaries.

pub mod client;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use client::Client;
pub use protocol::{Event, JobOutcome, JobSpec, Request, ServeStatsSnapshot};
pub use scheduler::{Priority, Scheduler};
pub use server::{start, ServerConfig, ServerHandle};
