//! `overify_serve` — verification served as infrastructure.
//!
//! The -OVERIFY premise is that verification is a build-mode cost paid
//! over and over; PR 3's content-addressed store made repeated runs cache
//! hits, and this crate makes the cache *resident*: a long-running server
//! owns one persistent [`overify::Store`] and one warm solver cache, and
//! any number of clients submit suite jobs over a localhost TCP socket
//! speaking a hand-rolled length-prefixed binary protocol (no external
//! dependencies, same codec discipline as the store's on-disk formats).
//!
//! The job lifecycle:
//!
//! ```text
//! Submit ── compile + content-address (connection thread)
//!    │
//!    ├─ store hit ──────────────────────────► Report {from_store}
//!    │                                            (immediate)
//!    └─ miss ─► Queued ─► cost-first scheduler ─► Scheduled
//!                         (observed cost from the store, or a static
//!                          size/byte-budget estimate — unknowns first)
//!                              │
//!                              ▼
//!                    executor pool (work-stealing verification,
//!                    shared warm solver cache, live counters)
//!                              │  Progress… Progress…
//!                              ▼
//!                           Report
//!                    (+ report artifact, observed-cost record and
//!                     solver-cache delta persisted to the store)
//! ```
//!
//! Since protocol v2 the daemon is also a **dispatcher**: the path-level
//! frontier of every executing run is published (see [`hub`]) and remote
//! worker processes ([`worker::run_worker`], the `overify_worker` binary)
//! attach over the same socket, steal serialized decision-trace subtree
//! jobs, shed frontier states back, and return partial reports that merge
//! bit-identically with the local workers' — one verification run spread
//! across as many machines as care to help, with the store as the common
//! cache plane.
//!
//! Since protocol v4 that cache plane is **live**: workers piggyback their
//! solver-cache deltas on lease completion, the daemon tails the shared
//! solver log for what *other* processes learned, and every remote lease
//! carries a deadline priced from the job's observed cost — a wedged
//! worker's subtree is reaped back to its frontier instead of stalling
//! the sweep (its late frames are ignored; the merged report is the same
//! bytes either way).
//!
//! See [`server::start`] / [`client::Client`] for the two ends, and the
//! `serve_daemon` / `serve_client` / `overify_worker` examples for
//! runnable binaries.

pub mod client;
pub(crate) mod hub;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod worker;

pub use client::Client;
pub use protocol::{
    Event, JobOutcome, JobSpec, LeasedJob, MetricsScope, ProtocolError, Request,
    ServeStatsSnapshot, VerdictKey,
};
pub use scheduler::{Priority, PushError, Scheduler};
pub use server::{start, ServerConfig, ServerHandle};
pub use worker::{run_worker, WorkerConfig, WorkerStats};
