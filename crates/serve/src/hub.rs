//! The frontier hub: the daemon's dispatcher for cross-process frontier
//! sharding.
//!
//! Every verification run the executor pool starts is *published* here as
//! a [`SharedFrontier`] plus the [`JobSpec`] a remote worker needs to
//! reproduce the exact module and configuration. Attached worker
//! connections long-poll [`FrontierHub::steal`]; a pending steal registers
//! as *hunger* on every published frontier, which makes busy in-process
//! path workers donate frontier states — the same mechanism that feeds
//! idle local threads, now feeding other machines.
//!
//! Leases are tracked in a table keyed by the owning **connection id**:
//! when a worker connection dies (crash, network partition, kill -9), the
//! connection handler calls [`FrontierHub::disconnect`] and every job the
//! dead worker still held is restored to its frontier, where local
//! workers or surviving remote workers re-explore it. Shed states are
//! **transactional** — buffered with their lease and released only when
//! it completes — so a crashed worker's restored prefix never overlaps
//! states it had shed (which would double-explore those subtrees). A
//! lost worker therefore costs duplicate-free re-exploration of at most
//! its in-flight subtrees — never a hung or incomplete report.

use crate::protocol::{JobSpec, LeasedJob};
use overify::{
    estimated_subtree_forks, Frontier, FrontierSignal, SharedBudget, SharedFrontier,
    VerificationReport,
};
use overify_obs::metrics::{LazyCounter, LazyHistogram};
use overify_obs::trace as obs_trace;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long one `StealJobs` request waits server-side before answering
/// with an empty lease set (the worker simply asks again).
pub(crate) const STEAL_WAIT: Duration = Duration::from_millis(100);

/// Runs whose remaining budget is below this are not leased out at all:
/// the clamped timeout would be (near) zero, so the worker's executor
/// would give up instantly and the round trip is pure waste. The
/// long-poll waits instead; local path workers finish the stub.
pub(crate) const MIN_LEASE_TIME: Duration = Duration::from_millis(10);

/// Deadline slack multiplier over a lease's priced cost. The price is the
/// *whole run's* last observed wall time — already an overestimate for
/// one subtree — so a worker this far past it is wedged, not slow.
const DEADLINE_COST_FACTOR: u32 = 8;
/// Deadline floor: never reap below this much priced work time (remote
/// workers compile the module before exploring).
const MIN_PRICED_DEADLINE: Duration = Duration::from_millis(200);
/// Flat grace added to every deadline for transport and scheduling slop.
const DEADLINE_GRACE: Duration = Duration::from_millis(800);

/// The reaping deadline for a lease clamped to `leased_timeout`, given
/// the run's priced cost (None = never priced: fall back to the leased
/// timeout itself, which is the executor budget — a worker past *that* is
/// not coming back with anything the budget would accept).
fn lease_deadline(leased_timeout: Duration, priced: Option<Duration>) -> Duration {
    let base = match priced {
        Some(cost) => (cost * DEADLINE_COST_FACTOR)
            .max(MIN_PRICED_DEADLINE)
            .min(leased_timeout),
        None => leased_timeout,
    };
    base + DEADLINE_GRACE
}

struct PublishedRun {
    /// Shared, not cloned, per steal poll — specs carry whole source
    /// strings.
    spec: Arc<JobSpec>,
    budget: Arc<SharedBudget>,
    frontier: Arc<SharedFrontier>,
    /// The run's priced cost (observed wall time of the same content
    /// address last time), when the scheduler had one. Drives per-lease
    /// deadlines.
    priced: Option<Duration>,
    /// The originating submission's correlation id, stamped on every
    /// lease cut from this run (protocol v5).
    trace: u64,
    /// Names of the workers whose completed leases fed this run's merge —
    /// shared with the job's [`RunPublisher`], which hands them to the
    /// suite driver for the run's resource ledger.
    contributors: Arc<Mutex<BTreeSet<String>>>,
}

struct Lease {
    owner: u64,
    prefix: Vec<bool>,
    frontier: Arc<SharedFrontier>,
    /// The published run's contributor set; [`FrontierHub::complete`]
    /// inserts the completing worker's name here.
    contributors: Arc<Mutex<BTreeSet<String>>>,
    /// The run correlation id the lease carries on the wire.
    trace: u64,
    /// Wall-clock grant time (trace timebase): the daemon's `lease` span
    /// is recorded retroactively from here when the lease leaves the
    /// table (completed, recovered, or reaped).
    granted_us: u64,
    /// When a reaper pass may conclude the holder is wedged and restore
    /// the prefix to the frontier.
    deadline: Instant,
    /// States the worker shed back from this subtree, buffered until the
    /// lease completes. Shedding is *transactional*: released into the
    /// frontier only on [`FrontierHub::complete`], discarded when the
    /// worker vanishes — because a vanished worker's prefix is restored
    /// *whole*, and releasing its shed descendants too would explore
    /// those subtrees twice, breaking the bit-identical-report invariant.
    shed: Vec<Vec<bool>>,
}

/// Aggregate hub counters for stats snapshots.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct HubStats {
    pub workers: u64,
    pub remote_leases: u64,
    pub remote_states: u64,
    pub leases_recovered: u64,
    pub leases_reaped: u64,
    pub stale_frames: u64,
}

pub(crate) struct FrontierHub {
    runs: Mutex<Vec<PublishedRun>>,
    leases: Mutex<HashMap<u64, Lease>>,
    /// `AttachWorker` display names by connection id, for ledger
    /// attribution (falls back to `conn-<id>` for unnamed connections).
    names: Mutex<HashMap<u64, String>>,
    /// Steal requests currently waiting; shared with every published
    /// frontier so local path workers donate for remote hunger.
    hunger: Arc<AtomicUsize>,
    /// Bumped by every event that makes new work stealable (donations,
    /// restored leases, published runs); long-polling stealers block on
    /// it instead of spinning.
    signal: Arc<FrontierSignal>,
    closed: AtomicBool,
    next_lease: AtomicU64,
    workers: AtomicU64,
    granted: AtomicU64,
    states_returned: AtomicU64,
    recovered: AtomicU64,
    reaped: AtomicU64,
    stale_frames: AtomicU64,
}

impl FrontierHub {
    pub fn new() -> FrontierHub {
        FrontierHub {
            runs: Mutex::new(Vec::new()),
            leases: Mutex::new(HashMap::new()),
            names: Mutex::new(HashMap::new()),
            hunger: Arc::new(AtomicUsize::new(0)),
            signal: Arc::new(FrontierSignal::new()),
            closed: AtomicBool::new(false),
            next_lease: AtomicU64::new(0),
            workers: AtomicU64::new(0),
            granted: AtomicU64::new(0),
            states_returned: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            reaped: AtomicU64::new(0),
            stale_frames: AtomicU64::new(0),
        }
    }

    pub fn stats(&self) -> HubStats {
        HubStats {
            workers: self.workers.load(Ordering::Relaxed),
            remote_leases: self.granted.load(Ordering::Relaxed),
            remote_states: self.states_returned.load(Ordering::Relaxed),
            leases_recovered: self.recovered.load(Ordering::Relaxed),
            leases_reaped: self.reaped.load(Ordering::Relaxed),
            stale_frames: self.stale_frames.load(Ordering::Relaxed),
        }
    }

    /// A worker connection attached / detached. The display name keys the
    /// worker's ledger attribution (and its fleet metrics table).
    pub fn attach_worker(&self, conn: u64, name: String) {
        self.names.lock().unwrap().insert(conn, name);
        self.workers.fetch_add(1, Ordering::Relaxed);
    }

    pub fn detach_worker(&self, conn: u64) {
        self.names.lock().unwrap().remove(&conn);
        self.workers.fetch_sub(1, Ordering::Relaxed);
    }

    /// The attached display name of connection `conn`, or `conn-<id>`.
    pub fn worker_name(&self, conn: u64) -> String {
        self.names
            .lock()
            .unwrap()
            .get(&conn)
            .cloned()
            .unwrap_or_else(|| format!("conn-{conn}"))
    }

    /// Stops granting leases (daemon shutdown): pending and future steals
    /// answer empty, so workers drain away while running jobs finish with
    /// their local path workers.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        // Wake waiting stealers so they observe the flag promptly.
        self.signal.bump();
    }

    /// Publishes one verification run: its frontier becomes stealable by
    /// remote workers until [`FrontierHub::retire`]. `priced` is the
    /// run's cost from observed history, when the scheduler had one; it
    /// sizes every lease's reaping deadline. `contributors` collects the
    /// names of workers whose completed leases fed the run — the caller
    /// keeps its own handle for ledger attribution.
    pub fn publish(
        &self,
        spec: JobSpec,
        budget: Arc<SharedBudget>,
        priced: Option<Duration>,
        trace: u64,
        contributors: Arc<Mutex<BTreeSet<String>>>,
    ) -> Arc<SharedFrontier> {
        let frontier = Arc::new(SharedFrontier::for_run(
            Some(budget.clone()),
            self.hunger.clone(),
            Some(self.signal.clone()),
        ));
        self.runs.lock().unwrap().push(PublishedRun {
            spec: Arc::new(spec),
            budget,
            frontier: frontier.clone(),
            priced,
            trace,
            contributors,
        });
        // The fresh run's root job is stealable right away.
        self.signal.bump();
        frontier
    }

    /// Unpublishes a run once its merged report exists. By then its live
    /// count hit zero, so no lease can still point at it; the frontier is
    /// sealed anyway as a belt-and-braces guard.
    pub fn retire(&self, frontier: &Arc<SharedFrontier>) {
        let target = Arc::as_ptr(frontier);
        self.runs
            .lock()
            .unwrap()
            .retain(|r| !std::ptr::eq(Arc::as_ptr(&r.frontier), target));
        frontier.seal();
        self.leases
            .lock()
            .unwrap()
            .retain(|_, l| !std::ptr::eq(Arc::as_ptr(&l.frontier), target));
    }

    /// Long-polls for up to `max` subtree leases on behalf of worker
    /// connection `owner`. While nothing is stealable the request counts
    /// as hunger, so busy path workers donate; gives up after
    /// [`STEAL_WAIT`] and answers empty (the worker retries).
    pub fn steal(&self, owner: u64, max: u32) -> Vec<LeasedJob> {
        static STEAL_WAIT_NS: LazyHistogram = LazyHistogram::new("overify_hub_steal_wait_ns");
        static STEALS_EMPTY: LazyCounter = LazyCounter::new("overify_hub_steals_empty_total");
        let max = max.clamp(1, 64) as usize;
        let started = Instant::now();
        let deadline = started + STEAL_WAIT;
        loop {
            if self.closed.load(Ordering::SeqCst) {
                return Vec::new();
            }
            // Capture the signal epoch *before* scanning so a donation
            // racing the scan wakes the wait immediately.
            let seen = self.signal.epoch();
            let leases = self.try_steal(owner, max);
            if !leases.is_empty() {
                STEAL_WAIT_NS.observe_ns(started.elapsed());
                return leases;
            }
            let now = Instant::now();
            if now >= deadline {
                STEALS_EMPTY.inc();
                return Vec::new();
            }
            // Wait registered as hunger: local workers see it through the
            // shared gauge, donate frontier states, and the donation
            // bumps the signal — no polling.
            self.hunger.fetch_add(1, Ordering::Relaxed);
            self.signal.wait_past(seen, deadline - now);
            self.hunger.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn try_steal(&self, owner: u64, max: usize) -> Vec<LeasedJob> {
        // Snapshot the published runs (Arc clones only) so no frontier
        // lock is held while the lease table lock is taken (and vice
        // versa).
        type RunSnap = (
            Arc<JobSpec>,
            Arc<SharedBudget>,
            Arc<SharedFrontier>,
            Option<Duration>,
            u64,
            Arc<Mutex<BTreeSet<String>>>,
        );
        let runs: Vec<RunSnap> = self
            .runs
            .lock()
            .unwrap()
            .iter()
            .map(|r| {
                (
                    r.spec.clone(),
                    r.budget.clone(),
                    r.frontier.clone(),
                    r.priced,
                    r.trace,
                    r.contributors.clone(),
                )
            })
            .collect();
        // Shed more aggressively when more mouths are waiting...
        let hunger_shed = 2 + self.hunger.load(Ordering::Relaxed).min(6) as u32;
        let mut out = Vec::new();
        for (spec, budget, frontier, priced, trace, contributors) in runs {
            // Refuse to lease from a run that is nearly out of budget —
            // the clamped timeout would be (near) zero and the worker's
            // round trip pure waste. Checked *before* popping a prefix so
            // nothing leaks out of the frontier. The long-poll waits;
            // local path workers finish the stub.
            if budget.remaining_time() < MIN_LEASE_TIME {
                continue;
            }
            while out.len() < max {
                let Some(prefix) = frontier.try_steal() else {
                    break;
                };
                // ...and more still the bigger the leased subtree: the
                // same fork-count estimate that picks donations sizes the
                // return flow, so the workers holding the biggest
                // subtrees offer the most states back and one fat lease
                // cannot serialize the fleet. log2 of the estimate maps
                // its exponential range onto a +0..=+4 bump.
                let subtree = estimated_subtree_forks(&prefix);
                let shed = hunger_shed + (64 - subtree.leading_zeros()) / 16;
                // Clamp the lease to the run's *remaining* deadline: a
                // remote executor restarts its wall clock per lease, and
                // without the clamp every steal would extend the run's
                // timeout by a whole fresh budget.
                let mut leased_spec = (*spec).clone();
                leased_spec.cfg.timeout = leased_spec.cfg.timeout.min(budget.remaining_time());
                let lease = self.next_lease.fetch_add(1, Ordering::Relaxed);
                self.leases.lock().unwrap().insert(
                    lease,
                    Lease {
                        owner,
                        prefix: prefix.clone(),
                        frontier: frontier.clone(),
                        contributors: contributors.clone(),
                        trace,
                        granted_us: obs_trace::now_us(),
                        deadline: Instant::now() + lease_deadline(leased_spec.cfg.timeout, priced),
                        shed: Vec::new(),
                    },
                );
                out.push(LeasedJob {
                    lease,
                    trace,
                    spec: leased_spec,
                    prefix,
                    shed,
                });
            }
            if out.len() >= max {
                break;
            }
        }
        static ISSUED: LazyCounter = LazyCounter::new("overify_hub_leases_issued_total");
        ISSUED.get().add(out.len() as u64);
        self.granted.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Accepts frontier states a worker shed back from a live lease.
    /// Returns how many were accepted (0 for an unknown or retired
    /// lease — the worker keeps exploring what it holds).
    ///
    /// The states are *buffered with the lease* and only released into
    /// the frontier when the lease completes: if they went live now and
    /// the worker then crashed, [`FrontierHub::disconnect`] would restore
    /// the original prefix whole and the shed subtrees would be explored
    /// twice. The worker excludes accepted states from its exploration
    /// either way, so completion is the moment they become someone
    /// else's work.
    pub fn offer_states(&self, lease: u64, prefixes: Vec<Vec<bool>>) -> usize {
        static SHED: LazyCounter = LazyCounter::new("overify_hub_states_shed_total");
        let mut leases = self.leases.lock().unwrap();
        let Some(l) = leases.get_mut(&lease) else {
            self.stale_frames.fetch_add(1, Ordering::Relaxed);
            stale_frame_counter().inc();
            return 0;
        };
        let n = prefixes.len();
        l.shed.extend(prefixes);
        drop(leases);
        SHED.get().add(n as u64);
        self.states_returned.fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    /// Completes a lease with the worker's partial report: the states it
    /// shed go live for the rest of the fleet, then the leased subtree is
    /// retired. Unknown leases — completed runs, disconnect-recovered or
    /// reaped leases — are ignored idempotently and counted as stale
    /// frames: a reaped worker's subtree was already restored and will be
    /// (or was) re-explored exactly once, so folding its late report in
    /// would double-count the subtree and break byte-identical merges.
    pub fn complete(&self, lease: u64, report: VerificationReport) -> bool {
        static COMPLETED: LazyCounter = LazyCounter::new("overify_hub_leases_completed_total");
        let Some(l) = self.leases.lock().unwrap().remove(&lease) else {
            self.stale_frames.fetch_add(1, Ordering::Relaxed);
            stale_frame_counter().inc();
            return false;
        };
        COMPLETED.inc();
        record_lease_span(lease, &l, "completed");
        // The completing worker earned its place in the run's ledger.
        l.contributors
            .lock()
            .unwrap()
            .insert(self.worker_name(l.owner));
        // Shed states first, completion second: live count must never
        // touch zero while the subtree's remainder is still being
        // accounted.
        if !l.shed.is_empty() {
            l.frontier.offer_remote(l.shed);
        }
        l.frontier.complete_remote(report);
        true
    }

    /// A worker connection died: every job it still held goes back to its
    /// frontier — *whole*, with any states the worker had shed from it
    /// discarded (the restored prefix covers their subtrees) — to be
    /// re-explored by whoever pops it next. Returns the number of
    /// recovered leases.
    pub fn disconnect(&self, owner: u64) -> usize {
        let orphaned: Vec<(u64, Lease)> = {
            let mut leases = self.leases.lock().unwrap();
            let ids: Vec<u64> = leases
                .iter()
                .filter(|(_, l)| l.owner == owner)
                .map(|(&id, _)| id)
                .collect();
            ids.into_iter()
                .filter_map(|id| leases.remove(&id).map(|l| (id, l)))
                .collect()
        };
        let n = orphaned.len();
        for (id, lease) in orphaned {
            record_lease_span(id, &lease, "recovered");
            lease.frontier.restore(lease.prefix);
        }
        static RECOVERED: LazyCounter = LazyCounter::new("overify_hub_leases_recovered_total");
        RECOVERED.get().add(n as u64);
        self.recovered.fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    /// Reaps leases whose deadline passed: a wedged-but-alive worker
    /// (stuck solver, paused VM, half-dead network) holds its connection
    /// open, so [`FrontierHub::disconnect`] never fires — this is the
    /// liveness backstop. The subtree is restored to the frontier whole
    /// (shed states discarded, exactly like a disconnect) and the holder's
    /// eventual late `JobDone`/`OfferStates` is ignored as a stale frame.
    /// Reaping a merely *slow* worker is safe for the same reason: its
    /// late report is dropped, the subtree is re-explored exactly once,
    /// and the merged report stays byte-identical. Returns the number of
    /// reaped leases.
    pub fn reap_expired(&self) -> usize {
        self.reap_expired_at(Instant::now())
    }

    /// [`FrontierHub::reap_expired`] with an explicit clock, for tests.
    fn reap_expired_at(&self, now: Instant) -> usize {
        let expired: Vec<(u64, Lease)> = {
            let mut leases = self.leases.lock().unwrap();
            let ids: Vec<u64> = leases
                .iter()
                .filter(|(_, l)| l.deadline <= now)
                .map(|(&id, _)| id)
                .collect();
            ids.into_iter()
                .filter_map(|id| leases.remove(&id).map(|l| (id, l)))
                .collect()
        };
        let n = expired.len();
        for (id, lease) in expired {
            record_lease_span(id, &lease, "reaped");
            overify_obs::warn!(
                "hub",
                "reaped lease {id} (owner {}): deadline passed",
                lease.owner
            );
            // `restore` wakes local workers and remote stealers itself.
            lease.frontier.restore(lease.prefix);
        }
        static REAPED: LazyCounter = LazyCounter::new("overify_hub_leases_reaped_total");
        REAPED.get().add(n as u64);
        self.reaped.fetch_add(n as u64, Ordering::Relaxed);
        n
    }
}

fn stale_frame_counter() -> &'static overify_obs::metrics::Counter {
    static STALE: LazyCounter = LazyCounter::new("overify_hub_stale_frames_total");
    STALE.get()
}

/// Records the daemon-side `lease` span for a lease leaving the table:
/// grant time → now, tagged with the lease id, the run's wire-propagated
/// correlation id, and how the lease ended. The worker's `execute` span
/// carries the same `lease`/`trace` args, which is what lets a merged
/// dump line the two processes up.
fn record_lease_span(id: u64, lease: &Lease, outcome: &'static str) {
    obs_trace::complete_span(
        "lease",
        lease.granted_us,
        &[
            ("lease", &id),
            ("trace", &format_args!("{:x}", lease.trace)),
            ("outcome", &outcome),
        ],
    );
}

/// The [`overify::FrontierProvider`] one executed job hands the driver:
/// each swept run is published to the hub (with `cfg.input_bytes` pinned
/// into the leased spec) for remote workers to steal from, and retired
/// once merged.
pub(crate) struct RunPublisher<'a> {
    pub hub: &'a FrontierHub,
    pub base: JobSpec,
    /// The submission's priced cost (from observed history), carried onto
    /// every published run so leases get meaningful deadlines.
    pub priced: Option<Duration>,
    /// The submission's correlation id, stamped onto every published run
    /// so leases (and the worker spans they produce) trace back to it.
    pub trace: u64,
    /// Accumulates, across every swept run of the job, the names of the
    /// workers whose completed leases fed the merge — read back by the
    /// suite driver through [`overify::FrontierProvider::contributors`]
    /// for the job's resource ledger.
    pub contributors: Arc<Mutex<BTreeSet<String>>>,
}

impl overify::FrontierProvider for RunPublisher<'_> {
    fn begin_run(
        &self,
        cfg: &overify::SymConfig,
        budget: &Arc<SharedBudget>,
    ) -> Arc<dyn overify::Frontier> {
        let mut spec = self.base.clone();
        spec.cfg = cfg.clone();
        spec.bytes = vec![cfg.input_bytes];
        self.hub.publish(
            spec,
            budget.clone(),
            self.priced,
            self.trace,
            self.contributors.clone(),
        )
    }

    fn end_run(&self, frontier: Arc<dyn overify::Frontier>) {
        // Downcast by address: the hub only ever publishes SharedFrontier.
        let target = Arc::as_ptr(&frontier) as *const ();
        let published: Option<Arc<SharedFrontier>> = self
            .hub
            .runs
            .lock()
            .unwrap()
            .iter()
            .find(|r| Arc::as_ptr(&r.frontier) as *const () == target)
            .map(|r| r.frontier.clone());
        if let Some(f) = published {
            self.hub.retire(&f);
        }
    }

    fn contributors(&self) -> Vec<String> {
        self.contributors.lock().unwrap().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify::Frontier;

    fn spec() -> JobSpec {
        JobSpec {
            name: "t".into(),
            source: "int umain(unsigned char *in, int n) { return 0; }".into(),
            entry: "umain".into(),
            level: overify::OptLevel::O0,
            bytes: vec![1],
            path_workers: 1,
            cfg: overify::SymConfig::default(),
        }
    }

    #[test]
    fn steal_leases_and_complete_retires() {
        let hub = FrontierHub::new();
        let f = hub.publish(
            spec(),
            Arc::new(SharedBudget::new(&overify::SymConfig::default())),
            None,
            0,
            Arc::default(),
        );
        let leases = hub.steal(7, 4);
        assert_eq!(leases.len(), 1, "the root job");
        assert!(leases[0].prefix.is_empty());
        assert!(hub.complete(leases[0].lease, VerificationReport::default()));
        assert!(!hub.complete(leases[0].lease, VerificationReport::default()));
        assert_eq!(f.next(), None, "run over once the lease completed");
        assert_eq!(hub.stats().remote_leases, 1);
    }

    #[test]
    fn disconnect_restores_orphaned_leases() {
        let hub = FrontierHub::new();
        let f = hub.publish(
            spec(),
            Arc::new(SharedBudget::new(&overify::SymConfig::default())),
            None,
            0,
            Arc::default(),
        );
        let leases = hub.steal(7, 1);
        assert_eq!(leases.len(), 1);
        assert_eq!(hub.disconnect(7), 1);
        assert_eq!(hub.stats().leases_recovered, 1);
        // The job is back; a local worker can finish the run.
        assert_eq!(f.next(), Some(Vec::new()));
        f.finish();
        assert_eq!(f.next(), None);
        // Completing the recovered lease later is a no-op.
        assert!(!hub.complete(leases[0].lease, VerificationReport::default()));
    }

    #[test]
    fn closed_hub_stops_granting() {
        let hub = FrontierHub::new();
        let _f = hub.publish(
            spec(),
            Arc::new(SharedBudget::new(&overify::SymConfig::default())),
            None,
            0,
            Arc::default(),
        );
        hub.close();
        assert!(hub.steal(1, 1).is_empty());
    }

    #[test]
    fn shed_states_release_only_on_completion() {
        let hub = FrontierHub::new();
        let f = hub.publish(
            spec(),
            Arc::new(SharedBudget::new(&overify::SymConfig::default())),
            None,
            0,
            Arc::default(),
        );
        let leases = hub.steal(7, 1);
        assert_eq!(hub.offer_states(leases[0].lease, vec![vec![true]]), 1);
        // Buffered, not live: nothing stealable yet.
        assert!(f.try_steal().is_none());
        assert!(hub.complete(leases[0].lease, VerificationReport::default()));
        // Completion released it.
        assert_eq!(f.try_steal(), Some(vec![true]));
    }

    #[test]
    fn crashed_lease_discards_its_shed_states() {
        // The worker shed a state, then died: the restored prefix covers
        // that subtree, so the shed state must be dropped — releasing it
        // too would explore its subtree twice.
        let hub = FrontierHub::new();
        let f = hub.publish(
            spec(),
            Arc::new(SharedBudget::new(&overify::SymConfig::default())),
            None,
            0,
            Arc::default(),
        );
        let leases = hub.steal(7, 1);
        assert_eq!(hub.offer_states(leases[0].lease, vec![vec![true]]), 1);
        assert_eq!(hub.disconnect(7), 1);
        // Exactly one job comes back: the original (root) prefix, whole.
        assert_eq!(f.next(), Some(Vec::new()));
        f.finish();
        assert_eq!(f.next(), None, "the shed state was not also released");
    }

    #[test]
    fn exhausted_budget_refuses_to_lease_without_leaking_the_prefix() {
        // Near-zero remaining budget: granting a lease would hand the
        // worker a clamped timeout of (near) zero — a wasted round trip
        // that still inflates `remote_leases`.
        let hub = FrontierHub::new();
        let cfg = overify::SymConfig {
            timeout: Duration::ZERO,
            ..Default::default()
        };
        let f = hub.publish(
            spec(),
            Arc::new(SharedBudget::new(&cfg)),
            None,
            0,
            Arc::default(),
        );
        assert!(
            hub.try_steal(7, 4).is_empty(),
            "no zero-timeout leases granted"
        );
        assert_eq!(hub.stats().remote_leases, 0);
        // The root job was not popped and lost: a local worker still
        // finds it.
        assert_eq!(f.try_steal(), Some(Vec::new()));
    }

    #[test]
    fn reaper_restores_wedged_lease_and_ignores_its_late_frames() {
        let hub = FrontierHub::new();
        let f = hub.publish(
            spec(),
            Arc::new(SharedBudget::new(&overify::SymConfig::default())),
            Some(Duration::from_millis(1)), // priced ⇒ tight deadline
            0,
            Arc::default(),
        );
        let leases = hub.steal(7, 1);
        assert_eq!(leases.len(), 1);
        // The worker shed a state, then wedged (connection alive, no
        // progress). Before the deadline nothing is reaped...
        assert_eq!(hub.offer_states(leases[0].lease, vec![vec![true]]), 1);
        assert_eq!(hub.reap_expired_at(Instant::now()), 0);
        // ...after it, the subtree is restored whole (shed discarded).
        let far_future = Instant::now() + Duration::from_secs(3600);
        assert_eq!(hub.reap_expired_at(far_future), 1);
        assert_eq!(hub.stats().leases_reaped, 1);
        assert_eq!(f.next(), Some(Vec::new()), "prefix restored whole");
        f.finish();
        assert_eq!(f.next(), None, "shed state was discarded");
        // The wedged worker finally answers: both frame kinds are
        // ignored idempotently and counted.
        assert!(!hub.complete(leases[0].lease, VerificationReport::default()));
        assert_eq!(hub.offer_states(leases[0].lease, vec![vec![false]]), 0);
        assert_eq!(hub.stats().stale_frames, 2);
        // Reaping is idempotent too.
        assert_eq!(hub.reap_expired_at(far_future), 0);
    }

    #[test]
    fn unpriced_leases_get_the_executor_budget_as_deadline() {
        // Without a priced cost the deadline degenerates to the leased
        // timeout plus grace — effectively inert at the default 3600s
        // budget, so healthy long runs are never reaped spuriously.
        assert_eq!(
            lease_deadline(Duration::from_secs(3600), None),
            Duration::from_secs(3600) + DEADLINE_GRACE
        );
        // Priced deadlines scale with cost, floored and clamped.
        assert_eq!(
            lease_deadline(Duration::from_secs(3600), Some(Duration::from_secs(1))),
            Duration::from_secs(8) + DEADLINE_GRACE
        );
        assert_eq!(
            lease_deadline(Duration::from_secs(3600), Some(Duration::from_millis(1))),
            MIN_PRICED_DEADLINE + DEADLINE_GRACE
        );
        assert_eq!(
            lease_deadline(Duration::from_secs(2), Some(Duration::from_secs(100))),
            Duration::from_secs(2) + DEADLINE_GRACE,
            "clamped to the leased timeout"
        );
    }

    #[test]
    fn completed_leases_attribute_their_worker() {
        let hub = FrontierHub::new();
        hub.attach_worker(7, "w7".into());
        let contributors: Arc<Mutex<BTreeSet<String>>> = Arc::default();
        let _f = hub.publish(
            spec(),
            Arc::new(SharedBudget::new(&overify::SymConfig::default())),
            None,
            0,
            contributors.clone(),
        );
        let leases = hub.steal(7, 1);
        assert_eq!(leases.len(), 1);
        assert!(hub.complete(leases[0].lease, VerificationReport::default()));
        let names: Vec<String> = contributors.lock().unwrap().iter().cloned().collect();
        assert_eq!(names, vec!["w7".to_string()]);
        // Detaching forgets the name; unnamed connections get a fallback.
        hub.detach_worker(7);
        assert_eq!(hub.worker_name(7), "conn-7");
    }

    #[test]
    fn offers_on_dead_leases_are_rejected() {
        let hub = FrontierHub::new();
        let _f = hub.publish(
            spec(),
            Arc::new(SharedBudget::new(&overify::SymConfig::default())),
            None,
            0,
            Arc::default(),
        );
        assert_eq!(hub.offer_states(999, vec![vec![true]]), 0);
        let leases = hub.steal(1, 1);
        assert_eq!(hub.offer_states(leases[0].lease, vec![vec![true]]), 1);
        assert_eq!(hub.stats().remote_states, 1);
    }
}
