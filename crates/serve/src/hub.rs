//! The frontier hub: the daemon's dispatcher for cross-process frontier
//! sharding.
//!
//! Every verification run the executor pool starts is *published* here as
//! a [`SharedFrontier`] plus the [`JobSpec`] a remote worker needs to
//! reproduce the exact module and configuration. Attached worker
//! connections long-poll [`FrontierHub::steal`]; a pending steal registers
//! as *hunger* on every published frontier, which makes busy in-process
//! path workers donate frontier states — the same mechanism that feeds
//! idle local threads, now feeding other machines.
//!
//! Leases are tracked in a table keyed by the owning **connection id**:
//! when a worker connection dies (crash, network partition, kill -9), the
//! connection handler calls [`FrontierHub::disconnect`] and every job the
//! dead worker still held is restored to its frontier, where local
//! workers or surviving remote workers re-explore it. Shed states are
//! **transactional** — buffered with their lease and released only when
//! it completes — so a crashed worker's restored prefix never overlaps
//! states it had shed (which would double-explore those subtrees). A
//! lost worker therefore costs duplicate-free re-exploration of at most
//! its in-flight subtrees — never a hung or incomplete report.

use crate::protocol::{JobSpec, LeasedJob};
use overify::{
    estimated_subtree_forks, Frontier, FrontierSignal, SharedBudget, SharedFrontier,
    VerificationReport,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long one `StealJobs` request waits server-side before answering
/// with an empty lease set (the worker simply asks again).
pub(crate) const STEAL_WAIT: Duration = Duration::from_millis(100);

struct PublishedRun {
    /// Shared, not cloned, per steal poll — specs carry whole source
    /// strings.
    spec: Arc<JobSpec>,
    budget: Arc<SharedBudget>,
    frontier: Arc<SharedFrontier>,
}

struct Lease {
    owner: u64,
    prefix: Vec<bool>,
    frontier: Arc<SharedFrontier>,
    /// States the worker shed back from this subtree, buffered until the
    /// lease completes. Shedding is *transactional*: released into the
    /// frontier only on [`FrontierHub::complete`], discarded when the
    /// worker vanishes — because a vanished worker's prefix is restored
    /// *whole*, and releasing its shed descendants too would explore
    /// those subtrees twice, breaking the bit-identical-report invariant.
    shed: Vec<Vec<bool>>,
}

/// Aggregate hub counters for stats snapshots.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct HubStats {
    pub workers: u64,
    pub remote_leases: u64,
    pub remote_states: u64,
    pub leases_recovered: u64,
}

pub(crate) struct FrontierHub {
    runs: Mutex<Vec<PublishedRun>>,
    leases: Mutex<HashMap<u64, Lease>>,
    /// Steal requests currently waiting; shared with every published
    /// frontier so local path workers donate for remote hunger.
    hunger: Arc<AtomicUsize>,
    /// Bumped by every event that makes new work stealable (donations,
    /// restored leases, published runs); long-polling stealers block on
    /// it instead of spinning.
    signal: Arc<FrontierSignal>,
    closed: AtomicBool,
    next_lease: AtomicU64,
    workers: AtomicU64,
    granted: AtomicU64,
    states_returned: AtomicU64,
    recovered: AtomicU64,
}

impl FrontierHub {
    pub fn new() -> FrontierHub {
        FrontierHub {
            runs: Mutex::new(Vec::new()),
            leases: Mutex::new(HashMap::new()),
            hunger: Arc::new(AtomicUsize::new(0)),
            signal: Arc::new(FrontierSignal::new()),
            closed: AtomicBool::new(false),
            next_lease: AtomicU64::new(0),
            workers: AtomicU64::new(0),
            granted: AtomicU64::new(0),
            states_returned: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
        }
    }

    pub fn stats(&self) -> HubStats {
        HubStats {
            workers: self.workers.load(Ordering::Relaxed),
            remote_leases: self.granted.load(Ordering::Relaxed),
            remote_states: self.states_returned.load(Ordering::Relaxed),
            leases_recovered: self.recovered.load(Ordering::Relaxed),
        }
    }

    /// A worker connection attached / detached.
    pub fn attach_worker(&self) {
        self.workers.fetch_add(1, Ordering::Relaxed);
    }

    pub fn detach_worker(&self) {
        self.workers.fetch_sub(1, Ordering::Relaxed);
    }

    /// Stops granting leases (daemon shutdown): pending and future steals
    /// answer empty, so workers drain away while running jobs finish with
    /// their local path workers.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        // Wake waiting stealers so they observe the flag promptly.
        self.signal.bump();
    }

    /// Publishes one verification run: its frontier becomes stealable by
    /// remote workers until [`FrontierHub::retire`].
    pub fn publish(&self, spec: JobSpec, budget: Arc<SharedBudget>) -> Arc<SharedFrontier> {
        let frontier = Arc::new(SharedFrontier::for_run(
            Some(budget.clone()),
            self.hunger.clone(),
            Some(self.signal.clone()),
        ));
        self.runs.lock().unwrap().push(PublishedRun {
            spec: Arc::new(spec),
            budget,
            frontier: frontier.clone(),
        });
        // The fresh run's root job is stealable right away.
        self.signal.bump();
        frontier
    }

    /// Unpublishes a run once its merged report exists. By then its live
    /// count hit zero, so no lease can still point at it; the frontier is
    /// sealed anyway as a belt-and-braces guard.
    pub fn retire(&self, frontier: &Arc<SharedFrontier>) {
        let target = Arc::as_ptr(frontier);
        self.runs
            .lock()
            .unwrap()
            .retain(|r| !std::ptr::eq(Arc::as_ptr(&r.frontier), target));
        frontier.seal();
        self.leases
            .lock()
            .unwrap()
            .retain(|_, l| !std::ptr::eq(Arc::as_ptr(&l.frontier), target));
    }

    /// Long-polls for up to `max` subtree leases on behalf of worker
    /// connection `owner`. While nothing is stealable the request counts
    /// as hunger, so busy path workers donate; gives up after
    /// [`STEAL_WAIT`] and answers empty (the worker retries).
    pub fn steal(&self, owner: u64, max: u32) -> Vec<LeasedJob> {
        let max = max.clamp(1, 64) as usize;
        let deadline = Instant::now() + STEAL_WAIT;
        loop {
            if self.closed.load(Ordering::SeqCst) {
                return Vec::new();
            }
            // Capture the signal epoch *before* scanning so a donation
            // racing the scan wakes the wait immediately.
            let seen = self.signal.epoch();
            let leases = self.try_steal(owner, max);
            if !leases.is_empty() {
                return leases;
            }
            let now = Instant::now();
            if now >= deadline {
                return Vec::new();
            }
            // Wait registered as hunger: local workers see it through the
            // shared gauge, donate frontier states, and the donation
            // bumps the signal — no polling.
            self.hunger.fetch_add(1, Ordering::Relaxed);
            self.signal.wait_past(seen, deadline - now);
            self.hunger.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn try_steal(&self, owner: u64, max: usize) -> Vec<LeasedJob> {
        // Snapshot the published runs (Arc clones only) so no frontier
        // lock is held while the lease table lock is taken (and vice
        // versa).
        let runs: Vec<(Arc<JobSpec>, Arc<SharedBudget>, Arc<SharedFrontier>)> = self
            .runs
            .lock()
            .unwrap()
            .iter()
            .map(|r| (r.spec.clone(), r.budget.clone(), r.frontier.clone()))
            .collect();
        // Shed more aggressively when more mouths are waiting...
        let hunger_shed = 2 + self.hunger.load(Ordering::Relaxed).min(6) as u32;
        let mut out = Vec::new();
        for (spec, budget, frontier) in runs {
            while out.len() < max {
                let Some(prefix) = frontier.try_steal() else {
                    break;
                };
                // ...and more still the bigger the leased subtree: the
                // same fork-count estimate that picks donations sizes the
                // return flow, so the workers holding the biggest
                // subtrees offer the most states back and one fat lease
                // cannot serialize the fleet. log2 of the estimate maps
                // its exponential range onto a +0..=+4 bump.
                let subtree = estimated_subtree_forks(&prefix);
                let shed = hunger_shed + (64 - subtree.leading_zeros()) / 16;
                let lease = self.next_lease.fetch_add(1, Ordering::Relaxed);
                self.leases.lock().unwrap().insert(
                    lease,
                    Lease {
                        owner,
                        prefix: prefix.clone(),
                        frontier: frontier.clone(),
                        shed: Vec::new(),
                    },
                );
                // Clamp the lease to the run's *remaining* deadline: a
                // remote executor restarts its wall clock per lease, and
                // without the clamp every steal would extend the run's
                // timeout by a whole fresh budget.
                let mut leased_spec = (*spec).clone();
                leased_spec.cfg.timeout = leased_spec.cfg.timeout.min(budget.remaining_time());
                out.push(LeasedJob {
                    lease,
                    spec: leased_spec,
                    prefix,
                    shed,
                });
            }
            if out.len() >= max {
                break;
            }
        }
        self.granted.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Accepts frontier states a worker shed back from a live lease.
    /// Returns how many were accepted (0 for an unknown or retired
    /// lease — the worker keeps exploring what it holds).
    ///
    /// The states are *buffered with the lease* and only released into
    /// the frontier when the lease completes: if they went live now and
    /// the worker then crashed, [`FrontierHub::disconnect`] would restore
    /// the original prefix whole and the shed subtrees would be explored
    /// twice. The worker excludes accepted states from its exploration
    /// either way, so completion is the moment they become someone
    /// else's work.
    pub fn offer_states(&self, lease: u64, prefixes: Vec<Vec<bool>>) -> usize {
        let mut leases = self.leases.lock().unwrap();
        let Some(l) = leases.get_mut(&lease) else {
            return 0;
        };
        let n = prefixes.len();
        l.shed.extend(prefixes);
        drop(leases);
        self.states_returned.fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    /// Completes a lease with the worker's partial report: the states it
    /// shed go live for the rest of the fleet, then the leased subtree is
    /// retired. Unknown leases are ignored (idempotent against races with
    /// disconnect recovery).
    pub fn complete(&self, lease: u64, report: VerificationReport) -> bool {
        let Some(l) = self.leases.lock().unwrap().remove(&lease) else {
            return false;
        };
        // Shed states first, completion second: live count must never
        // touch zero while the subtree's remainder is still being
        // accounted.
        if !l.shed.is_empty() {
            l.frontier.offer_remote(l.shed);
        }
        l.frontier.complete_remote(report);
        true
    }

    /// A worker connection died: every job it still held goes back to its
    /// frontier — *whole*, with any states the worker had shed from it
    /// discarded (the restored prefix covers their subtrees) — to be
    /// re-explored by whoever pops it next. Returns the number of
    /// recovered leases.
    pub fn disconnect(&self, owner: u64) -> usize {
        let orphaned: Vec<Lease> = {
            let mut leases = self.leases.lock().unwrap();
            let ids: Vec<u64> = leases
                .iter()
                .filter(|(_, l)| l.owner == owner)
                .map(|(&id, _)| id)
                .collect();
            ids.into_iter()
                .filter_map(|id| leases.remove(&id))
                .collect()
        };
        let n = orphaned.len();
        for lease in orphaned {
            lease.frontier.restore(lease.prefix);
        }
        self.recovered.fetch_add(n as u64, Ordering::Relaxed);
        n
    }
}

/// The [`overify::FrontierProvider`] one executed job hands the driver:
/// each swept run is published to the hub (with `cfg.input_bytes` pinned
/// into the leased spec) for remote workers to steal from, and retired
/// once merged.
pub(crate) struct RunPublisher<'a> {
    pub hub: &'a FrontierHub,
    pub base: JobSpec,
}

impl overify::FrontierProvider for RunPublisher<'_> {
    fn begin_run(
        &self,
        cfg: &overify::SymConfig,
        budget: &Arc<SharedBudget>,
    ) -> Arc<dyn overify::Frontier> {
        let mut spec = self.base.clone();
        spec.cfg = cfg.clone();
        spec.bytes = vec![cfg.input_bytes];
        self.hub.publish(spec, budget.clone())
    }

    fn end_run(&self, frontier: Arc<dyn overify::Frontier>) {
        // Downcast by address: the hub only ever publishes SharedFrontier.
        let target = Arc::as_ptr(&frontier) as *const ();
        let published: Option<Arc<SharedFrontier>> = self
            .hub
            .runs
            .lock()
            .unwrap()
            .iter()
            .find(|r| Arc::as_ptr(&r.frontier) as *const () == target)
            .map(|r| r.frontier.clone());
        if let Some(f) = published {
            self.hub.retire(&f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify::Frontier;

    fn spec() -> JobSpec {
        JobSpec {
            name: "t".into(),
            source: "int umain(unsigned char *in, int n) { return 0; }".into(),
            entry: "umain".into(),
            level: overify::OptLevel::O0,
            bytes: vec![1],
            path_workers: 1,
            cfg: overify::SymConfig::default(),
        }
    }

    #[test]
    fn steal_leases_and_complete_retires() {
        let hub = FrontierHub::new();
        let f = hub.publish(
            spec(),
            Arc::new(SharedBudget::new(&overify::SymConfig::default())),
        );
        let leases = hub.steal(7, 4);
        assert_eq!(leases.len(), 1, "the root job");
        assert!(leases[0].prefix.is_empty());
        assert!(hub.complete(leases[0].lease, VerificationReport::default()));
        assert!(!hub.complete(leases[0].lease, VerificationReport::default()));
        assert_eq!(f.next(), None, "run over once the lease completed");
        assert_eq!(hub.stats().remote_leases, 1);
    }

    #[test]
    fn disconnect_restores_orphaned_leases() {
        let hub = FrontierHub::new();
        let f = hub.publish(
            spec(),
            Arc::new(SharedBudget::new(&overify::SymConfig::default())),
        );
        let leases = hub.steal(7, 1);
        assert_eq!(leases.len(), 1);
        assert_eq!(hub.disconnect(7), 1);
        assert_eq!(hub.stats().leases_recovered, 1);
        // The job is back; a local worker can finish the run.
        assert_eq!(f.next(), Some(Vec::new()));
        f.finish();
        assert_eq!(f.next(), None);
        // Completing the recovered lease later is a no-op.
        assert!(!hub.complete(leases[0].lease, VerificationReport::default()));
    }

    #[test]
    fn closed_hub_stops_granting() {
        let hub = FrontierHub::new();
        let _f = hub.publish(
            spec(),
            Arc::new(SharedBudget::new(&overify::SymConfig::default())),
        );
        hub.close();
        assert!(hub.steal(1, 1).is_empty());
    }

    #[test]
    fn shed_states_release_only_on_completion() {
        let hub = FrontierHub::new();
        let f = hub.publish(
            spec(),
            Arc::new(SharedBudget::new(&overify::SymConfig::default())),
        );
        let leases = hub.steal(7, 1);
        assert_eq!(hub.offer_states(leases[0].lease, vec![vec![true]]), 1);
        // Buffered, not live: nothing stealable yet.
        assert!(f.try_steal().is_none());
        assert!(hub.complete(leases[0].lease, VerificationReport::default()));
        // Completion released it.
        assert_eq!(f.try_steal(), Some(vec![true]));
    }

    #[test]
    fn crashed_lease_discards_its_shed_states() {
        // The worker shed a state, then died: the restored prefix covers
        // that subtree, so the shed state must be dropped — releasing it
        // too would explore its subtree twice.
        let hub = FrontierHub::new();
        let f = hub.publish(
            spec(),
            Arc::new(SharedBudget::new(&overify::SymConfig::default())),
        );
        let leases = hub.steal(7, 1);
        assert_eq!(hub.offer_states(leases[0].lease, vec![vec![true]]), 1);
        assert_eq!(hub.disconnect(7), 1);
        // Exactly one job comes back: the original (root) prefix, whole.
        assert_eq!(f.next(), Some(Vec::new()));
        f.finish();
        assert_eq!(f.next(), None, "the shed state was not also released");
    }

    #[test]
    fn offers_on_dead_leases_are_rejected() {
        let hub = FrontierHub::new();
        let _f = hub.publish(
            spec(),
            Arc::new(SharedBudget::new(&overify::SymConfig::default())),
        );
        assert_eq!(hub.offer_states(999, vec![vec![true]]), 0);
        let leases = hub.steal(1, 1);
        assert_eq!(hub.offer_states(leases[0].lease, vec![vec![true]]), 1);
        assert_eq!(hub.stats().remote_states, 1);
    }
}
