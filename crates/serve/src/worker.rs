//! The remote verification worker: lends this process's cores to a
//! dispatcher daemon.
//!
//! Each worker thread opens its own connection, attaches
//! ([`crate::protocol::Request::AttachWorker`]), and long-polls for
//! subtree-job leases. A lease carries everything needed to reproduce the
//! exact run: the job spec (source, level, entry, per-run configuration)
//! and the branch-decision trace of the stolen frontier state. The worker
//! compiles the module (cached per source × level — compilation is
//! deterministic, so the module is bit-identical to the daemon's),
//! replays the trace with zero solver queries, explores the subtree, and
//! completes the lease with its partial report. While exploring, it sheds
//! its oldest pending states (the biggest subtrees) back to the
//! dispatcher — up to the lease's `shed` hint — so one stolen subtree
//! never serializes the fleet.
//!
//! Completion also piggybacks the worker's **solver-cache delta**: every
//! verdict this process derived since its last upload rides the
//! [`crate::protocol::Request::JobDone`] frame, so the daemon (and through
//! its store, the whole fleet) learns what this worker's SAT calls paid
//! for. The delta is tracked per process, not per lease — a fingerprint is
//! uploaded once, however many leases touch it.
//!
//! Since protocol v6 each connection also upstreams the worker's
//! **metrics registry** ([`crate::protocol::Request::MetricsPush`]):
//! delta-encoded snapshots after every lease completion, periodically
//! while idling (`OVERIFY_METRICS_PUSH_MS`, default 500ms), and on clean
//! exit, plus this process's slow-query log. The daemon folds the deltas
//! into a per-worker table and serves the fleet rollup to any scraper.
//!
//! Failure semantics are the dispatcher's: if this process dies
//! mid-lease, the daemon's lease table restores the job to its frontier
//! and someone else re-explores it. Nothing a worker does (or fails to
//! do) can change the merged report's deterministic projection — only how
//! fast it arrives.
//!
//! Budgets are per-process: the wall-clock timeout of a lease is clamped
//! by the dispatcher to the run's *remaining* deadline, while instruction
//! and path ceilings apply per leased subtree (the daemon folds remote
//! counters into the fleet budget only when a lease completes). Exceeding
//! a ceiling remotely marks the partial report truncated, which marks the
//! merged run truncated — exactly like a local worker tripping it.

use crate::protocol::{
    decode_event, encode_request, read_frame, write_frame, Event, LeasedJob, Request, VERSION,
};
use overify::{prepare_job, Module, SharedQueryCache, VerificationReport};
use overify_obs::metrics::{DeltaTracker, LazyCounter};
use overify_obs::slow::SlowLog;
use overify_symex::{Executor, ExploreHooks};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How a worker fleet is brought up.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// The daemon to attach to.
    pub addr: SocketAddr,
    /// Worker connections to open; each steals and explores
    /// independently (a connection is the unit of lease ownership).
    pub threads: usize,
    /// Max leases requested per steal round-trip.
    pub steal_batch: u32,
    /// Exit once this long passes without being granted a lease. `None`
    /// serves until the daemon goes away.
    pub idle_exit: Option<Duration>,
    /// Display name sent with the attachment (diagnostics only).
    pub name: String,
}

impl WorkerConfig {
    /// A single-threaded worker for `addr` that serves until the daemon
    /// disconnects it.
    pub fn at(addr: SocketAddr) -> WorkerConfig {
        WorkerConfig {
            addr,
            threads: 1,
            steal_batch: 1,
            idle_exit: None,
            name: format!("overify-worker:{}", std::process::id()),
        }
    }
}

/// What a worker fleet did before it exited.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Subtree jobs leased and completed.
    pub stolen: u64,
    /// Frontier states shed back to the dispatcher mid-subtree.
    pub states_returned: u64,
    /// Leases that could not run (module failed to build here) and were
    /// returned whole.
    pub bounced: u64,
    /// Solver verdicts uploaded to the dispatcher on `JobDone` frames.
    pub verdicts_uploaded: u64,
}

impl std::fmt::Display for WorkerStats {
    /// Renders the same text exposition format the metrics registry (and
    /// [`crate::protocol::ServeStatsSnapshot`]) uses, so worker output is
    /// machine-scrapable alongside daemon output.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let samples: [(&str, u64); 4] = [
            ("overify_worker_bounced", self.bounced),
            ("overify_worker_states_returned", self.states_returned),
            ("overify_worker_stolen", self.stolen),
            ("overify_worker_verdicts_uploaded", self.verdicts_uploaded),
        ];
        for (name, value) in samples {
            writeln!(f, "# TYPE {name} counter")?;
            writeln!(f, "{name} {value}")?;
        }
        Ok(())
    }
}

/// One module per (source, level): compilation is deterministic, so a
/// cached module is bit-identical to a fresh one — and to the daemon's.
type ModuleCache = Mutex<HashMap<(String, u8), Arc<Module>>>;

/// Fingerprints this process already uploaded on a `JobDone` frame.
type Uploaded = Mutex<HashSet<u128>>;

/// The process-wide metrics baseline for `MetricsPush` frames. One
/// tracker for the whole process — not one per connection — so every
/// registry increment is upstreamed exactly once, attributed to
/// whichever connection happened to push it; the daemon's fleet rollup
/// sums the per-connection tables back to the process totals.
type PushTracker = Mutex<DeltaTracker>;

/// How often a worker connection upstreams its metrics delta
/// (`OVERIFY_METRICS_PUSH_MS`, default 500ms). Pushes also ride every
/// lease completion and the connection's exit, so the interval only
/// bounds staleness while idling in the steal loop.
fn push_interval() -> Duration {
    let ms = std::env::var("OVERIFY_METRICS_PUSH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(500);
    Duration::from_millis(ms.max(1))
}

/// Upstreams the registry delta since the last push, plus this process's
/// slow-query log (the daemon's absorb dedups by fingerprint, so
/// re-sending the log is idempotent).
fn push_metrics(conn: &RefCell<Conn>, tracker: &PushTracker) -> io::Result<()> {
    let text = tracker.lock().unwrap().delta();
    let slow = SlowLog::global().snapshot();
    if text.is_empty() && slow.is_empty() {
        return Ok(());
    }
    match conn
        .borrow_mut()
        .request(&Request::MetricsPush { text, slow })?
    {
        Event::MetricsAck => Ok(()),
        other => Err(unexpected("MetricsAck", &other)),
    }
}

/// Runs a worker fleet against the daemon at `cfg.addr`; blocks until
/// every connection exits (daemon gone, or `idle_exit` elapsed) and
/// returns the summed stats.
pub fn run_worker(cfg: &WorkerConfig) -> io::Result<WorkerStats> {
    overify_obs::init();
    let modules: Arc<ModuleCache> = Arc::new(Mutex::new(HashMap::new()));
    // One process-wide solver cache: verdicts are keyed by structural
    // formula fingerprints, valid across every lease this process takes.
    let solver_cache = Arc::new(SharedQueryCache::new());
    // Fingerprints already upstreamed to the dispatcher — process-wide,
    // so concurrent connections never upload the same verdict twice.
    let uploaded: Uploaded = Mutex::new(HashSet::new());
    // The metrics baseline is process-wide too: see [`PushTracker`].
    let tracker: PushTracker = Mutex::new(DeltaTracker::new());
    let mut total = WorkerStats::default();
    if cfg.threads <= 1 {
        return worker_connection(cfg, &modules, &solver_cache, &uploaded, &tracker);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|_| {
                scope.spawn(|| worker_connection(cfg, &modules, &solver_cache, &uploaded, &tracker))
            })
            .collect();
        let mut first_err = None;
        for h in handles {
            match h.join().expect("worker thread panicked") {
                Ok(s) => {
                    total.stolen += s.stolen;
                    total.states_returned += s.states_returned;
                    total.bounced += s.bounced;
                    total.verdicts_uploaded += s.verdicts_uploaded;
                }
                Err(e) => first_err = Some(e),
            }
        }
        match first_err {
            // A connect failure with nothing stolen anywhere is an error
            // worth surfacing; otherwise the fleet did real work and the
            // error is just the daemon going away.
            Some(e) if total == WorkerStats::default() => Err(e),
            _ => Ok(total),
        }
    })
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Conn {
    fn connect(addr: SocketAddr, name: &str) -> io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        let writer = BufWriter::new(stream.try_clone()?);
        let mut conn = Conn {
            reader: BufReader::new(stream),
            writer,
        };
        match conn.read_event()? {
            Event::Hello { version } if version == VERSION => {}
            Event::Hello { version } => {
                return Err(crate::protocol::ProtocolError::VersionSkew {
                    peer: version,
                    ours: VERSION,
                }
                .into())
            }
            other => return Err(unexpected("Hello", &other)),
        }
        match conn.request(&Request::AttachWorker { name: name.into() })? {
            Event::WorkerAttached { .. } => Ok(conn),
            other => Err(unexpected("WorkerAttached", &other)),
        }
    }

    fn read_event(&mut self) -> io::Result<Event> {
        Ok(decode_event(&read_frame(&mut self.reader)?)?)
    }

    fn request(&mut self, req: &Request) -> io::Result<Event> {
        write_frame(&mut self.writer, &encode_request(req))?;
        self.read_event()
    }
}

fn unexpected(wanted: &str, got: &Event) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("expected {wanted}, got {got:?}"),
    )
}

fn worker_connection(
    cfg: &WorkerConfig,
    modules: &ModuleCache,
    solver_cache: &Arc<SharedQueryCache>,
    uploaded: &Uploaded,
    tracker: &PushTracker,
) -> io::Result<WorkerStats> {
    let conn = RefCell::new(Conn::connect(cfg.addr, &cfg.name)?);
    let mut stats = WorkerStats::default();
    let mut last_lease = Instant::now();
    let push_every = push_interval();
    let mut last_push = Instant::now();
    loop {
        let leases = match conn.borrow_mut().request(&Request::StealJobs {
            max: cfg.steal_batch,
        }) {
            Ok(Event::Leases { leases }) => leases,
            // The daemon went away (shutdown, crash): the fleet's lease
            // table already recovered anything we held.
            Ok(_) | Err(_) => return Ok(stats),
        };
        if leases.is_empty() {
            if let Some(limit) = cfg.idle_exit {
                if last_lease.elapsed() >= limit {
                    // Final upstream before a clean exit, so the fleet
                    // table holds everything this connection counted.
                    let _ = push_metrics(&conn, tracker);
                    return Ok(stats);
                }
            }
            // Idling only long-polls, so this is the path that needs the
            // periodic push to keep the daemon's view fresh.
            if last_push.elapsed() >= push_every {
                last_push = Instant::now();
                if push_metrics(&conn, tracker).is_err() {
                    return Ok(stats);
                }
            }
            continue; // the server already long-polled; just ask again
        }
        last_lease = Instant::now();
        for lease in leases {
            if process_lease(&conn, &lease, modules, solver_cache, uploaded, &mut stats).is_err() {
                return Ok(stats);
            }
        }
        // Every lease completion carries the delta it just produced.
        last_push = Instant::now();
        if push_metrics(&conn, tracker).is_err() {
            return Ok(stats);
        }
    }
}

fn process_lease(
    conn: &RefCell<Conn>,
    lease: &LeasedJob,
    modules: &ModuleCache,
    solver_cache: &Arc<SharedQueryCache>,
    uploaded: &Uploaded,
    stats: &mut WorkerStats,
) -> io::Result<()> {
    // The worker-side half of the lease timeline: this span carries the
    // same `lease`/`trace` args as the daemon's retroactive `lease` span,
    // so a merged dump shows who held the subtree and for how long.
    let span = overify_obs::trace::span("execute")
        .arg("lease", lease.lease)
        .arg("name", &lease.spec.name)
        .arg("trace", format_args!("{:x}", lease.trace));
    let report = match cached_module(modules, lease) {
        Some(module) => {
            let report = explore(conn, lease, &module, solver_cache, stats)?;
            // Only genuinely explored subtrees count as stolen — the CI
            // canary's --expect-steals must not be satisfiable by a
            // worker that bounces everything.
            stats.stolen += 1;
            static STOLEN: LazyCounter = LazyCounter::new("overify_worker_stolen_total");
            STOLEN.inc();
            report
        }
        None => {
            // The module does not build here (should be impossible — the
            // daemon compiled the same source — but a version-skewed
            // worker must not eat the subtree): return the job whole and
            // complete with the merge identity.
            stats.bounced += 1;
            static BOUNCED: LazyCounter = LazyCounter::new("overify_worker_bounced_total");
            BOUNCED.inc();
            overify_obs::warn!(
                "worker",
                "lease {}: module failed to build here, returned whole",
                lease.lease
            );
            offer(conn, lease.lease, lease.prefix.clone())?;
            VerificationReport {
                exhausted: true,
                ..Default::default()
            }
        }
    };
    drop(span);
    // Piggyback every verdict this process derived since its last upload.
    // (The set is marked before the round-trip: if the frame is lost the
    // connection is dead anyway, and a duplicate upload would merely be
    // ignored by the daemon's insert-if-absent fold.)
    let cache_delta = {
        let mut seen = uploaded.lock().unwrap();
        let delta = solver_cache.snapshot_if(|fp| !seen.contains(&fp));
        seen.extend(delta.iter().map(|&(fp, _)| fp));
        delta
    };
    stats.verdicts_uploaded += cache_delta.len() as u64;
    static VERDICTS: LazyCounter = LazyCounter::new("overify_worker_verdicts_uploaded_total");
    VERDICTS.add(cache_delta.len() as u64);
    match conn.borrow_mut().request(&Request::JobDone {
        lease: lease.lease,
        trace: lease.trace,
        report,
        cache_delta,
    })? {
        Event::JobAck { .. } => Ok(()),
        other => Err(unexpected("JobAck", &other)),
    }
}

fn cached_module(modules: &ModuleCache, lease: &LeasedJob) -> Option<Arc<Module>> {
    let key = (
        lease.spec.source.clone(),
        overify_store::artifact::level_tag(lease.spec.level),
    );
    if let Some(m) = modules.lock().unwrap().get(&key) {
        return Some(m.clone());
    }
    let prepared = prepare_job(&lease.spec.to_suite_job(), false).ok()?;
    let module = Arc::new(prepared.module);
    modules.lock().unwrap().insert(key, module.clone());
    Some(module)
}

fn offer(conn: &RefCell<Conn>, lease: u64, prefix: Vec<bool>) -> io::Result<u32> {
    match conn.borrow_mut().request(&Request::OfferStates {
        lease,
        prefixes: vec![prefix],
    })? {
        Event::StatesAccepted { accepted } => Ok(accepted),
        other => Err(unexpected("StatesAccepted", &other)),
    }
}

fn explore(
    conn: &RefCell<Conn>,
    lease: &LeasedJob,
    module: &Module,
    solver_cache: &Arc<SharedQueryCache>,
    stats: &mut WorkerStats,
) -> io::Result<VerificationReport> {
    let mut ex = Executor::new(module, lease.spec.cfg.clone());
    if lease.spec.cfg.solver.use_shared_cache {
        ex.attach_shared_cache(solver_cache.clone());
    }
    let Some(init) = ex.initial_state(&lease.spec.entry) else {
        // Missing entry: the daemon's local workers drain the run the
        // same way; return the job and contribute the merge identity.
        offer(conn, lease.lease, lease.prefix.clone())?;
        return Ok(VerificationReport {
            exhausted: true,
            ..Default::default()
        });
    };
    let hooks = ShedHooks {
        conn,
        lease: lease.lease,
        remaining: Cell::new(lease.shed),
        broken: Cell::new(false),
        returned: Cell::new(0),
    };
    ex.run_job(init, &lease.prefix, &hooks);
    stats.states_returned += hooks.returned.get();
    static RETURNED: LazyCounter = LazyCounter::new("overify_worker_states_returned_total");
    RETURNED.add(hooks.returned.get());
    if hooks.broken.get() {
        return Err(io::Error::new(
            io::ErrorKind::BrokenPipe,
            "connection broke while shedding states",
        ));
    }
    Ok(ex.finish())
}

/// Donation hooks for a leased subtree: the executor's between-path
/// donation loop sheds the oldest pending states — the ones nearest the
/// root, hence the biggest subtrees — back to the dispatcher, up to the
/// lease's `shed` budget. The dispatcher buffers shed states with the
/// lease and releases them to the fleet when it completes (transactional
/// against this worker crashing); since this worker excludes them from
/// its own exploration, its lease ends sooner and the big subtrees
/// parallelize instead of serializing on one worker.
struct ShedHooks<'a> {
    conn: &'a RefCell<Conn>,
    lease: u64,
    remaining: Cell<u32>,
    broken: Cell<bool>,
    returned: Cell<u64>,
}

impl ExploreHooks for ShedHooks<'_> {
    fn hungry(&self) -> bool {
        self.remaining.get() > 0 && !self.broken.get()
    }

    fn donate(&self, prefix: Vec<bool>) -> bool {
        match offer(self.conn, self.lease, prefix) {
            Ok(1) => {
                self.remaining.set(self.remaining.get() - 1);
                self.returned.set(self.returned.get() + 1);
                true
            }
            Ok(_) => {
                // The dispatcher declined (lease raced away): stop
                // shedding, keep exploring locally.
                self.remaining.set(0);
                false
            }
            Err(_) => {
                self.broken.set(true);
                false
            }
        }
    }
}
