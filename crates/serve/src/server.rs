//! The resident verification server.
//!
//! One process owns one persistent [`Store`] and one warm solver cache and
//! serves any number of clients over localhost TCP:
//!
//! * the **connection handler** (one thread per client) compiles each
//!   submitted job and content-addresses it; a store hit is answered
//!   immediately — no queue, no executor, just `Store::load_report` — and
//!   only misses enter the scheduler;
//! * the **executor pool** pops misses cost-first (see [`crate::scheduler`])
//!   and runs them through the same work-stealing driver the batch API
//!   uses, publishing live counters through [`overify::JobProgress`];
//! * the **progress poller** samples every running job on a fixed tick,
//!   streams changed counters to the owning client, and reaps remote
//!   leases that blew their deadline (the subtree goes back to its
//!   frontier; the worker's late frames are ignored);
//! * the **log tailer** folds solver verdicts that *other* processes
//!   appended to the shared store into this daemon's warm cache, so a
//!   fleet of daemons on one store path converges without restarts;
//! * after every executed job the observed cost is recorded back into the
//!   store (scheduling feedback) and the solver-cache delta is persisted,
//!   so the *next* client — or the next process — starts warmer.
//!
//! All writes to one client socket are serialized through a per-connection
//! writer thread, so pipelined jobs can't interleave frames.

use crate::hub::{FrontierHub, RunPublisher};
use crate::protocol::{
    encode_event, read_frame, write_frame, Event, JobOutcome, JobSpec, MetricsScope, Request,
    ServeStatsSnapshot, VerdictKey, VERSION,
};
use crate::scheduler::PushError;
use crate::scheduler::{Priority, Scheduler};
use overify::{
    default_threads, prepare_job, JobProgress, PreparedJob, ProgressSnapshot, SharedQueryCache,
    Store, StoreConfig, SuiteJobResult,
};
use overify_obs::metrics::{fold_sample, render_sample, sample_kind, LazyCounter, Sample};
use overify_obs::rings::Rings;
use overify_obs::slow::SlowLog;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{self, BufReader, BufWriter};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How a server is brought up.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// TCP port on 127.0.0.1 (0 picks an ephemeral port; read it back
    /// from [`ServerHandle::addr`]).
    pub port: u16,
    /// Executor pool size (concurrent jobs). Defaults to
    /// [`overify::default_threads`].
    pub executors: usize,
    /// Persistent store backing the service; `None` serves storeless
    /// (every job verifies, nothing is remembered).
    pub store: Option<StoreConfig>,
    /// Progress sampling tick for running jobs.
    pub progress_interval: Duration,
    /// Solver-log tailing tick: how often the daemon folds entries that
    /// *other* processes appended to the shared store into its warm
    /// cache. Ignored when serving storeless.
    pub tail_interval: Duration,
    /// Concurrent client connections the daemon will hold. A connection
    /// past the cap is answered with a single [`Event::Busy`] frame and
    /// closed instead of getting a handler thread — accepts never pile
    /// up unboundedly. `None` = unlimited (the historical behavior).
    pub max_connections: Option<usize>,
    /// Bound on the miss queue feeding the executor pool. A submission
    /// that would push past it is refused with [`Event::Shed`] (its
    /// final event) instead of growing the backlog without limit.
    /// `None` = unbounded (the historical behavior).
    pub queue_capacity: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            port: 0,
            executors: default_threads(),
            store: StoreConfig::from_env(),
            progress_interval: Duration::from_millis(25),
            tail_interval: Duration::from_millis(200),
            max_connections: None,
            queue_capacity: None,
        }
    }
}

/// Backoff hint on a [`Event::Busy`] refusal (connection cap).
const BUSY_RETRY_MS: u64 = 500;
/// Backoff hint on a [`Event::Shed`] refusal (queue full). Longer than
/// the busy hint: a full queue means real verification work is backed
/// up, not just a momentary accept burst.
const SHED_RETRY_MS: u64 = 1_000;

/// One queued miss: the prepared job plus the event channel of the client
/// that owns it. `key_hash` is the in-flight coalescing key (`None` when
/// the server runs storeless — then nothing coalesces).
struct QueuedJob {
    id: u64,
    prepared: PreparedJob,
    events: Sender<Event>,
    key_hash: Option<u128>,
    /// The scheduler priority the job entered the queue with; an observed
    /// (non-estimated) cost also prices the deadlines of the run's remote
    /// leases.
    priority: Priority,
    /// The client-supplied correlation id, carried through the hub onto
    /// every lease so daemon and worker trace spans stitch together.
    trace: u64,
}

/// A job currently executing, visible to the progress poller.
struct ActiveJob {
    id: u64,
    progress: Arc<JobProgress>,
    events: Sender<Event>,
    /// The last published snapshot plus the terminal marker. Every
    /// Progress frame is sent while this lock is held, so frames for one
    /// job are totally ordered, monotone, and nothing can land after the
    /// executor's terminal frame (which precedes the Report).
    last: Mutex<PublishedProgress>,
}

#[derive(Default)]
struct PublishedProgress {
    snap: ProgressSnapshot,
    finished: bool,
}

impl ActiveJob {
    /// Publishes a snapshot unless it duplicates the last one or the job
    /// already published its terminal frame. `terminal` closes the stream.
    fn publish(&self, snap: ProgressSnapshot, terminal: bool) {
        let mut last = self.last.lock().unwrap();
        if last.finished {
            return;
        }
        if terminal {
            last.finished = true;
        }
        if terminal || snap != last.snap {
            last.snap = snap;
            // Sent under the lock on purpose (mpsc send never blocks):
            // this is what makes the frame order the publish order.
            self.events
                .send(Event::Progress {
                    job: self.id,
                    runs_done: snap.runs_done as u32,
                    runs_total: snap.runs_total as u32,
                    paths: snap.paths,
                    bugs: snap.bugs,
                    instructions: snap.instructions,
                })
                .ok();
        }
    }
}

/// Followers of one in-flight execution: (job id, owning client's event
/// channel) pairs, each of which receives the execution's outcome under
/// its own id.
type Followers = Vec<(u64, Sender<Event>)>;

struct ServeState {
    store: Option<Store>,
    warm: Arc<SharedQueryCache>,
    sched: Scheduler<QueuedJob>,
    /// The cross-process frontier dispatcher: every executing run is
    /// published here so attached remote workers can steal subtree jobs.
    hub: FrontierHub,
    active: Mutex<Vec<Arc<ActiveJob>>>,
    /// Single-flight coalescing: content-address hash → followers waiting
    /// on the execution already queued or running for that key. One
    /// execution serves every concurrent submitter, so concurrent clients
    /// get *byte-identical* reports (and the executor does 1× the work).
    inflight: Mutex<HashMap<u128, Followers>>,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    submitted: AtomicU64,
    answered_from_store: AtomicU64,
    /// The subset of `answered_from_store` answered by splicing a stored
    /// function-slice verdict (module key missed, slice key hit).
    answered_spliced: AtomicU64,
    executed: AtomicU64,
    /// Verdicts piggybacked on worker `JobDone` frames that were new to
    /// the warm cache.
    verdicts_upstreamed: AtomicU64,
    next_job_id: AtomicU64,
    next_conn_id: AtomicU64,
    /// Per-worker metrics tables, keyed by `AttachWorker` name: each
    /// worker's `MetricsPush` deltas folded into running totals. The
    /// fleet scrape renders these as `{worker="…"}`-labeled series plus
    /// an unlabeled rollup.
    fleet: Mutex<BTreeMap<String, BTreeMap<String, Sample>>>,
    /// Time-series rings over the daemon's own registry, sampled on the
    /// poller tick; the fleet scrape derives rates and quantiles-over-
    /// recent-windows from them.
    rings: Rings,
    /// Executor pool size, for the queue-saturation health gauge.
    executors: u64,
    /// Live client connections, against `max_connections`.
    live_conns: AtomicU64,
    /// Connection cap; `None` = unlimited.
    max_connections: Option<usize>,
    /// Trace-timebase microseconds of the last solver-log tail pass, for
    /// the tail-lag health gauge (0 until the first pass, or storeless).
    last_tail_us: AtomicU64,
}

impl ServeState {
    fn stats(&self) -> ServeStatsSnapshot {
        let hub = self.hub.stats();
        ServeStatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            answered_from_store: self.answered_from_store.load(Ordering::Relaxed),
            answered_spliced: self.answered_spliced.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            queued: self.sched.len() as u64,
            active: self.active.lock().unwrap().len() as u64,
            workers: hub.workers,
            remote_leases: hub.remote_leases,
            remote_states: hub.remote_states,
            leases_recovered: hub.leases_recovered,
            leases_reaped: hub.leases_reaped,
            stale_frames: hub.stale_frames,
            verdicts_upstreamed: self.verdicts_upstreamed.load(Ordering::Relaxed),
            store: self.store.as_ref().map(|s| s.stats()).unwrap_or_default(),
        }
    }

    /// Initiates shutdown: close the queue, report its backlog back to
    /// the owning clients as aborted (an explicit error beats a hang),
    /// and poke the accept loop awake so it observes the flag.
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Stop granting leases; attached workers drain away while any
        // still-running jobs finish (their outstanding leases complete
        // normally — a half-merged run must never be reported).
        self.hub.close();
        for job in self.sched.close() {
            let aborted = JobOutcome::from_result(&SuiteJobResult {
                name: job.prepared.job().name.clone(),
                level: job.prepared.job().opts.level,
                compile_time: job.prepared.compile_time,
                runs: Vec::new(),
                error: Some("server shutting down before the job ran".into()),
                from_store: false,
                from_slice: false,
                ledger: None,
            });
            let followers = take_followers(self, job.key_hash);
            let _ = job.events.send(Event::Report {
                job: job.id,
                outcome: aborted.clone(),
            });
            report_followers(followers, &aborted);
        }
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server: its address plus the join/shutdown handle.
pub struct ServerHandle {
    state: Arc<ServeState>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (always 127.0.0.1; the port is the configured or
    /// ephemeral one).
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// A statistics snapshot, identical to what [`Request::Stats`]
    /// returns over the wire.
    pub fn stats(&self) -> ServeStatsSnapshot {
        self.state.stats()
    }

    /// Blocks until the server exits (a client sent `Shutdown`).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Initiates shutdown locally and waits for the server to drain.
    pub fn shutdown(self) {
        self.state.begin_shutdown();
        self.join();
    }
}

/// Binds and starts a server; returns once the listener is accepting.
pub fn start(cfg: ServerConfig) -> io::Result<ServerHandle> {
    overify_obs::init();
    let store = match cfg.store {
        Some(sc) => Some(Store::open(sc)?),
        None => None,
    };
    // One fleet-wide solver cache, warm-started from the store once at
    // boot and shared by every job of every client from then on.
    let warm = match &store {
        Some(s) => s.warm_solver_cache(),
        None => Arc::new(SharedQueryCache::new()),
    };
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, cfg.port))?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServeState {
        store,
        warm,
        sched: match cfg.queue_capacity {
            Some(cap) => Scheduler::bounded(cap),
            None => Scheduler::new(),
        },
        hub: FrontierHub::new(),
        active: Mutex::new(Vec::new()),
        inflight: Mutex::new(HashMap::new()),
        shutting_down: AtomicBool::new(false),
        addr,
        submitted: AtomicU64::new(0),
        answered_from_store: AtomicU64::new(0),
        answered_spliced: AtomicU64::new(0),
        executed: AtomicU64::new(0),
        verdicts_upstreamed: AtomicU64::new(0),
        next_job_id: AtomicU64::new(0),
        next_conn_id: AtomicU64::new(0),
        fleet: Mutex::new(BTreeMap::new()),
        rings: Rings::from_env(),
        executors: cfg.executors.max(1) as u64,
        live_conns: AtomicU64::new(0),
        max_connections: cfg.max_connections,
        last_tail_us: AtomicU64::new(0),
    });

    let mut threads = Vec::new();
    for _ in 0..cfg.executors.max(1) {
        let state = state.clone();
        threads.push(std::thread::spawn(move || executor_loop(&state)));
    }
    {
        let state = state.clone();
        let tick = cfg.progress_interval;
        threads.push(std::thread::spawn(move || poller_loop(&state, tick)));
    }
    if state.store.is_some() {
        let state = state.clone();
        let tick = cfg.tail_interval;
        threads.push(std::thread::spawn(move || tailer_loop(&state, tick)));
    }
    {
        let state = state.clone();
        threads.push(std::thread::spawn(move || accept_loop(&state, listener)));
    }
    Ok(ServerHandle { state, threads })
}

fn accept_loop(state: &Arc<ServeState>, listener: TcpListener) {
    for conn in listener.incoming() {
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Connection cap: refuse with a typed Busy frame instead of
        // spawning a handler. The count is claimed optimistically and
        // released on refusal so two racing accepts can't both slip past
        // the last slot.
        if let Some(cap) = state.max_connections {
            let prev = state.live_conns.fetch_add(1, Ordering::SeqCst);
            if prev >= cap as u64 {
                state.live_conns.fetch_sub(1, Ordering::SeqCst);
                static BUSY: LazyCounter = LazyCounter::new("overify_serve_busy_refused_total");
                BUSY.inc();
                // A slow peer must not stall the accept loop: the single
                // refusal frame is written from a throwaway thread.
                std::thread::spawn(move || {
                    let mut w = BufWriter::new(stream);
                    let _ = write_frame(
                        &mut w,
                        &encode_event(&Event::Busy {
                            retry_after_ms: BUSY_RETRY_MS,
                        }),
                    );
                });
                continue;
            }
        } else {
            state.live_conns.fetch_add(1, Ordering::SeqCst);
        }
        let state = state.clone();
        let conn_id = state.next_conn_id.fetch_add(1, Ordering::Relaxed);
        // Connection handlers are detached: they exit when their client
        // hangs up, and the process-level teardown (daemon exit) reaps
        // whatever is left.
        std::thread::spawn(move || {
            let _ = handle_connection(&state, stream, conn_id);
            state.live_conns.fetch_sub(1, Ordering::SeqCst);
        });
    }
}

/// One client connection: a reader loop (this thread) processing requests
/// and a writer thread serializing events onto the socket. A connection
/// that sends [`Request::AttachWorker`] becomes a remote verification
/// worker; if it dies holding leases, [`FrontierHub::disconnect`] puts
/// the leased subtree jobs back on their frontiers.
fn handle_connection(state: &Arc<ServeState>, stream: TcpStream, conn_id: u64) -> io::Result<()> {
    let peer_write = stream.try_clone()?;
    let (tx, rx) = channel::<Event>();
    // The writer signals here after a ShuttingDown frame hits the wire,
    // so the reader can tear the server down knowing the ack was sent
    // without waiting for the channel's other senders (queued jobs hold
    // clones) to drain.
    let (flushed_tx, flushed_rx) = channel::<()>();
    let writer = std::thread::spawn(move || {
        let mut w = BufWriter::new(peer_write);
        // Exits when every sender is gone (connection done, queued jobs
        // reported) or the socket breaks (client hung up mid-stream).
        while let Ok(ev) = rx.recv() {
            let is_shutdown_ack = matches!(ev, Event::ShuttingDown);
            if write_frame(&mut w, &encode_event(&ev)).is_err() {
                break;
            }
            if is_shutdown_ack {
                flushed_tx.send(()).ok();
            }
        }
    });

    tx.send(Event::Hello { version: VERSION }).ok();
    let mut attached = false;
    // The worker's `AttachWorker` display name: keys its fleet metrics
    // table and its ledger attribution.
    let mut worker_name: Option<String> = None;
    let mut r = BufReader::new(stream);
    // The read loop ends when the client hangs up (or sends garbage
    // framing) — `read_frame` then errors.
    while let Ok(frame) = read_frame(&mut r) {
        match crate::protocol::decode_request(&frame) {
            Ok(Request::Submit {
                spec,
                trace,
                tenant,
            }) => handle_submit(state, &spec, trace, &tenant, &tx),
            Ok(Request::Stats) => {
                tx.send(Event::Stats(state.stats())).ok();
            }
            Ok(Request::Metrics { scope }) => {
                let text = match &scope {
                    // Service-level counters first (same names `Stats`
                    // uses), then every registry metric the process has
                    // touched — exactly the pre-v6 answer.
                    MetricsScope::Daemon => {
                        format!("{}{}", state.stats(), overify_obs::metrics::render())
                    }
                    MetricsScope::Fleet => render_fleet(state),
                    MetricsScope::Worker(name) => render_worker(state, name),
                };
                // Every scope carries the slow-query log: the K worst SAT
                // solves seen anywhere in the fleet (workers push theirs).
                let slow = SlowLog::global().snapshot();
                tx.send(Event::Metrics { text, slow }).ok();
            }
            Ok(Request::Shutdown) => {
                tx.send(Event::ShuttingDown).ok();
                // Tear down only once the ack is on the wire (bounded
                // wait — a dead socket must not stall the shutdown), so
                // the requesting client always reads it even though the
                // process may exit right after the server drains.
                let _ = flushed_rx.recv_timeout(Duration::from_secs(5));
                state.begin_shutdown();
                break;
            }
            Ok(Request::AttachWorker { name }) => {
                if !attached {
                    attached = true;
                    // Disambiguate name collisions (two workers on one
                    // host defaulting to the same name) by connection id,
                    // so neither worker's pushes pollute the other's
                    // table.
                    let unique = if state.fleet.lock().unwrap().contains_key(&name) {
                        format!("{name}#{conn_id}")
                    } else {
                        name
                    };
                    state.hub.attach_worker(conn_id, unique.clone());
                    state
                        .fleet
                        .lock()
                        .unwrap()
                        .entry(unique.clone())
                        .or_default();
                    worker_name = Some(unique);
                }
                tx.send(Event::WorkerAttached { worker: conn_id }).ok();
            }
            Ok(Request::MetricsPush { text, slow }) => {
                // Worker-only verb, like StealJobs: an unattached peer
                // pushing metrics has a broken implementation.
                if !attached {
                    break;
                }
                static PUSHES: LazyCounter = LazyCounter::new("overify_serve_metrics_pushes_total");
                PUSHES.inc();
                let name = worker_name.clone().unwrap_or_default();
                let mut fleet = state.fleet.lock().unwrap();
                let table = fleet.entry(name).or_default();
                for (metric, delta) in overify_obs::metrics::parse(&text) {
                    match table.get_mut(&metric) {
                        Some(acc) => fold_sample(acc, &delta),
                        None => {
                            table.insert(metric, delta);
                        }
                    }
                }
                drop(fleet);
                SlowLog::global().absorb(&slow);
                tx.send(Event::MetricsAck).ok();
            }
            Ok(Request::StealJobs { max }) => {
                // Worker-only verb: an unattached peer speaking it has a
                // broken implementation — drop it rather than guess.
                if !attached {
                    break;
                }
                if state.shutting_down.load(Ordering::SeqCst) {
                    // Tell the worker to go home instead of letting it
                    // poll a draining daemon until the socket dies.
                    tx.send(Event::ShuttingDown).ok();
                    break;
                }
                let leases = state.hub.steal(conn_id, max);
                tx.send(Event::Leases { leases }).ok();
            }
            Ok(Request::OfferStates { lease, prefixes }) => {
                if !attached {
                    break;
                }
                let accepted = state.hub.offer_states(lease, prefixes) as u32;
                tx.send(Event::StatesAccepted { accepted }).ok();
            }
            Ok(Request::JobDone {
                lease,
                trace,
                report,
                cache_delta,
            }) => {
                if !attached {
                    break;
                }
                overify_obs::trace::event(
                    "job_done",
                    &[
                        ("lease", &lease),
                        ("trace", &format_args!("{trace:x}")),
                        ("worker", &conn_id),
                    ],
                );
                // Fold the worker's verdicts in *before* lease
                // bookkeeping: a verdict is sound even when the lease was
                // reaped or completed meanwhile, and persisting it now
                // means the next process warm-starts from it even if this
                // daemon dies hard later.
                if !cache_delta.is_empty() {
                    let added = state.warm.absorb(&cache_delta);
                    state
                        .verdicts_upstreamed
                        .fetch_add(added, Ordering::Relaxed);
                    if let Some(store) = &state.store {
                        if let Err(e) = store.save_solver_cache(&state.warm) {
                            overify_obs::error!(
                                "serve",
                                "failed to persist upstreamed verdicts: {e}"
                            );
                        }
                    }
                }
                state.hub.complete(lease, report);
                tx.send(Event::JobAck { lease }).ok();
            }
            Err(_) => break, // malformed request: drop the connection
        }
    }
    if attached {
        // Crash recovery: jobs the worker still held go back to their
        // frontiers and are re-explored by whoever pops them next. The
        // worker's metrics table is kept — its counted work happened, and
        // dropping it would make the fleet rollup go backwards.
        state.hub.disconnect(conn_id);
        state.hub.detach_worker(conn_id);
    }
    drop(tx);
    let _ = writer.join();
    Ok(())
}

/// Renders one attached worker's folded metrics table in the exposition
/// format (empty for an unknown name — scrapes are diagnostics, not
/// protocol errors).
fn render_worker(state: &ServeState, name: &str) -> String {
    let mut out = String::new();
    if let Some(table) = state.fleet.lock().unwrap().get(name) {
        for (metric, sample) in table {
            out.push_str("# TYPE ");
            out.push_str(metric);
            out.push(' ');
            out.push_str(sample_kind(sample));
            out.push('\n');
            render_sample(&mut out, metric, sample, None);
        }
    }
    out
}

/// How many recent ring windows the fleet scrape's derived rates and
/// quantiles cover.
const RING_WINDOWS: usize = 10;

/// Renders the whole-fleet view: the daemon's service counters, then for
/// every metric name one unlabeled rollup line (the daemon's own sample
/// folded with every worker's table) plus one `{worker="…"}`-labeled line
/// per worker that reported it, then ring-derived rates (counters) and
/// p50/p99 over recent windows (histograms), then the health summary
/// gauges the `--top` dashboard's Health line reads.
fn render_fleet(state: &ServeState) -> String {
    let mut out = state.stats().to_string();
    let daemon = overify_obs::metrics::snapshot();
    let fleet = state.fleet.lock().unwrap().clone();

    let mut names: BTreeSet<String> = daemon.iter().map(|(n, _)| n.to_string()).collect();
    for table in fleet.values() {
        names.extend(table.keys().cloned());
    }
    for name in &names {
        let mut rollup: Option<Sample> = daemon
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.clone());
        for table in fleet.values() {
            if let Some(s) = table.get(name) {
                match &mut rollup {
                    Some(acc) => fold_sample(acc, s),
                    None => rollup = Some(s.clone()),
                }
            }
        }
        let Some(rollup) = rollup else { continue };
        out.push_str("# TYPE ");
        out.push_str(name);
        out.push(' ');
        out.push_str(sample_kind(&rollup));
        out.push('\n');
        render_sample(&mut out, name, &rollup, None);
        for (worker, table) in &fleet {
            if let Some(s) = table.get(name) {
                render_sample(&mut out, name, s, Some(("worker", worker)));
            }
        }
    }

    // Ring-derived views over the daemon's own registry: per-second rates
    // for counters (×1000, so sub-unit rates survive integer rendering)
    // and p50/p99 over the recent windows for histograms.
    use std::fmt::Write as _;
    for (name, sample) in &daemon {
        match sample {
            Sample::Counter(_) => {
                if let Some(rate) = state.rings.rate(name, RING_WINDOWS) {
                    let milli = (rate * 1000.0) as u64;
                    let _ = writeln!(out, "# TYPE {name}_rate_milli gauge");
                    let _ = writeln!(out, "{name}_rate_milli {milli}");
                }
            }
            Sample::Histogram { .. } => {
                for (suffix, p) in [("p50", 0.5), ("p99", 0.99)] {
                    if let Some(q) = state.rings.quantile_over(name, RING_WINDOWS, p) {
                        let _ = writeln!(out, "# TYPE {name}_{suffix} gauge");
                        let _ = writeln!(out, "{name}_{suffix} {q}");
                    }
                }
            }
            Sample::Gauge(_) => {}
        }
    }

    // Health summary: queue saturation (scheduler depth per executor,
    // ×1000), the recent lease reap rate, and how far behind the solver-
    // log tailer is.
    let saturation = state.sched.len() as u64 * 1000 / state.executors;
    let _ = writeln!(out, "# TYPE overify_health_queue_saturation_milli gauge");
    let _ = writeln!(out, "overify_health_queue_saturation_milli {saturation}");
    let reap_rate = state
        .rings
        .rate("overify_hub_leases_reaped_total", RING_WINDOWS)
        .unwrap_or(0.0);
    let reap_milli = (reap_rate * 1000.0) as u64;
    let _ = writeln!(out, "# TYPE overify_health_reap_rate_milli gauge");
    let _ = writeln!(out, "overify_health_reap_rate_milli {reap_milli}");
    let tail = state.last_tail_us.load(Ordering::Relaxed);
    let lag_ms = if tail == 0 {
        0
    } else {
        overify_obs::trace::now_us().saturating_sub(tail) / 1000
    };
    let _ = writeln!(out, "# TYPE overify_health_tail_lag_ms gauge");
    let _ = writeln!(out, "overify_health_tail_lag_ms {lag_ms}");
    out
}

/// The store address of the verdict that answered (or will answer) a
/// prepared job: the slice key when the answer was spliced, the module
/// key otherwise. `None` when the server runs storeless.
fn verdict_key_for(prepared: &PreparedJob, from_slice: bool) -> Option<VerdictKey> {
    if from_slice {
        prepared.slice_key.as_ref().map(|k| VerdictKey {
            slice: true,
            fp: k.slice_fp,
            budget_sig: k.budget_sig,
        })
    } else {
        prepared.key.as_ref().map(|k| VerdictKey {
            slice: false,
            fp: k.module_fp,
            budget_sig: k.budget_sig,
        })
    }
}

/// Compiles, content-addresses, and routes one submission: store hits are
/// answered here and now; misses are priced and queued under the
/// submitter's tenant key.
fn handle_submit(
    state: &Arc<ServeState>,
    spec: &crate::protocol::JobSpec,
    trace: u64,
    tenant: &str,
    tx: &Sender<Event>,
) {
    state.submitted.fetch_add(1, Ordering::Relaxed);
    let id = state.next_job_id.fetch_add(1, Ordering::Relaxed);
    let _span = overify_obs::trace::span("submit")
        .arg("job", id)
        .arg("name", &spec.name)
        .arg("trace", format_args!("{trace:x}"));
    let job = spec.to_suite_job();

    let prepared = match prepare_job(&job, state.store.is_some()) {
        Ok(p) => p,
        Err(failed) => {
            // Build failures are finished results, not protocol errors.
            tx.send(Event::Report {
                job: id,
                outcome: JobOutcome::from_result(&failed),
            })
            .ok();
            return;
        }
    };
    if let Some(store) = &state.store {
        if let Some(hit) = prepared.load_stored(store) {
            state.answered_from_store.fetch_add(1, Ordering::Relaxed);
            if hit.from_slice {
                state.answered_spliced.fetch_add(1, Ordering::Relaxed);
            }
            let mut outcome = JobOutcome::from_result(&hit);
            outcome.verdict_key = verdict_key_for(&prepared, hit.from_slice);
            tx.send(Event::Report { job: id, outcome }).ok();
            return;
        }
    }

    // A miss: price it (observed per-key cost when the store has history,
    // the compiled-module static estimate otherwise — instruction count,
    // loop structure and annotation density are all known by now, so
    // never-seen work is priced off the module itself, not its source
    // size). The observed lookup is two-grain like the artifact lookup:
    // when the exact module was never run but its entry slice was (the
    // submission is a changed-module resubmission), the slice-keyed cost
    // prices the remainder instead of falling back to the static
    // overestimate for the whole thing.
    let observed = state.store.as_ref().and_then(|s| {
        prepared
            .key
            .as_ref()
            .and_then(|k| s.lookup_cost(k))
            .or_else(|| {
                prepared
                    .slice_key
                    .as_ref()
                    .and_then(|k| s.lookup_slice_cost(k))
            })
    });
    let priority = match observed {
        Some(d) => Priority {
            estimated: false,
            cost: d.as_nanos(),
        },
        None => Priority {
            estimated: true,
            cost: prepared.static_cost,
        },
    };

    // Single-flight: if the same content address is already queued or
    // running, follow that execution instead of queueing a duplicate —
    // every follower gets the *same* outcome bytes when it reports.
    let key_hash = prepared.key.as_ref().map(|k| k.key_hash());
    if let Some(hash) = key_hash {
        let mut inflight = state.inflight.lock().unwrap();
        if let Some(followers) = inflight.get_mut(&hash) {
            followers.push((id, tx.clone()));
            tx.send(Event::Queued {
                job: id,
                position: 0, // riding an execution already in flight
                predicted_cost: priority.cost,
            })
            .ok();
            return;
        }
        inflight.insert(hash, Vec::new());
    }

    // `Queued` goes on the wire *before* the scheduler can hand the job
    // to an executor, so a client always sees Queued ≺ Scheduled. The
    // position is therefore the pre-enqueue queue depth (an executor may
    // already be draining it).
    tx.send(Event::Queued {
        job: id,
        position: state.sched.len() as u64,
        predicted_cost: priority.cost,
    })
    .ok();
    let queued = QueuedJob {
        id,
        prepared,
        events: tx.clone(),
        key_hash,
        priority,
        trace,
    };
    match state.sched.push_for(tenant, priority, queued) {
        Ok(_) => {}
        Err(PushError::Full(_)) => {
            // The bounded queue refused the miss: shed it explicitly.
            // Shed is the job's final event; the client retries the whole
            // submission after the hint. Followers that registered on the
            // in-flight entry meanwhile are shed too — their execution is
            // not coming.
            static SHED: LazyCounter = LazyCounter::new("overify_serve_shed_total");
            SHED.inc();
            let followers = take_followers(state, key_hash);
            tx.send(Event::Shed {
                job: id,
                retry_after_ms: SHED_RETRY_MS,
            })
            .ok();
            for (follower_id, events) in followers {
                events
                    .send(Event::Shed {
                        job: follower_id,
                        retry_after_ms: SHED_RETRY_MS,
                    })
                    .ok();
            }
        }
        Err(PushError::Closed(rejected)) => {
            // Shutdown raced the submission. Report the job — and any
            // followers that registered on its in-flight entry meanwhile —
            // as aborted, exactly like `begin_shutdown` does for the
            // backlog.
            let outcome = JobOutcome::from_result(&SuiteJobResult {
                name: rejected.prepared.job().name.clone(),
                level: rejected.prepared.job().opts.level,
                compile_time: rejected.prepared.compile_time,
                runs: Vec::new(),
                error: Some("server shutting down before the job ran".into()),
                from_store: false,
                from_slice: false,
                ledger: None,
            });
            let followers = take_followers(state, key_hash);
            tx.send(Event::Report {
                job: id,
                outcome: outcome.clone(),
            })
            .ok();
            report_followers(followers, &outcome);
        }
    }
}

/// Removes `key_hash`'s in-flight entry, returning its followers.
///
/// Must be called *before* the owning job's Report goes on the wire: the
/// moment a client sees that Report it may resubmit, and a resubmission
/// must re-check the store / enqueue fresh — never ride an execution that
/// already finished (a truncated outcome must recompute, not replay).
fn take_followers(state: &ServeState, key_hash: Option<u128>) -> Followers {
    match key_hash {
        Some(hash) => state
            .inflight
            .lock()
            .unwrap()
            .remove(&hash)
            .unwrap_or_default(),
        None => Vec::new(),
    }
}

/// Hands every follower the given outcome under its own job id.
fn report_followers(followers: Followers, outcome: &JobOutcome) {
    for (id, events) in followers {
        events
            .send(Event::Report {
                job: id,
                outcome: outcome.clone(),
            })
            .ok();
    }
}

/// One executor: pops misses cost-first and runs them to completion.
fn executor_loop(state: &Arc<ServeState>) {
    while let Some(job) = state.sched.pop() {
        // Re-check the store before spending solver time: between this
        // job's miss check and now, another executor (or another process
        // on the same store path) may have persisted the same content
        // address — then the artifact *is* this job's outcome.
        if let Some(store) = &state.store {
            if let Some(hit) = job.prepared.load_stored(store) {
                state.answered_from_store.fetch_add(1, Ordering::Relaxed);
                if hit.from_slice {
                    state.answered_spliced.fetch_add(1, Ordering::Relaxed);
                }
                let mut outcome = JobOutcome::from_result(&hit);
                outcome.verdict_key = verdict_key_for(&job.prepared, hit.from_slice);
                let followers = take_followers(state, job.key_hash);
                job.events
                    .send(Event::Report {
                        job: job.id,
                        outcome: outcome.clone(),
                    })
                    .ok();
                report_followers(followers, &outcome);
                continue;
            }
        }

        state.executed.fetch_add(1, Ordering::Relaxed);
        job.events.send(Event::Scheduled { job: job.id }).ok();

        let active = Arc::new(ActiveJob {
            id: job.id,
            progress: Arc::new(JobProgress::new()),
            events: job.events.clone(),
            last: Mutex::new(PublishedProgress::default()),
        });
        // The first progress frame is synchronous and precedes poller
        // registration, so every executed job streams at least one frame
        // and no poller sample can jump ahead of it. (Built by hand:
        // execution hasn't started, but the sweep size is already known
        // from the job itself.)
        active.publish(
            ProgressSnapshot {
                runs_total: job.prepared.job().bytes.len(),
                ..Default::default()
            },
            false,
        );
        state.active.lock().unwrap().push(active.clone());

        // Every swept run is published to the frontier hub while it
        // executes, so attached remote worker processes can steal subtree
        // jobs from it; the merge stays bit-identical however the work
        // was split.
        let publisher = RunPublisher {
            hub: &state.hub,
            base: JobSpec::from_suite_job(job.prepared.job()),
            // An observed cost prices the run's remote-lease deadlines;
            // a static estimate is too loose to reap against.
            priced: (!job.priority.estimated)
                .then(|| Duration::from_nanos(job.priority.cost.min(u64::MAX as u128) as u64)),
            trace: job.trace,
            contributors: Arc::default(),
        };
        let span = overify_obs::trace::span("execute")
            .arg("job", job.id)
            .arg("name", &job.prepared.job().name)
            .arg("trace", format_args!("{:x}", job.trace));
        let result = job.prepared.execute_with(
            state.store.as_ref(),
            Some(&state.warm),
            Some(&active.progress),
            Some(&publisher),
        );
        drop(span);

        state.active.lock().unwrap().retain(|a| a.id != job.id);
        // Persist the solver-cache delta now, not at exit: the next
        // process to open the store warm-starts from everything this job
        // learned even if the daemon dies hard later.
        if let Some(store) = &state.store {
            if let Err(e) = store.save_solver_cache(&state.warm) {
                overify_obs::error!("serve", "failed to persist the solver cache: {e}");
            }
            // Opportunistic tail on the same touch: anything another
            // process appended meanwhile is warm before the next job.
            store.tail_solver_log(&state.warm);
        }
        // Terminal frame: closes the job's progress stream (a straggling
        // poller sample can never land after it), then the report. The
        // in-flight entry is released *before* the owner's Report so a
        // client reacting to it resubmits fresh instead of riding a
        // finished execution.
        active.publish(active.progress.snapshot(), true);
        let mut outcome = JobOutcome::from_result(&result);
        if result.error.is_none() && state.store.is_some() {
            // The executed run was just persisted under the module key;
            // point the outcome at it.
            outcome.verdict_key = verdict_key_for(&job.prepared, false);
        }
        let followers = take_followers(state, job.key_hash);
        job.events
            .send(Event::Report {
                job: job.id,
                outcome: outcome.clone(),
            })
            .ok();
        // Every follower gets the exact same outcome bytes under its own
        // job id.
        report_followers(followers, &outcome);
    }
}

/// Samples every active job on a fixed tick, streaming counters that
/// moved since the last sample.
fn poller_loop(state: &Arc<ServeState>, tick: Duration) {
    while !state.shutting_down.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        // The poller doubles as the lease reaper: a wedged worker's
        // subtree goes back to its frontier on the same cadence progress
        // is sampled, so a sweep never stalls longer than a tick past a
        // blown deadline.
        state.hub.reap_expired();
        // The poller also drives the telemetry rings: one cumulative
        // registry sample per ring resolution, from which the fleet
        // scrape derives rates and recent-window quantiles.
        state.rings.maybe_sample();
        let active: Vec<Arc<ActiveJob>> = state.active.lock().unwrap().clone();
        for job in active {
            // `publish` drops the sample when it is stale, a duplicate, or
            // the job already published its terminal frame.
            job.publish(job.progress.snapshot(), false);
        }
    }
}

/// Tails the shared solver log on a fixed tick: entries appended by
/// *other* daemons or workers on the same store path are folded into this
/// process's warm cache, so the fleet converges on one body of solver
/// knowledge without restarts. Compactions are survived by re-reading
/// (the log header's generation changes), never by double-counting.
fn tailer_loop(state: &Arc<ServeState>, tick: Duration) {
    while !state.shutting_down.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        if let Some(store) = &state.store {
            store.tail_solver_log(&state.warm);
            state
                .last_tail_us
                .store(overify_obs::trace::now_us(), Ordering::Relaxed);
        }
    }
}
