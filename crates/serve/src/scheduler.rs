//! The store-aware, cost-first, tenant-fair job scheduler.
//!
//! Store *hits* never get here — the connection handler answers them
//! straight from [`overify::Store::load_report`] — so everything in the
//! queue is a miss that will cost real solver time. The queue orders that
//! work cost-first:
//!
//! 1. **Unknown cost before known cost.** A key the store has never timed
//!    is scheduled by its static estimate, which is a deliberate
//!    overestimate (path counts enter exponentially): never-seen work is
//!    assumed long and started early, the longest-processing-time-first
//!    heuristic that minimizes batch makespan when durations are uncertain.
//! 2. **Within each class, descending cost.** Known costs are the store's
//!    per-key observed nanoseconds ([`overify::Store::lookup_cost`], fed
//!    back by every executed job); estimates come from the compiled
//!    module's size and the job's byte budgets.
//! 3. **FIFO tie-break** by submission sequence, so dispatch order is
//!    fully deterministic given the queue contents.
//!
//! Two properties were added for the public gateway tier and apply to
//! every feed of the executor pool:
//!
//! - **Bounded depth.** A scheduler built with [`Scheduler::bounded`]
//!   refuses pushes past its capacity with [`PushError::Full`], handing
//!   the item back so the caller can shed it explicitly (the daemon turns
//!   this into a `Shed` frame, the gateway into an HTTP 429) instead of
//!   letting the backlog grow without limit.
//! - **Tenant fairness.** Items are pushed under a tenant key and `pop`
//!   round-robins across tenants with pending work, applying the
//!   cost-first policy *within* each tenant's backlog. One tenant
//!   flooding the queue delays its own jobs, not everyone else's. The
//!   plain [`Scheduler::push`] uses a single shared tenant, which
//!   degenerates to exactly the old global policy.

use overify_obs::metrics::{LazyGauge, LazyHistogram};
use std::cmp::Ordering as CmpOrdering;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

static QUEUE_DEPTH: LazyGauge = LazyGauge::new("overify_sched_queue_depth");
static TIME_TO_SCHEDULE_NS: LazyHistogram = LazyHistogram::new("overify_sched_time_to_schedule_ns");

/// A dispatch priority. `Ord` is *dispatch order*: greater = sooner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Priority {
    /// False when the cost is an observed per-key measurement, true when
    /// it is a static estimate (estimates dispatch first).
    pub estimated: bool,
    /// Cost value (nanoseconds when observed, unitless when estimated);
    /// larger dispatches sooner within a class.
    pub cost: u128,
}

impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Priority) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for Priority {
    fn cmp(&self, other: &Priority) -> CmpOrdering {
        self.estimated
            .cmp(&other.estimated)
            .then(self.cost.cmp(&other.cost))
    }
}

/// Why a push was refused, carrying the item back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at its configured capacity; shed the item.
    Full(T),
    /// The scheduler was closed; the daemon is shutting down.
    Closed(T),
}

impl<T> PushError<T> {
    /// The refused item, however it was refused.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

struct Entry<T> {
    priority: Priority,
    seq: u64,
    enqueued: Instant,
    item: T,
}

struct Queue<T> {
    /// Per-tenant backlogs; a tenant key is present iff it has entries.
    tenants: HashMap<String, Vec<Entry<T>>>,
    /// Round-robin order over tenants with pending work.
    rotation: VecDeque<String>,
    /// Total entries across all tenants (kept in sync for O(1) bounds).
    len: usize,
    next_seq: u64,
    closed: bool,
}

/// A blocking priority queue of verification work. Generic over the
/// payload so the dispatch policy is testable without building modules.
pub struct Scheduler<T> {
    queue: Mutex<Queue<T>>,
    cv: Condvar,
    /// `None` = unbounded (the pre-gateway behavior).
    capacity: Option<usize>,
}

/// The tenant key used by [`Scheduler::push`]; callers that never name
/// tenants all share it, which reduces to the old single-queue policy.
const SHARED_TENANT: &str = "";

impl<T> Scheduler<T> {
    /// An empty, open, unbounded scheduler.
    pub fn new() -> Scheduler<T> {
        Scheduler::with_capacity(None)
    }

    /// An empty, open scheduler that refuses pushes past `capacity`
    /// waiting items with [`PushError::Full`].
    pub fn bounded(capacity: usize) -> Scheduler<T> {
        Scheduler::with_capacity(Some(capacity))
    }

    fn with_capacity(capacity: Option<usize>) -> Scheduler<T> {
        Scheduler {
            queue: Mutex::new(Queue {
                tenants: HashMap::new(),
                rotation: VecDeque::new(),
                len: 0,
                next_seq: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues an item under the shared tenant; returns how many items
    /// were ahead of it (its queue position at enqueue time).
    pub fn push(&self, priority: Priority, item: T) -> Result<usize, PushError<T>> {
        self.push_for(SHARED_TENANT, priority, item)
    }

    /// Enqueues an item under `tenant`. Returns how many items across
    /// all tenants had dispatch priority at or above this one (an upper
    /// bound on its queue position; round-robin may serve it sooner).
    /// Items pushed after close come back as [`PushError::Closed`];
    /// pushes past a bounded capacity come back as [`PushError::Full`].
    pub fn push_for(
        &self,
        tenant: &str,
        priority: Priority,
        item: T,
    ) -> Result<usize, PushError<T>> {
        let mut q = self.queue.lock().unwrap();
        if q.closed {
            return Err(PushError::Closed(item));
        }
        if let Some(cap) = self.capacity {
            if q.len >= cap {
                return Err(PushError::Full(item));
            }
        }
        let position = q
            .tenants
            .values()
            .flatten()
            .filter(|e| e.priority >= priority)
            .count();
        let seq = q.next_seq;
        q.next_seq += 1;
        if !q.tenants.contains_key(tenant) {
            q.rotation.push_back(tenant.to_string());
        }
        q.tenants
            .entry(tenant.to_string())
            .or_default()
            .push(Entry {
                priority,
                seq,
                enqueued: Instant::now(),
                item,
            });
        q.len += 1;
        QUEUE_DEPTH.set(q.len as i64);
        self.cv.notify_one();
        Ok(position)
    }

    /// Blocks until an item is available or the scheduler is closed
    /// (`None`). Tenants are served round-robin; within a tenant the
    /// highest-priority item dispatches, FIFO within equal priorities.
    pub fn pop(&self) -> Option<T> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if q.len > 0 {
                let tenant = q
                    .rotation
                    .pop_front()
                    .expect("non-empty queue has a rotation");
                let entries = q
                    .tenants
                    .get_mut(&tenant)
                    .expect("rotated tenant has entries");
                let best = entries
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        a.priority.cmp(&b.priority).then(b.seq.cmp(&a.seq)) // lower seq wins ties
                    })
                    .map(|(i, _)| i)
                    .expect("rotated tenant has entries");
                let entry = entries.swap_remove(best);
                if entries.is_empty() {
                    q.tenants.remove(&tenant);
                } else {
                    q.rotation.push_back(tenant);
                }
                q.len -= 1;
                QUEUE_DEPTH.set(q.len as i64);
                TIME_TO_SCHEDULE_NS.observe_ns(entry.enqueued.elapsed());
                return Some(entry.item);
            }
            if q.closed {
                return None;
            }
            q = self.cv.wait(q).unwrap();
        }
    }

    /// Closes the queue and drains everything still waiting in global
    /// submission order: `pop` returns `None` once the drained backlog is
    /// gone, and future pushes fail with [`PushError::Closed`].
    pub fn close(&self) -> VecDeque<T> {
        let mut q = self.queue.lock().unwrap();
        q.closed = true;
        let mut drained: Vec<Entry<T>> = q.tenants.drain().flat_map(|(_, v)| v).collect();
        drained.sort_by_key(|e| e.seq);
        q.rotation.clear();
        q.len = 0;
        QUEUE_DEPTH.set(0);
        self.cv.notify_all();
        drained.into_iter().map(|e| e.item).collect()
    }

    /// Items currently waiting across all tenants.
    pub fn len(&self) -> usize {
        self.queue.lock().unwrap().len
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for Scheduler<T> {
    fn default() -> Scheduler<T> {
        Scheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observed(cost: u128) -> Priority {
        Priority {
            estimated: false,
            cost,
        }
    }

    fn estimated(cost: u128) -> Priority {
        Priority {
            estimated: true,
            cost,
        }
    }

    #[test]
    fn pops_unknowns_first_then_descending_cost_then_fifo() {
        let s = Scheduler::new();
        assert_eq!(s.push(observed(500), "ob-500").unwrap(), 0);
        assert_eq!(s.push(estimated(10), "est-10").unwrap(), 0);
        assert_eq!(s.push(observed(900), "ob-900").unwrap(), 1);
        assert_eq!(s.push(estimated(99), "est-99").unwrap(), 0);
        // Both estimates, the equal-cost observed entry (FIFO), = 3 ahead.
        assert_eq!(s.push(observed(900), "ob-900-later").unwrap(), 3);
        assert_eq!(s.len(), 5);
        let order: Vec<&str> =
            std::iter::from_fn(|| if s.is_empty() { None } else { s.pop() }).collect();
        assert_eq!(
            order,
            ["est-99", "est-10", "ob-900", "ob-900-later", "ob-500"],
            "estimates first (descending), then observed descending, FIFO ties"
        );
    }

    #[test]
    fn close_drains_and_rejects() {
        let s = Scheduler::new();
        s.push(observed(1), 'a').unwrap();
        s.push(observed(2), 'b').unwrap();
        let drained: Vec<char> = s.close().into_iter().collect();
        assert_eq!(drained, ['a', 'b'], "backlog handed back on close");
        assert!(s.pop().is_none());
        assert_eq!(s.push(observed(3), 'c'), Err(PushError::Closed('c')));
    }

    #[test]
    fn pop_blocks_until_push() {
        let s = std::sync::Arc::new(Scheduler::new());
        let s2 = s.clone();
        let t = std::thread::spawn(move || s2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        s.push(estimated(1), 42u32).unwrap();
        assert_eq!(t.join().unwrap(), Some(42));
    }

    #[test]
    fn bounded_queue_sheds_at_capacity() {
        let s = Scheduler::bounded(2);
        s.push(observed(1), 'a').unwrap();
        s.push(observed(2), 'b').unwrap();
        assert_eq!(s.push(observed(9), 'c'), Err(PushError::Full('c')));
        assert_eq!(s.pop(), Some('b'));
        // Popping frees a slot; the retry is admitted.
        s.push(observed(9), 'c').unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn tenants_are_served_round_robin() {
        let s = Scheduler::new();
        // Tenant "hog" floods first with high-cost work; "meek" submits
        // one cheap job afterwards.
        for (i, name) in ["hog-1", "hog-2", "hog-3"].iter().enumerate() {
            s.push_for("hog", observed(1000 - i as u128), *name)
                .unwrap();
        }
        s.push_for("meek", observed(1), "meek-1").unwrap();
        let order: Vec<&str> =
            std::iter::from_fn(|| if s.is_empty() { None } else { s.pop() }).collect();
        assert_eq!(
            order,
            ["hog-1", "meek-1", "hog-2", "hog-3"],
            "the meek tenant's job is served second, not last"
        );
    }

    #[test]
    fn single_tenant_keeps_cost_first_policy() {
        let s = Scheduler::bounded(10);
        s.push_for("t", observed(5), "low").unwrap();
        s.push_for("t", observed(50), "high").unwrap();
        s.push_for("t", estimated(1), "unknown").unwrap();
        assert_eq!(s.pop(), Some("unknown"));
        assert_eq!(s.pop(), Some("high"));
        assert_eq!(s.pop(), Some("low"));
    }
}
