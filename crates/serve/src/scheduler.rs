//! The store-aware, cost-first job scheduler.
//!
//! Store *hits* never get here — the connection handler answers them
//! straight from [`overify::Store::load_report`] — so everything in the
//! queue is a miss that will cost real solver time. The queue orders that
//! work cost-first:
//!
//! 1. **Unknown cost before known cost.** A key the store has never timed
//!    is scheduled by its static estimate, which is a deliberate
//!    overestimate (path counts enter exponentially): never-seen work is
//!    assumed long and started early, the longest-processing-time-first
//!    heuristic that minimizes batch makespan when durations are uncertain.
//! 2. **Within each class, descending cost.** Known costs are the store's
//!    per-key observed nanoseconds ([`overify::Store::lookup_cost`], fed
//!    back by every executed job); estimates come from the compiled
//!    module's size and the job's byte budgets.
//! 3. **FIFO tie-break** by submission sequence, so dispatch order is
//!    fully deterministic given the queue contents.

use overify_obs::metrics::{LazyGauge, LazyHistogram};
use std::cmp::Ordering as CmpOrdering;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

static QUEUE_DEPTH: LazyGauge = LazyGauge::new("overify_sched_queue_depth");
static TIME_TO_SCHEDULE_NS: LazyHistogram = LazyHistogram::new("overify_sched_time_to_schedule_ns");

/// A dispatch priority. `Ord` is *dispatch order*: greater = sooner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Priority {
    /// False when the cost is an observed per-key measurement, true when
    /// it is a static estimate (estimates dispatch first).
    pub estimated: bool,
    /// Cost value (nanoseconds when observed, unitless when estimated);
    /// larger dispatches sooner within a class.
    pub cost: u128,
}

impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Priority) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for Priority {
    fn cmp(&self, other: &Priority) -> CmpOrdering {
        self.estimated
            .cmp(&other.estimated)
            .then(self.cost.cmp(&other.cost))
    }
}

struct Entry<T> {
    priority: Priority,
    seq: u64,
    enqueued: Instant,
    item: T,
}

struct Queue<T> {
    entries: Vec<Entry<T>>,
    next_seq: u64,
    closed: bool,
}

/// A blocking priority queue of verification work. Generic over the
/// payload so the dispatch policy is testable without building modules.
pub struct Scheduler<T> {
    queue: Mutex<Queue<T>>,
    cv: Condvar,
}

impl<T> Scheduler<T> {
    /// An empty, open scheduler.
    pub fn new() -> Scheduler<T> {
        Scheduler {
            queue: Mutex::new(Queue {
                entries: Vec::new(),
                next_seq: 0,
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Enqueues an item; returns how many items were ahead of it (its
    /// queue position at enqueue time). Items pushed after close are
    /// rejected back to the caller.
    pub fn push(&self, priority: Priority, item: T) -> Result<usize, T> {
        let mut q = self.queue.lock().unwrap();
        if q.closed {
            return Err(item);
        }
        let position = q.entries.iter().filter(|e| e.priority >= priority).count();
        let seq = q.next_seq;
        q.next_seq += 1;
        q.entries.push(Entry {
            priority,
            seq,
            enqueued: Instant::now(),
            item,
        });
        QUEUE_DEPTH.set(q.entries.len() as i64);
        self.cv.notify_one();
        Ok(position)
    }

    /// Blocks until an item is available (highest priority, FIFO within
    /// equal priorities) or the scheduler is closed (`None`).
    pub fn pop(&self) -> Option<T> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if let Some(best) = q
                .entries
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    a.priority.cmp(&b.priority).then(b.seq.cmp(&a.seq)) // lower seq wins ties
                })
                .map(|(i, _)| i)
            {
                let entry = q.entries.swap_remove(best);
                QUEUE_DEPTH.set(q.entries.len() as i64);
                TIME_TO_SCHEDULE_NS.observe_ns(entry.enqueued.elapsed());
                return Some(entry.item);
            }
            if q.closed {
                return None;
            }
            q = self.cv.wait(q).unwrap();
        }
    }

    /// Closes the queue and drains everything still waiting: `pop` returns
    /// `None` once the drained backlog is gone, and future pushes fail.
    pub fn close(&self) -> VecDeque<T> {
        let mut q = self.queue.lock().unwrap();
        q.closed = true;
        let drained = std::mem::take(&mut q.entries);
        QUEUE_DEPTH.set(0);
        self.cv.notify_all();
        drained.into_iter().map(|e| e.item).collect()
    }

    /// Items currently waiting.
    pub fn len(&self) -> usize {
        self.queue.lock().unwrap().entries.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for Scheduler<T> {
    fn default() -> Scheduler<T> {
        Scheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observed(cost: u128) -> Priority {
        Priority {
            estimated: false,
            cost,
        }
    }

    fn estimated(cost: u128) -> Priority {
        Priority {
            estimated: true,
            cost,
        }
    }

    #[test]
    fn pops_unknowns_first_then_descending_cost_then_fifo() {
        let s = Scheduler::new();
        assert_eq!(s.push(observed(500), "ob-500").unwrap(), 0);
        assert_eq!(s.push(estimated(10), "est-10").unwrap(), 0);
        assert_eq!(s.push(observed(900), "ob-900").unwrap(), 1);
        assert_eq!(s.push(estimated(99), "est-99").unwrap(), 0);
        // Both estimates, the equal-cost observed entry (FIFO), = 3 ahead.
        assert_eq!(s.push(observed(900), "ob-900-later").unwrap(), 3);
        assert_eq!(s.len(), 5);
        let order: Vec<&str> =
            std::iter::from_fn(|| if s.is_empty() { None } else { s.pop() }).collect();
        assert_eq!(
            order,
            ["est-99", "est-10", "ob-900", "ob-900-later", "ob-500"],
            "estimates first (descending), then observed descending, FIFO ties"
        );
    }

    #[test]
    fn close_drains_and_rejects() {
        let s = Scheduler::new();
        s.push(observed(1), 'a').unwrap();
        s.push(observed(2), 'b').unwrap();
        let drained: Vec<char> = s.close().into_iter().collect();
        assert_eq!(drained, ['a', 'b'], "backlog handed back on close");
        assert!(s.pop().is_none());
        assert_eq!(s.push(observed(3), 'c'), Err('c'));
    }

    #[test]
    fn pop_blocks_until_push() {
        let s = std::sync::Arc::new(Scheduler::new());
        let s2 = s.clone();
        let t = std::thread::spawn(move || s2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        s.push(estimated(1), 42u32).unwrap();
        assert_eq!(t.join().unwrap(), Some(42));
    }
}
