//! The typed client library.
//!
//! A [`Client`] wraps one connection: submissions can be pipelined (many
//! jobs in flight, events demultiplexed by job id) or run one at a time.
//! Every event of every job is surfaced to the caller's observer before
//! the finished [`SuiteJobResult`]s are returned, so a caller can render
//! progress, count store hits, or assert on the stream shape in tests.

use crate::protocol::{
    decode_event, encode_request, read_frame, write_frame, Event, JobSpec, MetricsScope,
    ProtocolError, Request, ServeStatsSnapshot, VERSION,
};
use overify::SuiteJobResult;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};

fn proto_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A fresh correlation id for one submission. The id rides the wire onto
/// every lease the run spawns, so spans dumped by the daemon and by any
/// worker process can be stitched into one timeline. Uniqueness only has
/// to hold per trace dump, so pid × wall clock × per-process counter is
/// plenty; zero is reserved as "untraced".
fn fresh_trace(spec: &JobSpec) -> u64 {
    use std::hash::{Hash, Hasher};
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::process::id().hash(&mut h);
    SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        .hash(&mut h);
    if let Ok(d) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        d.subsec_nanos().hash(&mut h);
        d.as_secs().hash(&mut h);
    }
    spec.name.hash(&mut h);
    h.finish().max(1)
}

/// One connection to a verification server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects and performs the handshake (the server leads with
    /// [`Event::Hello`]; magic and version must match this build).
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = BufWriter::new(stream.try_clone()?);
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
        };
        match client.next_event()? {
            Event::Hello { version } if version == VERSION => Ok(client),
            Event::Hello { version } => Err(ProtocolError::VersionSkew {
                peer: version,
                ours: VERSION,
            }
            .into()),
            Event::Busy { retry_after_ms } => Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                format!("server at its connection cap; retry after {retry_after_ms}ms"),
            )),
            other => Err(proto_err(format!("expected Hello, got {other:?}"))),
        }
    }

    fn send(&mut self, req: &Request) -> io::Result<()> {
        write_frame(&mut self.writer, &encode_request(req))?;
        self.writer.flush()
    }

    fn next_event(&mut self) -> io::Result<Event> {
        Ok(decode_event(&read_frame(&mut self.reader)?)?)
    }

    /// Submits one job and blocks until its report, feeding every event
    /// (`Queued`, `Scheduled`, `Progress`, …) to `on_event` first.
    pub fn submit_with<F>(&mut self, spec: &JobSpec, on_event: F) -> io::Result<SuiteJobResult>
    where
        F: FnMut(&Event),
    {
        let mut results = self.submit_all_with(std::slice::from_ref(spec), on_event)?;
        Ok(results.remove(0))
    }

    /// Submits one job and blocks until its report.
    pub fn submit(&mut self, spec: &JobSpec) -> io::Result<SuiteJobResult> {
        self.submit_with(spec, |_| {})
    }

    /// Submits one job under a tenant key and blocks until its terminal
    /// event, feeding every event to `on_event` first. A shed submission
    /// comes back as a result whose error names the shed.
    pub fn submit_with_tenant<F>(
        &mut self,
        spec: &JobSpec,
        tenant: &str,
        on_event: F,
    ) -> io::Result<SuiteJobResult>
    where
        F: FnMut(&Event),
    {
        let mut results =
            self.submit_all_with_tenant(std::slice::from_ref(spec), tenant, on_event)?;
        Ok(results.remove(0))
    }

    /// Submits a batch pipelined — all jobs enter the server's scheduler
    /// together, so its cost-first policy (not submission order) decides
    /// execution order. Blocks until every job reported; results come
    /// back in submission order. Every event is surfaced to `on_event`
    /// as it arrives, interleaved across jobs.
    pub fn submit_all_with<F>(
        &mut self,
        specs: &[JobSpec],
        on_event: F,
    ) -> io::Result<Vec<SuiteJobResult>>
    where
        F: FnMut(&Event),
    {
        self.submit_all_with_tenant(specs, "", on_event)
    }

    /// [`Client::submit_all_with`], submitting under a tenant key. The
    /// daemon schedules tenants round-robin, so one flooding client
    /// delays its own backlog rather than everyone's. A submission the
    /// bounded queue refuses ([`Event::Shed`]) comes back as a result
    /// whose error names the shed — the batch still returns one result
    /// per spec, in order.
    pub fn submit_all_with_tenant<F>(
        &mut self,
        specs: &[JobSpec],
        tenant: &str,
        mut on_event: F,
    ) -> io::Result<Vec<SuiteJobResult>>
    where
        F: FnMut(&Event),
    {
        for spec in specs {
            write_frame(
                &mut self.writer,
                &encode_request(&Request::Submit {
                    spec: spec.clone(),
                    trace: fresh_trace(spec),
                    tenant: tenant.to_string(),
                }),
            )?;
        }
        self.writer.flush()?;
        // Job ids are assigned in submission order per connection; map
        // them to slots as their first events arrive.
        let mut slot_of: HashMap<u64, usize> = HashMap::new();
        let mut next_slot = 0usize;
        let mut results: Vec<Option<SuiteJobResult>> = (0..specs.len()).map(|_| None).collect();
        let mut done = 0usize;
        while done < specs.len() {
            let ev = self.next_event()?;
            on_event(&ev);
            let job = match &ev {
                Event::Queued { job, .. }
                | Event::Scheduled { job }
                | Event::Progress { job, .. }
                | Event::Report { job, .. }
                | Event::Shed { job, .. } => *job,
                Event::ShuttingDown => {
                    return Err(proto_err("server shut down mid-batch"));
                }
                _ => continue,
            };
            let slot = *slot_of.entry(job).or_insert_with(|| {
                let s = next_slot;
                next_slot += 1;
                s
            });
            if slot >= results.len() {
                return Err(proto_err("server reported an unknown job"));
            }
            match ev {
                Event::Report { outcome, .. } => {
                    if results[slot].is_some() {
                        return Err(proto_err("server reported an unknown job"));
                    }
                    results[slot] = Some(outcome.into_result());
                    done += 1;
                }
                Event::Shed { retry_after_ms, .. } => {
                    if results[slot].is_some() {
                        return Err(proto_err("server reported an unknown job"));
                    }
                    results[slot] = Some(SuiteJobResult {
                        name: specs[slot].name.clone(),
                        level: specs[slot].level,
                        compile_time: std::time::Duration::ZERO,
                        runs: Vec::new(),
                        error: Some(format!(
                            "shed: server queue full; retry after {retry_after_ms}ms"
                        )),
                        from_store: false,
                        from_slice: false,
                        ledger: None,
                    });
                    done += 1;
                }
                _ => {}
            }
        }
        Ok(results.into_iter().map(|r| r.unwrap()).collect())
    }

    /// Submits a batch pipelined, ignoring intermediate events.
    pub fn submit_all(&mut self, specs: &[JobSpec]) -> io::Result<Vec<SuiteJobResult>> {
        self.submit_all_with(specs, |_| {})
    }

    /// Fetches a server statistics snapshot.
    pub fn stats(&mut self) -> io::Result<ServeStatsSnapshot> {
        self.send(&Request::Stats)?;
        match self.next_event()? {
            Event::Stats(s) => Ok(s),
            other => Err(proto_err(format!("expected Stats, got {other:?}"))),
        }
    }

    /// Fetches the server's metrics in the text exposition format, plus
    /// the daemon's slow-query log (`(fingerprint, nanoseconds)` pairs,
    /// slowest first). The scope picks the table: the daemon process
    /// alone, the fleet rollup with per-worker labeled series, or one
    /// worker's pushed table.
    pub fn metrics(&mut self, scope: MetricsScope) -> io::Result<(String, Vec<(u128, u64)>)> {
        self.send(&Request::Metrics { scope })?;
        match self.next_event()? {
            Event::Metrics { text, slow } => Ok((text, slow)),
            other => Err(proto_err(format!("expected Metrics, got {other:?}"))),
        }
    }

    /// Registers this connection under a worker name in the daemon's
    /// fleet tables. After attaching, [`Client::push_metrics`] deltas
    /// render as a labeled series in the fleet metrics scope — this is
    /// how sidecar processes (the gateway tier, custom tooling) appear
    /// on the daemon's dashboard without speaking the lease protocol.
    pub fn attach_worker(&mut self, name: &str) -> io::Result<()> {
        self.send(&Request::AttachWorker {
            name: name.to_string(),
        })?;
        match self.next_event()? {
            Event::WorkerAttached { .. } => Ok(()),
            other => Err(proto_err(format!("expected WorkerAttached, got {other:?}"))),
        }
    }

    /// Upstreams one delta-encoded metrics snapshot (the
    /// `overify_obs::metrics::DeltaTracker` encoding) plus optional
    /// slow-query entries. The connection must be attached
    /// ([`Client::attach_worker`]) first.
    pub fn push_metrics(&mut self, text: String, slow: Vec<(u128, u64)>) -> io::Result<()> {
        self.send(&Request::MetricsPush { text, slow })?;
        match self.next_event()? {
            Event::MetricsAck => Ok(()),
            other => Err(proto_err(format!("expected MetricsAck, got {other:?}"))),
        }
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.send(&Request::Shutdown)?;
        match self.next_event()? {
            Event::ShuttingDown => Ok(()),
            other => Err(proto_err(format!("expected ShuttingDown, got {other:?}"))),
        }
    }
}
